//! Statistical and structural properties of the trace-shaped workload
//! generator: bit-identical determinism per seed, Pareto tail-index
//! recovery within tolerance, modulation that preserves expected job
//! mass, and burst sessions that can never produce an invalid stream —
//! regression-guarding the NaN/zero-job and zero-gap fixes.

use freeride_g::sched::{
    ArrivalProcess, JobSpec, LoadLevel, Sinusoid, SizeDist, TenantSpec, WorkloadError,
    WorkloadShape, WorkloadSpec,
};
use proptest::prelude::*;

/// A single-tenant spec with full control over the distributions.
fn one_tenant(jobs: usize, arrival: ArrivalProcess, size: SizeDist, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        tenants: vec![TenantSpec {
            name: "solo".into(),
            jobs,
            arrival,
            size,
            deadline_slack: (2.0, 4.0),
        }],
        apps: vec!["kmeans".into()],
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The acceptance bar: across 256 random (shape, load, seed)
    /// combinations, generating twice is bit-identical, the stream is
    /// sorted with contiguous ids, and every field is finite and in
    /// range — under bursts and heavy tails, not just uniform load.
    #[test]
    fn generation_is_deterministic_and_valid_for_every_shape(
        seed in any::<u64>(),
        shape_idx in 0usize..3,
        load_idx in 0usize..3,
    ) {
        let shape = WorkloadShape::ALL[shape_idx];
        let load = LoadLevel::ALL[load_idx];
        let spec = WorkloadSpec::shaped(shape, load, &["kmeans", "em", "apriori"], seed);
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(&a, &b);
        let mut last_per_tenant = [0.0f64; 3];
        for (i, j) in a.iter().enumerate() {
            prop_assert_eq!(j.id, i);
            prop_assert!(j.arrival.is_finite() && j.arrival > 0.0);
            prop_assert!(j.dataset_bytes > 0, "no zero-byte datasets");
            prop_assert!(j.deadline_slack.is_finite() && j.deadline_slack >= 1.0);
            if i > 0 {
                prop_assert!(j.arrival >= a[i - 1].arrival, "stream sorted by arrival");
            }
            // Within a tenant, gaps are strictly positive: the
            // zero-endpoint remap holds for burst intra-gaps too.
            prop_assert!(
                j.arrival > last_per_tenant[j.tenant],
                "tenant {} stacked two arrivals at {}", j.tenant, j.arrival
            );
            last_per_tenant[j.tenant] = j.arrival;
        }
    }

    /// Burst sessions can never smuggle an invalid stream past
    /// validation, whatever the (validated) burst geometry is.
    #[test]
    fn bursty_streams_never_violate_validation(
        seed in any::<u64>(),
        session_gap in 20.0f64..2000.0,
        burst_mean in 1.0f64..20.0,
        intra_gap in 0.5f64..30.0,
        daily in 0.0f64..0.95,
    ) {
        let spec = one_tenant(
            40,
            ArrivalProcess::Bursty {
                mean_session_gap: session_gap,
                burst_mean,
                mean_intra_gap: intra_gap,
                modulation: Sinusoid { daily, weekly: 0.0, phase: 1.0 },
            },
            SizeDist::BodyTail {
                median_mb: 32.0,
                sigma: 0.8,
                tail_weight: 0.15,
                tail_min_mb: 128.0,
                tail_alpha: 1.2,
                cap_mb: 8192.0,
            },
            seed,
        );
        prop_assert!(spec.validate().is_ok());
        let jobs = spec.generate();
        prop_assert_eq!(jobs.len(), 40);
        let mut last = 0.0f64;
        for j in &jobs {
            prop_assert!(j.arrival.is_finite() && j.arrival > last);
            prop_assert!(j.dataset_bytes > 0);
            last = j.arrival;
        }
    }
}

/// Hill estimator for the tail index over the top `k` order statistics
/// of `samples` (which it sorts).
fn hill_alpha(samples: &mut [f64], k: usize) -> f64 {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    assert!(k + 1 < n);
    let threshold = samples[n - k - 1];
    let mean_log_excess: f64 =
        samples[n - k..].iter().map(|x| (x / threshold).ln()).sum::<f64>() / k as f64;
    1.0 / mean_log_excess
}

#[test]
fn pareto_tail_index_is_recovered_within_tolerance() {
    // A pure-Pareto tenant with a cap far past any plausible draw: the
    // Hill estimator over the top 5% of 20k samples must land within
    // 15% of the configured index. This pins the inversion formula —
    // an off-by-one in the exponent moves the estimate far outside.
    for (alpha, seed) in [(1.1, 7u64), (1.5, 42), (2.5, 1234)] {
        let spec = one_tenant(
            20_000,
            ArrivalProcess::poisson(10.0),
            SizeDist::Pareto { min_mb: 4.0, alpha, cap_mb: 1e9 },
            seed,
        );
        let mut mb: Vec<f64> =
            spec.generate().iter().map(|j| j.dataset_bytes as f64 / 1e6).collect();
        let est = hill_alpha(&mut mb, 1000);
        assert!(
            (est - alpha).abs() / alpha < 0.15,
            "alpha {alpha} estimated as {est} (seed {seed})"
        );
    }
}

#[test]
fn lognormal_sizes_match_their_median_and_spread() {
    let spec = one_tenant(
        20_000,
        ArrivalProcess::poisson(10.0),
        SizeDist::LogNormal { median_mb: 48.0, sigma: 0.9, cap_mb: 1e9 },
        11,
    );
    let mut mb: Vec<f64> = spec.generate().iter().map(|j| j.dataset_bytes as f64 / 1e6).collect();
    mb.sort_by(f64::total_cmp);
    let median = mb[mb.len() / 2];
    assert!((median - 48.0).abs() / 48.0 < 0.05, "median {median}");
    // Log-space standard deviation recovers sigma.
    let logs: Vec<f64> = mb.iter().map(|x| x.ln()).collect();
    let mean = logs.iter().sum::<f64>() / logs.len() as f64;
    let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / logs.len() as f64;
    let sigma = var.sqrt();
    assert!((sigma - 0.9).abs() < 0.05, "sigma {sigma}");
}

#[test]
fn diurnal_modulation_preserves_expected_job_mass() {
    // Lewis-Shedler thinning modulates *when* jobs land, not how many
    // land per unit time on average: over many diurnal cycles the
    // stream's span must match the unmodulated stream's within 10%.
    let n = 5000;
    let flat = one_tenant(
        n,
        ArrivalProcess::poisson(60.0),
        SizeDist::LogUniform { lo_mb: 8.0, hi_mb: 32.0 },
        7,
    );
    let modulated = one_tenant(
        n,
        ArrivalProcess::Poisson {
            mean_gap: 60.0,
            modulation: Sinusoid { daily: 0.6, weekly: 0.0, phase: 0.4 },
        },
        SizeDist::LogUniform { lo_mb: 8.0, hi_mb: 32.0 },
        7,
    );
    let span = |jobs: &[JobSpec]| jobs.last().unwrap().arrival;
    let flat_span = span(&flat.generate());
    let mod_span = span(&modulated.generate());
    assert!(
        (mod_span - flat_span).abs() / flat_span < 0.10,
        "modulated span {mod_span:.0} vs flat {flat_span:.0}"
    );
}

#[test]
fn modulated_arrivals_actually_cycle() {
    // Sanity against a degenerate thinning that accepts everything:
    // with daily amplitude 0.8, arrivals inside the peak half-cycle
    // must clearly outnumber the trough half-cycle.
    let spec = one_tenant(
        4000,
        ArrivalProcess::Poisson {
            mean_gap: 120.0,
            modulation: Sinusoid { daily: 0.8, weekly: 0.0, phase: 0.0 },
        },
        SizeDist::LogUniform { lo_mb: 8.0, hi_mb: 32.0 },
        13,
    );
    let jobs = spec.generate();
    let day = 86_400.0;
    let (mut peak, mut trough) = (0usize, 0usize);
    for j in &jobs {
        // sin is positive on the first half of each day (phase 0).
        if (j.arrival % day) < day / 2.0 {
            peak += 1;
        } else {
            trough += 1;
        }
    }
    assert!(
        peak as f64 > 1.5 * trough as f64,
        "diurnal peak {peak} should dominate trough {trough}"
    );
}

#[test]
fn trace_shaped_presets_are_heavier_tailed_than_uniform() {
    // The point of the rework, stated as a statistic: at the same load
    // level and seed, the heavy-tail preset's largest job carries an
    // order of magnitude more relative mass than the uniform preset's.
    let apps = ["kmeans", "em"];
    let tail_mass = |shape| {
        let spec = WorkloadSpec::shaped_scaled(shape, LoadLevel::Medium, &apps, 42, 12, 50);
        let jobs = spec.generate();
        let total: u64 = jobs.iter().map(|j| j.dataset_bytes).sum();
        let max: u64 = jobs.iter().map(|j| j.dataset_bytes).max().unwrap();
        max as f64 / total as f64
    };
    let uniform = tail_mass(WorkloadShape::Uniform);
    let heavy = tail_mass(WorkloadShape::HeavyTail);
    assert!(
        heavy > 5.0 * uniform,
        "heavy-tail top-1 mass {heavy:.4} should dwarf uniform {uniform:.4}"
    );
}

#[test]
fn nan_and_zero_job_regressions_stay_guarded() {
    // PR-5 regression guards, re-asserted through the new validation
    // path: NaN parameters and zero-job tenants must stay typed errors
    // for every distribution family.
    let base = || {
        one_tenant(
            5,
            ArrivalProcess::poisson(100.0),
            SizeDist::LogUniform { lo_mb: 8.0, hi_mb: 32.0 },
            7,
        )
    };
    let mut s = base();
    s.tenants[0].jobs = 0;
    assert!(matches!(s.try_generate(), Err(WorkloadError::NoJobs { .. })));

    let mut s = base();
    s.tenants[0].arrival = ArrivalProcess::poisson(f64::NAN);
    assert!(matches!(s.try_generate(), Err(WorkloadError::BadTenant { .. })));

    let mut s = base();
    s.tenants[0].arrival = ArrivalProcess::Poisson {
        mean_gap: 100.0,
        modulation: Sinusoid { daily: f64::NAN, weekly: 0.0, phase: 0.0 },
    };
    assert!(matches!(s.try_generate(), Err(WorkloadError::BadTenant { .. })));

    let mut s = base();
    s.tenants[0].size = SizeDist::LogNormal { median_mb: f64::NAN, sigma: 0.5, cap_mb: 100.0 };
    assert!(matches!(s.try_generate(), Err(WorkloadError::BadTenant { .. })));

    let mut s = base();
    s.tenants[0].size = SizeDist::BodyTail {
        median_mb: 32.0,
        sigma: 0.8,
        tail_weight: f64::NAN,
        tail_min_mb: 128.0,
        tail_alpha: 1.2,
        cap_mb: 8192.0,
    };
    assert!(matches!(s.try_generate(), Err(WorkloadError::BadTenant { .. })));

    let mut s = base();
    s.tenants[0].deadline_slack = (f64::NAN, 4.0);
    assert!(matches!(s.try_generate(), Err(WorkloadError::BadTenant { .. })));
}
