//! End-to-end resource selection (§3): the framework's ranking agrees
//! with actual execution, replica choice responds to WAN bandwidth, and
//! cross-cluster candidates are handled through scaling factors.

use freeride_g::apps::kmeans;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::Executor;
use freeride_g::predict::{rank_deployments, AppClasses, Profile, ScalingFactors};
use std::collections::HashMap;

const SCALE: f64 = 0.004;

fn base_deployment(n: usize, c: usize, bw: f64) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(bw),
        Configuration::new(n, c),
    )
}

#[test]
fn ranking_agrees_with_actual_execution_order() {
    let dataset = kmeans::generate("sel-order", 200.0, SCALE, 5, 8);
    let app = kmeans::KMeans::paper(5);
    let profile = Profile::from_report(
        &Executor::new(base_deployment(1, 1, 40e6)).run(&app, &dataset).report,
    );
    let deployments: Vec<Deployment> = [(1, 1), (1, 4), (2, 8), (4, 16), (8, 16)]
        .iter()
        .map(|&(n, c)| base_deployment(n, c, 40e6))
        .collect();
    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app("kmeans"),
        &deployments,
        dataset.logical_bytes(),
        &HashMap::new(),
    );
    // Execute every candidate and check the predicted order matches the
    // actual order exactly (the configurations are well separated).
    let actuals: Vec<f64> = ranked
        .iter()
        .map(|cand| {
            Executor::new(cand.deployment.clone()).run(&app, &dataset).report.total().as_secs_f64()
        })
        .collect();
    for w in actuals.windows(2) {
        assert!(
            w[0] <= w[1] * 1.001,
            "predicted ranking disagrees with actual execution: {actuals:?}"
        );
    }
}

#[test]
fn replica_choice_follows_wan_bandwidth() {
    let dataset = kmeans::generate("sel-replica", 200.0, SCALE, 6, 8);
    let app = kmeans::KMeans::paper(6);
    let profile = Profile::from_report(
        &Executor::new(base_deployment(1, 1, 40e6)).run(&app, &dataset).report,
    );
    // Same configuration, two replicas: one behind a starved WAN.
    let fast = Deployment::new(
        RepositorySite::pentium_repository("fast-repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(4, 8),
    );
    let slow = Deployment::new(
        RepositorySite::pentium_repository("slow-repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(1e6),
        Configuration::new(4, 8),
    );
    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app("kmeans"),
        &[slow.clone(), fast.clone()],
        dataset.logical_bytes(),
        &HashMap::new(),
    );
    assert_eq!(ranked[0].deployment.repository.name, "fast-repo");
    // And reality agrees.
    let fast_actual = Executor::new(fast).run(&app, &dataset).report.total();
    let slow_actual = Executor::new(slow).run(&app, &dataset).report.total();
    assert!(fast_actual < slow_actual);
}

#[test]
fn cross_cluster_candidate_wins_with_measured_factors() {
    let dataset = kmeans::generate("sel-hetero", 200.0, SCALE, 7, 8);
    let app = kmeans::KMeans::paper(7);
    let profile = Profile::from_report(
        &Executor::new(base_deployment(1, 1, 40e6)).run(&app, &dataset).report,
    );
    // Measure factors with the target application itself (sufficient for
    // the test; the figures use disjoint representatives).
    let opteron_dep = |n, c| {
        Deployment::new(
            RepositorySite::opteron_repository("repo-b", 8),
            ComputeSite::opteron_infiniband("cs-b", 16),
            Wan::per_stream(40e6),
            Configuration::new(n, c),
        )
    };
    let a44 = Profile::from_report(
        &Executor::new(base_deployment(4, 4, 40e6)).run(&app, &dataset).report,
    );
    let b44 = Profile::from_report(&Executor::new(opteron_dep(4, 4)).run(&app, &dataset).report);
    let factors = ScalingFactors::measure(&[(a44, b44)]);
    assert!(factors.compute < 0.5, "Opteron should be much faster");

    let mut map = HashMap::new();
    map.insert("opteron-2400".to_string(), factors);
    let candidates = vec![base_deployment(4, 8, 40e6), opteron_dep(4, 8)];
    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app("kmeans"),
        &candidates,
        dataset.logical_bytes(),
        &map,
    );
    assert_eq!(ranked[0].deployment.compute.name, "cs-b", "faster cluster should win");
    // Reality check.
    let b_actual = Executor::new(opteron_dep(4, 8)).run(&app, &dataset).report.total();
    let a_actual = Executor::new(base_deployment(4, 8, 40e6)).run(&app, &dataset).report.total();
    assert!(b_actual < a_actual);
}
