//! End-to-end tests of the non-local caching extension (§2.1's deferred
//! resource-selection goal): middleware behavior, prediction accuracy,
//! and cache-site selection.

use freeride_g::apps::em;
use freeride_g::cluster::{CacheSite, ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{CacheMode, Executor};
use freeride_g::predict::{
    predict_with_plan, rank_deployments, relative_error, AppClasses, CachePlan, ComputeModel,
    ExecTimePredictor, InterconnectParams, Profile, Target,
};
use std::collections::HashMap;

const SCALE: f64 = 0.004;
const WAN: f64 = 40e6;

fn deployment(n: usize, c: usize, storage: u64, cache: Option<CacheSite>) -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("cs", 16);
    site.node_storage_bytes = storage;
    let mut d = Deployment::new(
        RepositorySite::pentium_repository("origin", 8),
        site,
        Wan::per_stream(WAN),
        Configuration::new(n, c),
    );
    d.cache = cache;
    d
}

fn cache_site(nodes: usize, bw: f64) -> CacheSite {
    CacheSite::new(RepositorySite::pentium_repository("cache-site", 8), nodes, Wan::per_stream(bw))
}

#[test]
fn starved_nodes_fall_back_to_the_cache_site() {
    let ds = em::generate("nlc-mode", 200.0, SCALE, 1, 3);
    let app = em::Em { k: 3, iterations: 3, seed: 1 };
    // Plenty of room: local caching.
    let local = Executor::new(deployment(2, 4, u64::MAX, None)).run(&app, &ds).report;
    assert_eq!(local.cache_mode, CacheMode::Local);
    assert_eq!(local.t_disk_cache().as_nanos(), 0);

    // No room, cache site attached: non-local caching.
    let nonlocal =
        Executor::new(deployment(2, 4, 1, Some(cache_site(4, 60e6)))).run(&app, &ds).report;
    assert_eq!(nonlocal.cache_mode, CacheMode::NonLocal);
    assert!(nonlocal.t_disk_cache().as_nanos() > 0);
    assert!(nonlocal.t_network_cache().as_nanos() > 0);
    // Origin is touched exactly once.
    let origin_passes = nonlocal.passes.iter().filter(|p| !p.retrieval.is_zero()).count();
    assert_eq!(origin_passes, 1);
    // Cache site is touched every pass (write-through + reads).
    assert!(nonlocal.passes.iter().all(|p| !p.cache_disk.is_zero()));

    // No room, no cache site: refetch from origin each pass.
    let refetch = Executor::new(deployment(2, 4, 1, None)).run(&app, &ds).report;
    assert_eq!(refetch.cache_mode, CacheMode::Refetch);
    assert!(refetch.passes.iter().all(|p| !p.retrieval.is_zero()));
    assert!(refetch.t_disk().as_secs_f64() > local.t_disk().as_secs_f64() * 3.0);
}

#[test]
fn computation_result_is_identical_across_cache_modes() {
    let ds = em::generate("nlc-same", 200.0, SCALE, 2, 3);
    let app = em::Em { k: 3, iterations: 2, seed: 2 };
    let a = Executor::new(deployment(2, 4, u64::MAX, None)).run(&app, &ds);
    let b = Executor::new(deployment(2, 4, 1, Some(cache_site(2, 60e6)))).run(&app, &ds);
    let c = Executor::new(deployment(2, 4, 1, None)).run(&app, &ds);
    for k in 0..3 {
        for d in 0..em::DIM {
            assert_eq!(a.final_state.means[k][d], b.final_state.means[k][d]);
            assert_eq!(a.final_state.means[k][d], c.final_state.means[k][d]);
        }
    }
}

#[test]
fn nonlocal_prediction_tracks_actual_execution() {
    let ds = em::generate("nlc-pred", 350.0, SCALE, 3, 4);
    let app = em::Em::paper(3);
    // Profile under ordinary local caching at 1-1.
    let profile_run = Executor::new(deployment(1, 1, u64::MAX, None)).run(&app, &ds);
    let profile = Profile::from_report(&profile_run.report);
    let predictor = ExecTimePredictor {
        profile,
        classes: AppClasses::for_app("em"),
        interconnect: InterconnectParams::of_site(&deployment(1, 1, u64::MAX, None).compute),
        model: ComputeModel::GlobalReduction,
    };
    for (n, c, cache_nodes, cache_bw) in [(2usize, 4usize, 2usize, 60e6), (4, 8, 4, 30e6)] {
        let dep = deployment(n, c, 1, Some(cache_site(cache_nodes, cache_bw)));
        let actual = Executor::new(dep.clone()).run(&app, &ds).report;
        assert_eq!(actual.cache_mode, CacheMode::NonLocal);
        let target = Target {
            data_nodes: n,
            compute_nodes: c,
            wan_bw: WAN,
            dataset_bytes: ds.logical_bytes(),
        };
        let plan = CachePlan::for_deployment(&dep, ds.logical_bytes(), actual.num_passes());
        let predicted = predict_with_plan(&predictor, &target, &plan, dep.compute.machine.disk_bw);
        let err = relative_error(actual.total().as_secs_f64(), predicted.total());
        assert!(
            err < 0.08,
            "non-local cache prediction off by {:.1}% at {n}-{c} (actual {:.1}s predicted {:.1}s)",
            err * 100.0,
            actual.total().as_secs_f64(),
            predicted.total()
        );
    }
}

#[test]
fn refetch_prediction_tracks_actual_execution() {
    let ds = em::generate("nlc-refetch", 350.0, SCALE, 4, 4);
    let app = em::Em::paper(4);
    let profile_run = Executor::new(deployment(1, 1, u64::MAX, None)).run(&app, &ds);
    let profile = Profile::from_report(&profile_run.report);
    let predictor = ExecTimePredictor {
        profile,
        classes: AppClasses::for_app("em"),
        interconnect: InterconnectParams::of_site(&deployment(1, 1, u64::MAX, None).compute),
        model: ComputeModel::GlobalReduction,
    };
    let dep = deployment(2, 4, 1, None);
    let actual = Executor::new(dep.clone()).run(&app, &ds).report;
    assert_eq!(actual.cache_mode, CacheMode::Refetch);
    let target =
        Target { data_nodes: 2, compute_nodes: 4, wan_bw: WAN, dataset_bytes: ds.logical_bytes() };
    let predicted =
        predict_with_plan(&predictor, &target, &CachePlan::Refetch, dep.compute.machine.disk_bw);
    let err = relative_error(actual.total().as_secs_f64(), predicted.total());
    assert!(err < 0.08, "refetch prediction off by {:.1}%", err * 100.0);
}

#[test]
fn selector_prefers_a_good_cache_site_over_refetching() {
    let ds = em::generate("nlc-select", 350.0, SCALE, 5, 4);
    let app = em::Em::paper(5);
    let profile = Profile::from_report(
        &Executor::new(deployment(1, 1, u64::MAX, None)).run(&app, &ds).report,
    );
    let candidates = vec![
        deployment(2, 4, 1, None),                      // refetch
        deployment(2, 4, 1, Some(cache_site(4, 60e6))), // good cache
        deployment(2, 4, 1, Some(cache_site(1, 2e6))),  // awful cache
    ];
    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app("em"),
        &candidates,
        ds.logical_bytes(),
        &HashMap::new(),
    );
    assert!(ranked[0].deployment.cache.as_ref().map(|c| c.wan.stream_bw) == Some(60e6));
    // And the ranking agrees with actual executions.
    let actuals: Vec<f64> = ranked
        .iter()
        .map(|cand| {
            Executor::new(cand.deployment.clone()).run(&app, &ds).report.total().as_secs_f64()
        })
        .collect();
    for w in actuals.windows(2) {
        assert!(w[0] <= w[1] * 1.01, "ranking disagrees with reality: {actuals:?}");
    }
}
