//! The service determinism contract, checked from outside every
//! crate: replaying a workload through fg-serve's wire protocol —
//! frames, session threads, the core thread, the snapshot-backed
//! query pool — produces a schedule **bit-identical** to calling
//! `Scheduler::run` directly on the same jobs. Outcomes, makespan
//! bits, violations, and the full trace JSONL must all match, across
//! every workload shape, with prediction queries deliberately
//! interleaved to prove reads never perturb the schedule.

use fg_bench::figures::sched_models;
use fg_serve::{replay, ServeClient, Server};
use freeride_g::sched::{
    GridSpec, JobSpec, LoadLevel, Policy, Scheduler, WorkloadShape, WorkloadSpec,
};

fn demo_sched(policy: Policy) -> Scheduler {
    Scheduler::new(GridSpec::demo(sched_models()), policy)
}

fn shaped_jobs(shape: WorkloadShape, load: LoadLevel, seed: u64) -> Vec<JobSpec> {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    WorkloadSpec::shaped(shape, load, &names, seed).generate()
}

#[test]
fn served_schedules_are_bit_identical_across_every_shape() {
    for shape in WorkloadShape::ALL {
        let jobs = shaped_jobs(shape, LoadLevel::Medium, 42);
        let direct = demo_sched(Policy::EdfAdmit).run(&jobs);

        let server = Server::start(demo_sched(Policy::EdfAdmit));
        // quote_every interleaves reads with submissions: answered
        // from snapshots by the query pool, they must not move a
        // single bit of the schedule.
        let served = replay(&server, &jobs, Some(7)).expect("replay succeeds");
        server.shutdown();

        assert_eq!(
            serde_json::to_string(&direct.outcomes).unwrap(),
            serde_json::to_string(&served.drained.outcomes).unwrap(),
            "{}: outcomes diverged",
            shape.name()
        );
        assert_eq!(
            direct.makespan.to_bits(),
            served.drained.makespan.to_bits(),
            "{}: makespan diverged",
            shape.name()
        );
        assert_eq!(direct.violations, served.drained.violations, "{}", shape.name());
        assert_eq!(
            freeride_g::trace::to_jsonl(&direct.trace),
            served.drained.trace_jsonl,
            "{}: trace diverged",
            shape.name()
        );

        // The wire acknowledgements agree with the final outcomes.
        assert_eq!(served.submits.len(), jobs.len());
        for (ack, outcome) in served.submits.iter().zip(&direct.outcomes) {
            assert_eq!(ack.id, outcome.id);
            assert_eq!(ack.admitted, outcome.admitted);
            assert_eq!(
                ack.admission_estimate.map(f64::to_bits),
                outcome.admission_estimate.map(f64::to_bits)
            );
        }

        // The client can reconstruct the full result, trace included,
        // and the reconstruction is a fixpoint.
        let rebuilt = served.drained.clone().into_result().expect("trace parses");
        rebuilt.trace.check_well_formed().expect("rebuilt trace is well-formed");
        assert_eq!(
            freeride_g::trace::to_jsonl(&rebuilt.trace),
            freeride_g::trace::to_jsonl(&direct.trace),
            "{}: reconstruction is not a fixpoint",
            shape.name()
        );
    }
}

#[test]
fn the_streamed_event_log_matches_the_outcomes() {
    let jobs = shaped_jobs(WorkloadShape::HeavyTail, LoadLevel::Light, 7);
    let direct = demo_sched(Policy::FcfsBackfill).run(&jobs);
    let server = Server::start(demo_sched(Policy::FcfsBackfill));
    let served = replay(&server, &jobs, None).expect("replay succeeds");
    server.shutdown();

    use freeride_g::sched::CoreEvent;
    let submitted: Vec<usize> = served
        .events
        .iter()
        .filter_map(|e| match e {
            CoreEvent::Submitted { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(submitted, (0..jobs.len()).collect::<Vec<_>>(), "one Submitted event per job");

    let completed =
        served.events.iter().filter(|e| matches!(e, CoreEvent::Completed { .. })).count();
    let finished = direct.outcomes.iter().filter(|o| o.finish.is_some()).count();
    assert_eq!(completed, finished, "one Completed event per finished job");

    // Placement events carry the same instants the outcomes record.
    for e in &served.events {
        if let CoreEvent::Placed { id, at, predicted, .. } = e {
            let o = &direct.outcomes[*id];
            assert_eq!(o.placed_at.map(f64::to_bits), Some(at.to_bits()), "job {id}");
            // The first placement's prediction; preempted jobs get
            // re-placed, so only check jobs with a single placement.
            if o.preemptions.is_empty() && o.migration.is_none() {
                assert_eq!(o.predicted.map(f64::to_bits), Some(predicted.to_bits()), "job {id}");
            }
        }
    }
}

/// The admission-quote contract: a quote for job B's parameters taken
/// *after* job A's acknowledgement, with B arriving at the same
/// instant as A, equals B's actual admission estimate bit for bit.
/// This leans on two guarantees — the core parks its event loop before
/// the scheduling pass so the quote sees exactly the state B's arrival
/// block will see, and the server publishes the fresh snapshot before
/// acknowledging A.
#[test]
fn a_quote_taken_between_submissions_is_the_admission_estimate() {
    let jobs = shaped_jobs(WorkloadShape::Uniform, LoadLevel::Medium, 11);
    let (a, b) = (&jobs[4], &jobs[5]);

    let server = Server::start(demo_sched(Policy::EdfAdmit));
    let mut client = ServeClient::connect(&server);
    for j in &jobs[..4] {
        client.submit(j.clone()).expect("submit");
    }
    let a = a.clone();
    let mut b = b.clone();
    // Force the equal-arrival case: B lands in the same arrival batch
    // as A, the exact situation where a naive incremental loop would
    // diverge from the batch scheduler.
    b.arrival = a.arrival;

    client.submit(a).expect("submit A");
    let quote = client
        .quote(&b.app, b.dataset_bytes, b.deadline_slack)
        .expect("quote call")
        .expect("app is known");
    let ack = client.submit(b).expect("submit B");

    let estimate = ack.admission_estimate.expect("EdfAdmit computes estimates");
    assert_eq!(
        quote.estimate.to_bits(),
        estimate.to_bits(),
        "quote {} != admission estimate {estimate}",
        quote.estimate
    );
    assert_eq!(quote.would_admit, Some(ack.admitted));

    client.drain().expect("drain");
    drop(client);
    server.shutdown();
}

/// Invalid submissions are rejected with a typed reason over the wire
/// and leave the session fully usable.
#[test]
fn out_of_order_submissions_fail_loudly_without_killing_the_session() {
    let jobs = shaped_jobs(WorkloadShape::Bursty, LoadLevel::Light, 3);
    let server = Server::start(demo_sched(Policy::Fcfs));
    let mut client = ServeClient::connect(&server);

    client.submit(jobs[5].clone()).expect("submit");
    let err = client.submit(jobs[0].clone()).expect_err("arrival went backwards");
    assert!(err.to_string().contains("behind the accepted stream"), "typed reason: {err}");

    // The failed submission left no residue: the remaining stream
    // still replays and drains.
    for j in &jobs[6..] {
        client.submit(j.clone()).expect("later submissions still work");
    }
    let drained = client.drain().expect("drain");
    assert_eq!(drained.outcomes.len(), jobs.len() - 5);
    drop(client);
    server.shutdown();
}
