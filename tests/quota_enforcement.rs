//! Token-bucket quota enforcement, checked from outside the scheduler.
//!
//! The scheduler's `with_quotas` gate spends one token per submission
//! from a per-tenant bucket that refills continuously and rejects when
//! the bucket is empty. These tests reconstruct the bucket from the
//! *outcomes alone* and prove the gate honest: the accept/reject
//! pattern is exactly what an external bucket replay predicts, no
//! tenant ever exceeds `capacity + refill · window` acceptances inside
//! any time window, a zero-quota tenant starves without perturbing the
//! other tenants' outcomes by a single bit, and the structural
//! violation counter stays at zero throughout.

use fg_bench::figures::{sched_models, SCHED_APPS};
use freeride_g::sched::{
    GridSpec, JobOutcome, LoadLevel, Policy, SchedResult, Scheduler, TenantQuota, WorkloadShape,
    WorkloadSpec,
};
use proptest::prelude::*;

const EPS: f64 = 1e-6;

fn preset_jobs(load: LoadLevel, seed: u64) -> Vec<freeride_g::sched::JobSpec> {
    let names: Vec<&str> = SCHED_APPS.iter().map(|a| a.name()).collect();
    WorkloadSpec::preset(load, &names, seed).generate()
}

fn shaped_jobs(
    shape: WorkloadShape,
    load: LoadLevel,
    seed: u64,
) -> Vec<freeride_g::sched::JobSpec> {
    let names: Vec<&str> = SCHED_APPS.iter().map(|a| a.name()).collect();
    WorkloadSpec::shaped(shape, load, &names, seed).generate()
}

fn run_with_quotas(quotas: Vec<TenantQuota>, jobs: &[freeride_g::sched::JobSpec]) -> SchedResult {
    Scheduler::new(GridSpec::demo(sched_models()), Policy::FcfsBackfill)
        .with_quotas(quotas)
        .run(jobs)
}

fn is_quota_rejected(o: &JobOutcome) -> bool {
    o.reject_reason.as_deref().is_some_and(|r| r.starts_with("quota"))
}

/// Equal up to fluid-integration rounding.
fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0)
}

/// Replay the token bucket from the submission stream and check the
/// scheduler's accept/reject pattern against it, then bound acceptances
/// over every window.
fn check_bucket_accounting(outcomes: &[JobOutcome], quotas: &[TenantQuota], label: &str) {
    for (tenant, q) in quotas.iter().enumerate() {
        let subs: Vec<&JobOutcome> = outcomes.iter().filter(|o| o.tenant == tenant).collect();

        // External bucket replay: the gate must agree decision by
        // decision, not just in aggregate.
        let mut tokens = q.capacity;
        let mut last = 0.0_f64;
        for o in &subs {
            tokens = (tokens + q.refill_per_sec * (o.arrival - last)).min(q.capacity);
            last = o.arrival;
            let accept = tokens + EPS >= 1.0;
            assert_eq!(
                !is_quota_rejected(o),
                accept,
                "{label}: tenant {tenant} job {} at t={:.3}: bucket replay predicts \
                 accept={accept} with {tokens:.3} tokens, scheduler disagreed ({:?})",
                o.id,
                o.arrival,
                o.reject_reason
            );
            if accept {
                tokens -= 1.0;
            }
        }

        // The defining token-bucket property: within any window the
        // number of accepted submissions is at most a full bucket plus
        // what the window refills.
        let accepted: Vec<f64> =
            subs.iter().filter(|o| !is_quota_rejected(o)).map(|o| o.arrival).collect();
        for (i, &start) in accepted.iter().enumerate() {
            for (j, &end) in accepted.iter().enumerate().skip(i) {
                let count = (j - i + 1) as f64;
                let budget = q.capacity + q.refill_per_sec * (end - start);
                assert!(
                    count <= budget + EPS,
                    "{label}: tenant {tenant} accepted {count} submissions in \
                     [{start:.3}, {end:.3}] against a budget of {budget:.3}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded workloads at every load level against a deliberately
    /// tight bucket: the quota is never exceeded in any window, the
    /// gate matches an external replay, quota-rejected jobs never touch
    /// the grid, and the violation counter stays zero.
    #[test]
    fn token_bucket_quotas_are_never_exceeded(seed in 0u64..10_000) {
        let load = LoadLevel::ALL[(seed % 3) as usize];
        // Tight enough that every preset load rejects some submissions.
        let quotas = vec![TenantQuota { capacity: 2.0, refill_per_sec: 0.004 }; 3];
        let jobs = preset_jobs(load, seed);
        let r = run_with_quotas(quotas.clone(), &jobs);
        let label = format!("{} seed {seed}", load.name());

        check_bucket_accounting(&r.outcomes, &quotas, &label);
        for o in r.outcomes.iter().filter(|o| is_quota_rejected(o)) {
            prop_assert!(!o.admitted);
            prop_assert!(
                o.placement.is_none() && o.placed_at.is_none() && o.finish.is_none(),
                "{label}: quota-rejected job {} occupied the grid",
                o.id
            );
        }
        prop_assert_eq!(r.trace.metrics.counter("sched_quota_violations"), Some(0));
        prop_assert_eq!(
            r.trace.metrics.counter("sched_quota_rejections"),
            Some(r.outcomes.iter().filter(|o| is_quota_rejected(o)).count() as u64)
        );
        prop_assert!(r.violations.is_empty(), "{}: {:?}", label, r.violations);
    }

    /// Burst sessions are the token bucket's adversarial case: a
    /// cluster of near-simultaneous submissions drains the bucket with
    /// almost no refill in between. The external bucket replay and the
    /// windowed acceptance bound must hold on the trace-shaped presets
    /// exactly as they do on uniform arrivals.
    #[test]
    fn token_bucket_survives_trace_shaped_bursts(seed in 0u64..10_000) {
        let shape = WorkloadShape::TRACE_SHAPED[(seed % 2) as usize];
        let load = LoadLevel::ALL[(seed / 2 % 3) as usize];
        let quotas = vec![TenantQuota { capacity: 2.0, refill_per_sec: 0.004 }; 3];
        let jobs = shaped_jobs(shape, load, seed);
        let r = run_with_quotas(quotas.clone(), &jobs);
        let label = format!("{} {} seed {seed}", shape.name(), load.name());

        check_bucket_accounting(&r.outcomes, &quotas, &label);
        for o in r.outcomes.iter().filter(|o| is_quota_rejected(o)) {
            prop_assert!(!o.admitted);
            prop_assert!(
                o.placement.is_none() && o.placed_at.is_none() && o.finish.is_none(),
                "{label}: quota-rejected job {} occupied the grid",
                o.id
            );
        }
        prop_assert_eq!(r.trace.metrics.counter("sched_quota_violations"), Some(0));
        prop_assert_eq!(
            r.trace.metrics.counter("sched_quota_rejections"),
            Some(r.outcomes.iter().filter(|o| is_quota_rejected(o)).count() as u64)
        );
        prop_assert!(r.violations.is_empty(), "{}: {:?}", label, r.violations);
    }

    /// A zero-capacity tenant is fully starved, and the remaining
    /// tenants get the same decisions, placements, and (up to fluid-
    /// integration rounding: the starved arrivals still split the
    /// drain loop's time steps) the same instants as a run where the
    /// starved tenant never submitted at all.
    #[test]
    fn zero_quota_tenant_starves_without_affecting_others(seed in 0u64..10_000) {
        let load = LoadLevel::ALL[(seed % 3) as usize];
        let quotas = vec![
            TenantQuota { capacity: 0.0, refill_per_sec: 0.0 },
            TenantQuota { capacity: 1e9, refill_per_sec: 1.0 },
            TenantQuota { capacity: 1e9, refill_per_sec: 1.0 },
        ];
        let jobs = preset_jobs(load, seed);
        let with_starved = run_with_quotas(quotas.clone(), &jobs);

        for o in with_starved.outcomes.iter().filter(|o| o.tenant == 0) {
            prop_assert!(!o.admitted, "zero-quota tenant must never be admitted");
            prop_assert!(is_quota_rejected(o));
            prop_assert!(o.placed_at.is_none());
        }

        let others: Vec<freeride_g::sched::JobSpec> =
            jobs.iter().filter(|j| j.tenant != 0).cloned().collect();
        let alone = run_with_quotas(quotas, &others);
        let starved_view: Vec<&JobOutcome> =
            with_starved.outcomes.iter().filter(|o| o.tenant != 0).collect();
        prop_assert_eq!(starved_view.len(), alone.outcomes.len());
        for (a, b) in starved_view.iter().zip(alone.outcomes.iter()) {
            let ctx = format!("tenant {} job {}", b.tenant, b.id);
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.admitted, b.admitted);
            prop_assert!(a.reject_reason == b.reject_reason, "{}: reject reason", ctx);
            prop_assert!(a.placement == b.placement, "{}: placement changed", ctx);
            prop_assert_eq!(a.preemptions.len(), b.preemptions.len());
            prop_assert!(a.migration.is_some() == b.migration.is_some(), "{}", ctx);
            for (x, y) in [
                (a.placed_at, b.placed_at),
                (a.disk_end, b.disk_end),
                (a.network_end, b.network_end),
                (a.finish, b.finish),
            ] {
                prop_assert!(x.is_some() == y.is_some(), "{}: phase presence", ctx);
                if let (Some(x), Some(y)) = (x, y) {
                    prop_assert!(
                        close(x, y),
                        "{}: instants diverged beyond rounding: {} vs {}",
                        ctx, x, y
                    );
                }
            }
        }
    }
}
