//! Golden-trace regression suite: one pinned trace per application.
//!
//! Each test runs the fixed golden configuration (8 MB nominal at 1%
//! scale, seed 3, 2 data nodes x 4 compute nodes, 1 MB/s WAN — see
//! `fg_bench::scenario::golden_trace_run`), serializes the trace to
//! JSON lines, and compares it byte for byte against the committed
//! fixture in `tests/golden/`. Any change to the executor's phase
//! arithmetic, the span structure, or the export format shows up as a
//! fixture diff.
//!
//! To bless a new baseline after an intentional change:
//!
//! ```text
//! FG_BLESS=1 cargo test --test golden_traces
//! ```

//! Scheduler migration traces are pinned the same way: one fixture per
//! policy for the migration-enabled, degraded medium-load run
//! (`migrate-<policy>.trace.jsonl`), covering the `Preempted`,
//! `Checkpoint`, and `Migrate` span kinds.

use fg_bench::figures::migrate_run;
use fg_bench::scenario::golden_trace_run;
use fg_bench::PaperApp;
use freeride_g::middleware::ExecutionReport;
use freeride_g::predict::Profile;
use freeride_g::sched::{LoadLevel, Policy};
use freeride_g::trace::{from_jsonl, to_jsonl, SpanKind};
use std::path::PathBuf;

fn fixture_path(app: PaperApp) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.trace.jsonl", app.name()))
}

fn check_golden(app: PaperApp) {
    let (report, trace) = golden_trace_run(app);

    // The trace must stand on its own before it is worth pinning.
    trace.check_well_formed().expect("golden trace must be well-formed");
    let rebuilt = ExecutionReport::from_trace(&trace).expect("report reconstructable from trace");
    assert_eq!(rebuilt, report, "trace must reproduce the report exactly");
    assert_eq!(
        Profile::from_trace(&trace).expect("profile from trace"),
        Profile::from_report(&report),
        "trace-derived profile must equal the report-derived one"
    );

    let rendered = to_jsonl(&trace);
    let parsed = from_jsonl(&rendered).expect("exported trace must parse back");
    assert_eq!(parsed, trace, "jsonl export must round-trip");

    let path = fixture_path(app);
    if std::env::var_os("FG_BLESS").is_some() {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("bless {path:?}: {e}"));
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{path:?}: {e}\nrun `FG_BLESS=1 cargo test --test golden_traces` to create it")
    });
    assert_eq!(
        rendered,
        pinned,
        "golden trace for {} drifted; if intentional, re-bless with \
         `FG_BLESS=1 cargo test --test golden_traces`",
        app.name()
    );
}

/// Pin one migration-enabled scheduler trace per policy: the medium
/// preset with repository 0 degraded from t=0, quotas, preemption, and
/// migration all on. Returns the span kinds the trace exercised so the
/// coverage test below can check the union.
fn check_migration_golden(policy: Policy) -> Vec<SpanKind> {
    let r = migrate_run(policy, LoadLevel::Medium, true, true);
    r.trace.check_well_formed().expect("migration trace must be well-formed");
    assert!(r.violations.is_empty(), "{policy:?}: {:?}", r.violations);

    let rendered = to_jsonl(&r.trace);
    let parsed = from_jsonl(&rendered).expect("exported trace must parse back");
    assert_eq!(parsed, r.trace, "jsonl export must round-trip");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("migrate-{}.trace.jsonl", policy.name()));
    if std::env::var_os("FG_BLESS").is_some() {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("bless {path:?}: {e}"));
    } else {
        let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{path:?}: {e}\nrun `FG_BLESS=1 cargo test --test golden_traces` to create it")
        });
        assert_eq!(
            rendered,
            pinned,
            "migration trace for {} drifted; if intentional, re-bless with \
             `FG_BLESS=1 cargo test --test golden_traces`",
            policy.name()
        );
    }
    r.trace.spans.iter().map(|s| s.kind).collect()
}

#[test]
fn golden_migration_trace_fcfs() {
    let kinds = check_migration_golden(Policy::Fcfs);
    assert!(kinds.contains(&SpanKind::Checkpoint) && kinds.contains(&SpanKind::Migrate));
}

#[test]
fn golden_migration_trace_fcfs_backfill() {
    let kinds = check_migration_golden(Policy::FcfsBackfill);
    assert!(kinds.contains(&SpanKind::Checkpoint) && kinds.contains(&SpanKind::Migrate));
}

#[test]
fn golden_migration_trace_spjf() {
    let kinds = check_migration_golden(Policy::Spjf);
    assert!(kinds.contains(&SpanKind::Checkpoint) && kinds.contains(&SpanKind::Migrate));
}

#[test]
fn golden_migration_trace_edf_admit() {
    let kinds = check_migration_golden(Policy::EdfAdmit);
    assert!(kinds.contains(&SpanKind::Checkpoint) && kinds.contains(&SpanKind::Migrate));
}

#[test]
fn golden_migration_traces_cover_the_new_span_kinds() {
    let kinds: Vec<SpanKind> =
        Policy::ALL.iter().flat_map(|&p| check_migration_golden(p)).collect();
    for kind in [SpanKind::Preempted, SpanKind::Checkpoint, SpanKind::Migrate] {
        assert!(kinds.contains(&kind), "pinned migration traces must exercise {kind:?}");
    }
}

#[test]
fn golden_trace_kmeans() {
    check_golden(PaperApp::KMeans);
}

#[test]
fn golden_trace_em() {
    check_golden(PaperApp::Em);
}

#[test]
fn golden_trace_knn() {
    check_golden(PaperApp::Knn);
}

#[test]
fn golden_trace_vortex() {
    check_golden(PaperApp::Vortex);
}

#[test]
fn golden_trace_defect() {
    check_golden(PaperApp::Defect);
}

#[test]
fn golden_trace_apriori() {
    check_golden(PaperApp::Apriori);
}

#[test]
fn golden_trace_ann() {
    check_golden(PaperApp::Ann);
}
