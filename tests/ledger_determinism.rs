//! The predictor-accuracy ledger's determinism contract, checked from
//! outside every crate: a ledger rebuilt from its own JSONL dump is
//! bit-identical to the live one (same EWMA state, same alarms, same
//! re-dump bytes), telemetry-armed clean runs never raise a drift
//! alarm on any workload shape, and a seeded WAN degradation raises
//! alarms only on the network component — the predictor's disk and
//! compute terms stay calibrated when only the WAN lies.

use fg_bench::figures::sched_models;
use freeride_g::sched::{
    AccuracyLedger, AccuracySample, Component, Degradation, DriftConfig, GridSpec, JobSpec,
    LoadLevel, Policy, Scheduler, TelemetryConfig, WorkloadShape, WorkloadSpec,
};
use proptest::prelude::*;

/// SplitMix64 value well (the vendored proptest has no combinator
/// strategies): one drawn seed fans out into sample fields.
struct Well(u64);

impl Well {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A positive duration with awkward mantissa bits.
    fn secs(&mut self) -> f64 {
        0.05 + (self.next() % 1_000_000) as f64 / 9973.0
    }

    /// A sample over a small key space so EWMA chains get long enough
    /// to make replay order-sensitivity observable.
    fn sample(&mut self, i: usize) -> AccuracySample {
        let apps = ["kmeans", "apriori"];
        let repos = ["repo-0", "repo-1"];
        let predicted = [self.secs(), self.secs(), self.secs()];
        // Observed = predicted scaled by a per-component factor in
        // roughly [0.5, 2): residuals big enough to move the EWMA,
        // occasionally big enough to trip an alarm (replay must then
        // re-raise it identically).
        let observed = [
            predicted[0] * (0.5 + (self.next() % 150) as f64 / 100.0),
            predicted[1] * (0.5 + (self.next() % 150) as f64 / 100.0),
            predicted[2] * (0.5 + (self.next() % 150) as f64 / 100.0),
        ];
        let placed_at = self.secs();
        AccuracySample {
            seq: 0, // the ledger assigns ingestion order
            id: i,
            tenant: (self.next() % 4) as usize,
            app: apps[(self.next() % 2) as usize].to_string(),
            repo: repos[(self.next() % 2) as usize].to_string(),
            config: "demo".to_string(),
            dataset_bytes: self.next() % (1 << 32),
            predicted,
            observed,
            placed_at,
            finish: placed_at + observed.iter().sum::<f64>(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rebuild-from-dump is a fixpoint: replaying a ledger's JSONL
    /// dump reproduces the EWMA state, the alarm history, and the
    /// dump bytes themselves, bit for bit. (Holds as long as nothing
    /// was evicted — the dump carries only retained samples — so the
    /// sample count stays under the per-key capacity here.)
    #[test]
    fn a_ledger_rebuilt_from_its_dump_is_bit_identical(seed in any::<u64>()) {
        let mut w = Well(seed);
        let mut live = AccuracyLedger::new(DriftConfig::default());
        let n = 1 + (w.next() % 48) as usize;
        for i in 0..n {
            let s = w.sample(i);
            live.ingest(s);
        }

        let dump = live.dump_jsonl();
        let rebuilt = AccuracyLedger::replay_jsonl(&dump).expect("dump replays");

        prop_assert_eq!(rebuilt.total(), live.total());
        prop_assert_eq!(rebuilt.key_drift(), live.key_drift());
        prop_assert_eq!(rebuilt.alarms(), live.alarms());
        // The re-dump is a fixpoint: byte-identical to the original.
        prop_assert_eq!(rebuilt.dump_jsonl(), dump);
    }
}

fn shaped_jobs(shape: WorkloadShape, seed: u64) -> Vec<JobSpec> {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    WorkloadSpec::shaped(shape, LoadLevel::Medium, &names, seed).generate()
}

/// A fault-free run never trips the drift detector, on any workload
/// shape: every completion lands in the ledger, yet the alarm list
/// stays empty — the z-gate's whole point is to stay quiet while the
/// predictor is honest.
#[test]
fn clean_runs_never_raise_a_drift_alarm_on_any_shape() {
    for shape in WorkloadShape::ALL {
        for seed in [3, 17] {
            let jobs = shaped_jobs(shape, seed);
            let result = Scheduler::new(GridSpec::demo(sched_models()), Policy::EdfAdmit)
                .with_telemetry(TelemetryConfig::default())
                .run(&jobs);
            let report = result.telemetry.expect("telemetry was armed");
            assert!(
                report.snapshot.samples > 0,
                "{} seed {seed}: completions must reach the ledger",
                shape.name()
            );
            assert!(
                report.snapshot.alarms.is_empty(),
                "{} seed {seed}: clean run tripped {:?}",
                shape.name(),
                report.snapshot.alarms
            );
            assert!(report.ledger.alarms().is_empty());
        }
    }
}

/// A seeded WAN degradation mid-run trips the drift detector, and
/// every alarm blames the network component — the disk and compute
/// terms of the prediction stayed honest, so the ledger must not smear
/// the fault across them.
#[test]
fn a_wan_degradation_raises_net_alarms_only() {
    let grid = GridSpec::demo(sched_models());
    let jobs =
        WorkloadSpec::shaped(WorkloadShape::Uniform, LoadLevel::Heavy, &["kmeans"], 9).generate();
    // Onset at the median arrival: enough clean completions first to
    // build per-key baselines, enough faulted ones after to trip.
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];

    // The degraded repository serves only a handful of this stream's
    // jobs, so shorten the detector's warm-up; everything else stays
    // at the defaults.
    let mut telemetry = TelemetryConfig::default();
    telemetry.drift.min_samples = 3;

    let clean =
        Scheduler::new(grid.clone(), Policy::Fcfs).with_telemetry(telemetry.clone()).run(&jobs);
    let report = clean.telemetry.expect("telemetry armed");
    assert!(report.snapshot.alarms.is_empty(), "no fault, no alarm");

    let degraded = Scheduler::new(grid, Policy::Fcfs)
        .with_telemetry(telemetry)
        .with_degradation(Degradation { repo: 0, start: onset, factor: 0.15 })
        .run(&jobs);
    let report = degraded.telemetry.expect("telemetry armed");
    assert!(
        !report.snapshot.alarms.is_empty(),
        "a 6.7x WAN slowdown must trip the drift detector (ledger: {:?})",
        report.ledger.key_drift()
    );
    for alarm in &report.snapshot.alarms {
        assert_eq!(alarm.component, Component::Net, "only the WAN lied: {alarm:?}");
        assert!(alarm.at >= onset, "alarm {alarm:?} predates the fault at {onset}");
        assert_eq!(alarm.repo, "repo-a", "the degraded repository is to blame: {alarm:?}");
    }
}
