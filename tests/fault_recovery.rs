//! Fault-injection invariants across the whole stack: recovery may
//! change *when* the answer arrives, never *what* it is.
//!
//! The executor keeps the chunk-to-compute-node assignment fixed for
//! the life of a run — crashes, degradation windows, stragglers, and
//! migrations only move the *fetch* side and the clock. These tests pin
//! that contract from outside the crate: any schedule yields the same
//! final reduction state, an empty schedule is bit-identical to the
//! fault-free executor, and a seeded schedule is fully deterministic.

use freeride_g::apps::kmeans;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Executor, FaultOptions};
use freeride_g::sim::{FaultSchedule, SimDuration, SimTime};
use proptest::prelude::*;

const SCALE: f64 = 0.01;

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

/// Like [`deployment`], but with no compute-side storage: every pass
/// refetches over the WAN, so mid-run faults stay observable.
fn refetch_deployment(n: usize, c: usize) -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("cs", 16);
    site.node_storage_bytes = 0;
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        site,
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

fn centroid_bits(state: &kmeans::KMeansState) -> Vec<Vec<u32>> {
    state.centroids.iter().map(|c| c.iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn empty_schedule_is_bit_identical_to_the_fault_free_executor() {
    let ds = kmeans::generate("fr-empty", 20.0, SCALE, 11, 4);
    let app = kmeans::KMeans::paper(11);
    let plain = Executor::new(deployment(4, 8)).run(&app, &ds);
    let faulty = Executor::new(deployment(4, 8)).run_with_faults(
        &app,
        &ds,
        &FaultSchedule::none(),
        &FaultOptions::default(),
        None,
    );
    assert_eq!(plain.report, faulty.report);
    assert_eq!(centroid_bits(&plain.final_state), centroid_bits(&faulty.final_state));
}

#[test]
fn seeded_schedules_are_deterministic() {
    let ds = kmeans::generate("fr-det", 20.0, SCALE, 12, 4);
    let app = kmeans::KMeans::paper(12);
    let horizon = SimDuration::from_secs(120);
    let schedule = FaultSchedule::random(8, 4, 8, horizon);
    let run = || {
        Executor::new(refetch_deployment(4, 8)).run_with_faults(
            &app,
            &ds,
            &schedule,
            &FaultOptions::default(),
            None,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report, b.report);
    assert_eq!(centroid_bits(&a.final_state), centroid_bits(&b.final_state));
}

#[test]
fn crash_recovery_costs_time_but_not_correctness() {
    let ds = kmeans::generate("fr-crash", 20.0, SCALE, 13, 4);
    let app = kmeans::KMeans::paper(13);
    let plain = Executor::new(refetch_deployment(4, 8)).run(&app, &ds);
    // Two of four data nodes die before the run starts: every pass pays
    // the slower surviving streams, the first pays detection too.
    let schedule = FaultSchedule::none().crash(1, SimTime::ZERO).crash(3, SimTime::ZERO);
    let faulty = Executor::new(refetch_deployment(4, 8)).run_with_faults(
        &app,
        &ds,
        &schedule,
        &FaultOptions::default(),
        None,
    );
    assert!(!faulty.report.t_fault_detection().is_zero());
    assert!(faulty.report.total() > plain.report.total());
    assert_eq!(centroid_bits(&plain.final_state), centroid_bits(&faulty.final_state));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: whatever the schedule throws at the run
    /// — crashes, WAN degradation, stragglers, in any combination — the
    /// final reduction state is bit-for-bit the fault-free one.
    #[test]
    fn any_fault_schedule_preserves_the_reduction_result(seed in 0u64..1000) {
        let ds = kmeans::generate("fr-prop", 8.0, SCALE, 17, 4);
        let app = kmeans::KMeans::paper(17);
        let plain = Executor::new(refetch_deployment(4, 8)).run(&app, &ds);
        let horizon = plain.report.total();
        let schedule = FaultSchedule::random(seed, 4, 8, horizon);
        let faulty = Executor::new(refetch_deployment(4, 8)).run_with_faults(
            &app,
            &ds,
            &schedule,
            &FaultOptions::default(),
            None,
        );
        prop_assert_eq!(centroid_bits(&plain.final_state), centroid_bits(&faulty.final_state));
        // Faults never make the run faster.
        prop_assert!(faulty.report.total() >= plain.report.total());
        // And recovery components account exactly for the report's own
        // bookkeeping: total stays the component sum.
        let r = &faulty.report;
        prop_assert_eq!(
            r.total(),
            r.t_disk() + r.t_network() + r.t_compute() + r.t_recovery()
        );
    }

    /// Hand-built single-fault schedules, exercised one dimension at a
    /// time so a regression pinpoints its dimension.
    #[test]
    fn single_faults_preserve_the_reduction_result(
        crash_node in 1usize..4,
        crash_at_ms in 0u64..60_000,
        factor in 0.2f64..1.0,
        slowdown in 1.5f64..8.0,
        straggler in 0usize..8,
    ) {
        let ds = kmeans::generate("fr-single", 8.0, SCALE, 19, 4);
        let app = kmeans::KMeans::paper(19);
        let plain = Executor::new(refetch_deployment(4, 8)).run(&app, &ds);
        let schedules = [
            FaultSchedule::none()
                .crash(crash_node, SimTime::ZERO + SimDuration::from_millis(crash_at_ms)),
            FaultSchedule::none().degrade(
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_millis(crash_at_ms + 1),
                factor,
            ),
            FaultSchedule::none().straggler(straggler, slowdown),
        ];
        for schedule in &schedules {
            let faulty = Executor::new(refetch_deployment(4, 8)).run_with_faults(
                &app,
                &ds,
                schedule,
                &FaultOptions::default(),
                None,
            );
            prop_assert_eq!(
                centroid_bits(&plain.final_state),
                centroid_bits(&faulty.final_state)
            );
            prop_assert!(faulty.report.total() >= plain.report.total());
        }
    }
}
