//! Class inference (§3.3) recovers the documented class pair for every
//! application from real profile runs — the "analyzing multiple profile
//! runs" alternative to user-supplied classes.

use freeride_g::apps::{apriori, defect, em, kmeans, knn, vortex};
use freeride_g::chunks::Dataset;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Executor, ReductionApp};
use freeride_g::predict::{AppClasses, Profile};

const SCALE: f64 = 0.002;

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

/// Profile on (1-1 small), (1-8 small), (1-1 large): node count and
/// dataset size vary independently, so both classes are identifiable.
fn infer<A: ReductionApp>(app: &A, small: &Dataset, large: &Dataset) -> AppClasses {
    let p1 = Profile::from_report(&Executor::new(deployment(1, 1)).run(app, small).report);
    let p2 = Profile::from_report(&Executor::new(deployment(1, 8)).run(app, small).report);
    let p3 = Profile::from_report(&Executor::new(deployment(1, 1)).run(app, large).report);
    AppClasses::infer(&[p1, p2, p3]).expect("independent s/c variation is informative")
}

#[test]
fn kmeans_inference_matches_documentation() {
    let small = kmeans::generate("ci-km-s", 100.0, SCALE, 1, 4);
    let large = kmeans::generate("ci-km-l", 400.0, SCALE, 2, 4);
    let got = infer(&kmeans::KMeans::paper(1), &small, &large);
    assert_eq!(got, AppClasses::for_app("kmeans"));
}

#[test]
fn knn_inference_matches_documentation() {
    let small = knn::generate("ci-knn-s", 100.0, SCALE, 1);
    let large = knn::generate("ci-knn-l", 400.0, SCALE, 2);
    let got = infer(&knn::Knn::paper(1), &small, &large);
    assert_eq!(got, AppClasses::for_app("knn"));
}

#[test]
fn em_inference_matches_documentation() {
    let small = em::generate("ci-em-s", 100.0, SCALE, 1, 3);
    let large = em::generate("ci-em-l", 400.0, SCALE, 2, 3);
    let got = infer(&em::Em::paper(1), &small, &large);
    assert_eq!(got, AppClasses::for_app("em"));
}

#[test]
fn vortex_inference_matches_documentation() {
    let (small, _) = vortex::generate("ci-vx-s", 100.0, SCALE * 4.0, 1);
    let (large, _) = vortex::generate("ci-vx-l", 400.0, SCALE * 4.0, 2);
    let got = infer(&vortex::VortexDetect::default(), &small, &large);
    assert_eq!(got, AppClasses::for_app("vortex"));
}

#[test]
fn defect_inference_matches_documentation() {
    let (small, _) = defect::generate("ci-df-s", 100.0, SCALE * 4.0, 1);
    let (large, _) = defect::generate("ci-df-l", 400.0, SCALE * 4.0, 2);
    // The two datasets have different layer counts; the app instance is
    // dataset-specific, so build per dataset but infer across profiles.
    let a1 = defect::DefectDetect::for_dataset(&small);
    let a2 = defect::DefectDetect::for_dataset(&large);
    let p1 = Profile::from_report(&Executor::new(deployment(1, 1)).run(&a1, &small).report);
    let p2 = Profile::from_report(&Executor::new(deployment(1, 8)).run(&a1, &small).report);
    let p3 = Profile::from_report(&Executor::new(deployment(1, 1)).run(&a2, &large).report);
    let got = AppClasses::infer(&[p1, p2, p3]).expect("informative");
    assert_eq!(got, AppClasses::for_app("defect"));
}

#[test]
fn apriori_inference_matches_documentation() {
    let patterns = [[2u32, 17, 40]];
    let small = apriori::generate("ci-ap-s", 100.0, SCALE, 1, &patterns);
    let large = apriori::generate("ci-ap-l", 400.0, SCALE, 2, &patterns);
    let got = infer(&apriori::Apriori::standard(), &small, &large);
    assert_eq!(got, AppClasses::for_app("apriori"));
}
