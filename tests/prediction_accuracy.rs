//! End-to-end accuracy: profile at 1-1, predict every paper
//! configuration, compare against actual simulated executions — the
//! experiment structure of §5.1, with coarse error bounds as assertions.

use freeride_g::apps::{ann, apriori, defect, em, kmeans, knn, vortex};
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Executor, ReductionApp};
use freeride_g::predict::{
    relative_error, AppClasses, ComputeModel, ExecTimePredictor, InterconnectParams, Profile,
    Target,
};

const SCALE: f64 = 0.004;

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(2e6),
        Configuration::new(n, c),
    )
}

/// Profile on 1-1, predict all paper configurations with the global
/// reduction model, and assert every error stays under `bound`.
fn check_app<A: ReductionApp>(app: &A, dataset: &freeride_g::chunks::Dataset, bound: f64) {
    let profile_run = Executor::new(deployment(1, 1)).run(app, dataset);
    let profile = Profile::from_report(&profile_run.report);
    let classes = AppClasses::for_app(app.name());
    let predictor = ExecTimePredictor {
        profile,
        classes,
        interconnect: InterconnectParams::of_site(&deployment(1, 1).compute),
        model: ComputeModel::GlobalReduction,
    };
    for cfg in Configuration::paper_grid() {
        let d = deployment(cfg.data_nodes, cfg.compute_nodes);
        let actual = Executor::new(d).run(app, dataset).report;
        let target = Target {
            data_nodes: cfg.data_nodes,
            compute_nodes: cfg.compute_nodes,
            wan_bw: 2e6,
            dataset_bytes: dataset.logical_bytes(),
        };
        let predicted = predictor.predict(&target);
        let err = relative_error(actual.total().as_secs_f64(), predicted.total());
        assert!(
            err < bound,
            "{}: config {} error {:.2}% exceeds {:.0}% (actual {:.2}s predicted {:.2}s)",
            app.name(),
            cfg.label(),
            err * 100.0,
            bound * 100.0,
            actual.total().as_secs_f64(),
            predicted.total()
        );
    }
}

#[test]
fn kmeans_prediction_tracks_simulation() {
    let ds = kmeans::generate("acc-km", 140.0, SCALE, 1, 8);
    check_app(&kmeans::KMeans::paper(1), &ds, 0.05);
}

#[test]
fn em_prediction_tracks_simulation() {
    let ds = em::generate("acc-em", 140.0, SCALE, 2, 4);
    check_app(&em::Em::paper(2), &ds, 0.05);
}

#[test]
fn knn_prediction_tracks_simulation() {
    let ds = knn::generate("acc-knn", 140.0, SCALE, 3);
    check_app(&knn::Knn::paper(3), &ds, 0.05);
}

#[test]
fn vortex_prediction_tracks_simulation() {
    let (ds, _) = vortex::generate("acc-vx", 71.0, SCALE * 4.0, 4);
    check_app(&vortex::VortexDetect::default(), &ds, 0.05);
}

#[test]
fn defect_prediction_tracks_simulation() {
    let (ds, _) = defect::generate("acc-df", 130.0, SCALE, 5);
    let app = defect::DefectDetect::for_dataset(&ds);
    check_app(&app, &ds, 0.05);
}

#[test]
fn apriori_prediction_tracks_simulation() {
    let ds = apriori::generate("acc-ap", 140.0, SCALE, 6, &[[2, 17, 40], [5, 23, 51]]);
    check_app(&apriori::Apriori::standard(), &ds, 0.05);
}

#[test]
fn ann_prediction_tracks_simulation() {
    let ds = ann::generate("acc-ann", 140.0, SCALE, 7);
    check_app(&ann::AnnTrain::paper(7), &ds, 0.05);
}
