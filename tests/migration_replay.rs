//! Differential replay harness for checkpoint → migrate → resume.
//!
//! A generalized reduction's progress is completely captured by its
//! reduction objects, so suspending a run at any chunk boundary,
//! shipping the checkpoint through its serialized wire format, and
//! resuming it — on the same replica or a different one — must
//! reproduce the uninterrupted run's final state *bit for bit*. The
//! first half of this suite proves that differentially for all seven
//! paper applications, at pseudo-random split points, under empty and
//! non-empty fault schedules.
//!
//! The second half turns migration, preemption, and quotas on inside
//! the scheduler and re-checks every invariant the base scheduler suite
//! pins (`tests/scheduler_invariants.rs`): no fairness or
//! work-conservation violations, well-formed traces, metrics that agree
//! with outcomes, ordered phases, rejected jobs never occupying the
//! grid, and bit-identical reruns.

use fg_bench::figures::{migrate_run, workload_migrate_run};
use fg_bench::PaperApp;
use freeride_g::apps::{ann, apriori, defect, em, kmeans, knn, vortex};
use freeride_g::chunks::Dataset;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Checkpoint, Executor, FaultOptions, ReductionApp, StopPoint};
use freeride_g::sched::{LoadLevel, Policy, WorkloadShape};
use freeride_g::sim::{FaultSchedule, SimDuration, SimTime};
use freeride_g::trace::{to_jsonl, SpanKind};
use proptest::prelude::*;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

const SCALE: f64 = 0.01;
const NOMINAL_MB: f64 = 8.0;

const ALL_APPS: [PaperApp; 7] = [
    PaperApp::KMeans,
    PaperApp::Em,
    PaperApp::Knn,
    PaperApp::Vortex,
    PaperApp::Defect,
    PaperApp::Apriori,
    PaperApp::Ann,
];

/// Home replica: no compute-side storage, so every pass refetches over
/// the WAN and mid-run faults (and replica switches) stay observable.
fn home_deployment() -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("cs", 16);
    site.node_storage_bytes = 0;
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        site,
        Wan::per_stream(40e6),
        Configuration::new(2, 4),
    )
}

/// A second replica of the same dataset behind a faster link; resuming
/// here is a migration.
fn away_deployment() -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("cs", 16);
    site.node_storage_bytes = 0;
    Deployment::new(
        RepositorySite::pentium_repository("repo-b", 8),
        site,
        Wan::per_stream(80e6),
        Configuration::new(2, 4),
    )
}

/// Render a serialized value with floats spelled as raw bit patterns,
/// so comparing two renderings is a *bit*-equality check (`f64`'s
/// `PartialEq` would conflate `0.0` with `-0.0`).
fn canon(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('n'),
        Value::Bool(b) => {
            let _ = write!(out, "b{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "i{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "u{u}");
        }
        Value::Float(f) => {
            let _ = write!(out, "f{:016x}", f.to_bits());
        }
        Value::Str(s) => {
            let _ = write!(out, "s{s:?}");
        }
        Value::Array(xs) => {
            out.push('[');
            for x in xs {
                canon(x, out);
                out.push(',');
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (k, x) in fields {
                let _ = write!(out, "{k:?}:");
                canon(x, out);
                out.push(',');
            }
            out.push('}');
        }
    }
}

fn state_bits<S: Serialize>(state: &S) -> String {
    let mut out = String::new();
    canon(&state.to_value(), &mut out);
    out
}

fn lcg_next(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 33
}

/// The differential: run uninterrupted, then split at each point, push
/// the checkpoint through its wire format, and resume on the home and
/// the away replica. Every final state must be bit-identical to the
/// uninterrupted one.
fn differential_replay<A>(
    app: &A,
    ds: &Dataset,
    schedule: &FaultSchedule,
    n_splits: usize,
    lcg: &mut u64,
) where
    A: ReductionApp,
    A::State: Serialize + Deserialize,
    A::Obj: Serialize + Deserialize,
{
    let opts = FaultOptions::default();
    let home = Executor::new(home_deployment());
    let unsplit = home.run_with_faults(app, ds, schedule, &opts, None);
    let want = state_bits(&unsplit.final_state);
    let passes = unsplit.report.num_passes();
    assert!(passes >= 1);

    for _ in 0..n_splits {
        let pass = (lcg_next(lcg) as usize) % passes;
        let cursor = (lcg_next(lcg) as usize) % (ds.num_chunks() + 1);
        let label = format!("{} split (pass {pass}, chunk {cursor})", app.name());

        let ck = home
            .run_resumable(app, ds, schedule, &opts, StopPoint { pass, cursor })
            .expect_suspended(&label);
        assert_eq!(ck.pass_idx, pass);
        assert_eq!(ck.cursor, cursor);

        // The checkpoint travels serialized: the resumes below consume
        // what came back out of the wire format, not the original.
        let wire = ck.to_value();
        let back: Checkpoint<A::State, A::Obj> =
            Deserialize::from_value(&wire).unwrap_or_else(|e| panic!("{label}: round-trip: {e}"));
        let resumed = home.resume_from(app, ds, back, schedule, &opts);
        assert_eq!(state_bits(&resumed.final_state), want, "{label}: same-replica resume");
        assert_eq!(resumed.report.num_passes(), passes, "{label}: pass count");

        let moved: Checkpoint<A::State, A::Obj> =
            Deserialize::from_value(&wire).expect("second decode of the same wire value");
        let away = Executor::new(away_deployment());
        let migrated = away.resume_from(app, ds, moved, schedule, &opts);
        assert_eq!(state_bits(&migrated.final_state), want, "{label}: cross-replica resume");
        if cursor < ds.num_chunks() {
            assert_eq!(
                migrated.report.passes[pass].migration, opts.migration_overhead,
                "{label}: replica switch must charge the migration overhead"
            );
        }
    }
}

/// Monomorphization shim: build the fixed experiment instance of each
/// paper application (same parameters as `PaperApp::execute`) and hand
/// it to the generic harness.
fn replay_app(
    app: PaperApp,
    ds: &Dataset,
    schedule: &FaultSchedule,
    n_splits: usize,
    lcg: &mut u64,
) {
    match app {
        PaperApp::KMeans => {
            differential_replay(&kmeans::KMeans::paper(7), ds, schedule, n_splits, lcg)
        }
        PaperApp::Em => differential_replay(&em::Em::paper(7), ds, schedule, n_splits, lcg),
        PaperApp::Knn => differential_replay(&knn::Knn::paper(7), ds, schedule, n_splits, lcg),
        PaperApp::Vortex => {
            differential_replay(&vortex::VortexDetect::default(), ds, schedule, n_splits, lcg)
        }
        PaperApp::Defect => {
            differential_replay(&defect::DefectDetect::for_dataset(ds), ds, schedule, n_splits, lcg)
        }
        PaperApp::Apriori => {
            differential_replay(&apriori::Apriori::standard(), ds, schedule, n_splits, lcg)
        }
        PaperApp::Ann => differential_replay(&ann::AnnTrain::paper(7), ds, schedule, n_splits, lcg),
    }
}

#[test]
fn every_app_replays_bit_identically_without_faults() {
    let mut lcg = 0x5eed_0001;
    for app in ALL_APPS {
        let ds = app.generate(&format!("mr-clean-{}", app.name()), NOMINAL_MB, SCALE, 23);
        replay_app(app, &ds, &FaultSchedule::none(), 3, &mut lcg);
    }
}

#[test]
fn every_app_replays_bit_identically_under_faults() {
    // One of two data nodes crashed from the start, a permanent WAN
    // degradation window, and a compute straggler — all three fault
    // dimensions live across the split.
    let schedule = FaultSchedule::none()
        .crash(1, SimTime::ZERO)
        .degrade(SimTime::ZERO, SimTime::MAX, 0.5)
        .straggler(2, 3.0);
    let mut lcg = 0x5eed_0002;
    for app in ALL_APPS {
        let ds = app.generate(&format!("mr-fault-{}", app.name()), NOMINAL_MB, SCALE, 29);
        replay_app(app, &ds, &schedule, 2, &mut lcg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Random fault schedules *and* random split points, with the
    /// application rotating per case: whatever timing the schedule
    /// produces, the replayed run lands on the same bits.
    #[test]
    fn random_fault_schedules_replay_bit_identically(seed in 0u64..1000) {
        let app = ALL_APPS[(seed % 7) as usize];
        let ds = app.generate(&format!("mr-prop-{}", app.name()), NOMINAL_MB, SCALE, 31);
        let schedule = FaultSchedule::random(seed, 2, 4, SimDuration::from_secs(120));
        let mut lcg = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        replay_app(app, &ds, &schedule, 2, &mut lcg);
    }
}

// ---------------------------------------------------------------------
// Scheduler half: the PR-3 invariants must survive migration,
// preemption, quotas, and degradation all being switched on at once.
// ---------------------------------------------------------------------

/// Every invariant the base suite checks per run, applied to a
/// migration-enabled scheduler result.
fn check_sched_invariants(r: &freeride_g::sched::SchedResult, label: &str) {
    assert!(r.violations.is_empty(), "{label}: violations: {:?}", r.violations);
    r.trace.check_well_formed().unwrap_or_else(|e| panic!("{label}: malformed trace: {e}"));

    let admitted = r.outcomes.iter().filter(|o| o.admitted).count() as u64;
    let rejected = r.outcomes.iter().filter(|o| !o.admitted).count() as u64;
    let m = &r.trace.metrics;
    assert_eq!(m.counter("sched_jobs_admitted"), Some(admitted), "{label}");
    assert_eq!(m.counter("sched_jobs_rejected"), Some(rejected), "{label}");
    assert_eq!(m.counter("sched_jobs_completed"), Some(admitted), "{label}");
    assert_eq!(m.counter("sched_jobs_submitted"), Some(r.outcomes.len() as u64), "{label}");
    // Quotas are on in these runs, and the violation counter is the
    // structural "never exceeded" guarantee.
    assert_eq!(m.counter("sched_quota_violations"), Some(0), "{label}");

    for o in &r.outcomes {
        assert_eq!(o.admitted, o.finish.is_some(), "{label} job {}", o.id);
        if !o.admitted {
            assert!(o.reject_reason.is_some(), "{label} job {}: rejection needs a reason", o.id);
            assert!(
                o.placement.is_none() && o.placed_at.is_none(),
                "{label} job {}: a rejected job must never occupy the grid",
                o.id
            );
            continue;
        }
        // Phases stay ordered even when the job was checkpointed off
        // the grid or switched replicas along the way.
        let (placed, disk, net, fin) =
            (o.placed_at.unwrap(), o.disk_end.unwrap(), o.network_end.unwrap(), o.finish.unwrap());
        assert!(
            o.arrival <= placed && placed <= disk && disk <= net && net <= fin,
            "{label} job {}: phases out of order: {placed} {disk} {net} {fin}",
            o.id
        );
        assert!(o.slowdown().unwrap() >= 1.0 - 1e-6, "{label} job {}", o.id);
        for p in &o.preemptions {
            let resumed = p.resumed_at.unwrap_or(fin);
            assert!(
                placed <= p.preempted_at && p.preempted_at <= resumed && resumed <= fin,
                "{label} job {}: preemption window out of range",
                o.id
            );
        }
        if let Some(mig) = &o.migration {
            assert!(
                placed <= mig.at && mig.at < mig.until && mig.until <= fin,
                "{label} job {}: migration window out of range",
                o.id
            );
            assert_ne!(mig.from_repo, mig.to_repo, "{label} job {}", o.id);
        }
    }
}

#[test]
fn migration_enabled_scheduler_keeps_every_pr3_invariant() {
    for policy in Policy::ALL {
        for load in [LoadLevel::Light, LoadLevel::Medium] {
            let r = migrate_run(policy, load, true, true);
            check_sched_invariants(&r, &format!("{} {}", policy.name(), load.name()));
        }
    }
    // One heavy run: the busiest mix of preemptions and migrations.
    let r = migrate_run(Policy::FcfsBackfill, LoadLevel::Heavy, true, true);
    check_sched_invariants(&r, "fcfs-backfill heavy");
}

#[test]
fn migration_enabled_scheduler_is_deterministic() {
    let a = migrate_run(Policy::FcfsBackfill, LoadLevel::Medium, true, true);
    let b = migrate_run(Policy::FcfsBackfill, LoadLevel::Medium, true, true);
    assert_eq!(
        serde_json::to_string(&a.outcomes).unwrap(),
        serde_json::to_string(&b.outcomes).unwrap(),
        "outcomes must be bit-identical across reruns"
    );
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace), "traces must be bit-identical");
}

#[test]
fn migration_keeps_every_invariant_under_trace_shaped_traffic() {
    // Re-verification over the workload rework: the full stack —
    // quotas, preemption, degradation, migration — driven by the
    // heavy-tail and bursty presets instead of the uniform one. Burst
    // pile-ups maximize preemption pressure and Pareto giants make
    // individual checkpoints enormous; the invariants must not care.
    for shape in WorkloadShape::TRACE_SHAPED {
        let r = workload_migrate_run(shape, true);
        let label = format!("workload-migrate {}", shape.name());
        check_sched_invariants(&r, &label);
        assert!(
            r.trace.metrics.counter("sched_migrations").unwrap() >= 1,
            "{label}: the degraded repository must trigger at least one migration"
        );
    }
}

#[test]
fn trace_shaped_migration_runs_are_deterministic() {
    let a = workload_migrate_run(WorkloadShape::Bursty, true);
    let b = workload_migrate_run(WorkloadShape::Bursty, true);
    assert_eq!(
        serde_json::to_string(&a.outcomes).unwrap(),
        serde_json::to_string(&b.outcomes).unwrap(),
        "bursty migration outcomes must be bit-identical across reruns"
    );
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace), "bursty migration traces must match");
}

#[test]
fn migration_runs_exercise_all_three_new_span_kinds() {
    let r = migrate_run(Policy::FcfsBackfill, LoadLevel::Heavy, true, true);
    let kinds: Vec<SpanKind> = r.trace.spans.iter().map(|s| s.kind).collect();
    for kind in [SpanKind::Checkpoint, SpanKind::Preempted, SpanKind::Migrate] {
        assert!(kinds.contains(&kind), "heavy degraded run must record {kind:?} spans");
    }
    assert!(r.trace.metrics.counter("sched_migrations").unwrap() >= 1);
    assert!(r.trace.metrics.counter("sched_preemptions").unwrap() >= 1);
}
