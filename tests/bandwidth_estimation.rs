//! Bandwidth estimation feeding the network predictor: the §3.2 loop of
//! "determine `b̂` with a forecaster, then predict `T_network` with it",
//! closed end-to-end against actual executions on a fluctuating WAN.

use freeride_g::apps::knn;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::Executor;
use freeride_g::predict::bandwidth::{
    evaluate, synthetic_trace, BandwidthEstimator, Ewma, LastValue, MovingAverage,
};
use freeride_g::predict::{relative_error, Profile};

const SCALE: f64 = 0.004;

fn deployment(n: usize, c: usize, bw: f64) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(bw),
        Configuration::new(n, c),
    )
}

/// The end-to-end loop: observe transfer bandwidths from a trace, predict
/// the next run's network time with `b̂`, and compare against the actual
/// network time at the realized bandwidth.
#[test]
fn forecasted_bandwidth_predicts_network_time() {
    let ds = knn::generate("bw-e2e", 350.0, SCALE, 9);
    let app = knn::Knn::paper(9);
    // Profile at the trace's long-run level.
    let mean_bw = 20e6;
    let profile =
        Profile::from_report(&Executor::new(deployment(1, 2, mean_bw)).run(&app, &ds).report);
    let trace = synthetic_trace(mean_bw, 40, 3);
    let mut estimator = Ewma::new(0.4);
    let mut errors = Vec::new();
    for window in trace.windows(2) {
        estimator.observe(window[0]);
        let b_hat = estimator.estimate();
        let b_actual = window[1];
        // Model: T̂_network = (b/b̂) * t_n at the same (n, s).
        let predicted_net = profile.t_network * (profile.wan_bw / b_hat);
        let actual_net = Executor::new(deployment(1, 2, b_actual))
            .run(&app, &ds)
            .report
            .t_network()
            .as_secs_f64();
        errors.push(relative_error(actual_net, predicted_net));
    }
    let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        mean_err < 0.20,
        "forecast-driven network predictions too loose: mean {:.1}%",
        mean_err * 100.0
    );
    // And with a *perfect* forecast the model is essentially exact,
    // confirming the residual comes from forecasting, not the model.
    let oracle_err = {
        let b = trace[5];
        let predicted = profile.t_network * (profile.wan_bw / b);
        let actual =
            Executor::new(deployment(1, 2, b)).run(&app, &ds).report.t_network().as_secs_f64();
        relative_error(actual, predicted)
    };
    assert!(oracle_err < 0.01, "oracle bandwidth should be near-exact: {oracle_err}");
}

/// Estimator quality ordering on a long trace is stable under the seeds
/// used by the experiments.
#[test]
fn estimators_beat_gross_misprediction() {
    for seed in [1u64, 2, 3] {
        let trace = synthetic_trace(40e6, 300, seed);
        let e_ewma = evaluate(&mut Ewma::new(0.4), &trace);
        let e_ma = evaluate(&mut MovingAverage::new(8), &trace);
        let e_last = evaluate(&mut LastValue::default(), &trace);
        for e in [e_ewma, e_ma, e_last] {
            assert!(e < 0.25, "estimator error out of band (seed {seed}): {e}");
        }
    }
}
