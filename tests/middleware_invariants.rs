//! Cross-crate middleware invariants: breakdown additivity, caching
//! semantics, reduction-object monotonicity, and determinism.

use freeride_g::apps::{apriori, em, kmeans, knn, vortex};
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{ExecutionReport, Executor};
use freeride_g::sim::SimDuration;

const SCALE: f64 = 0.004;

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

fn reports() -> Vec<ExecutionReport> {
    let mut out = Vec::new();
    let km = kmeans::generate("mi-km", 100.0, SCALE, 1, 4);
    out.push(Executor::new(deployment(2, 4)).run(&kmeans::KMeans::paper(1), &km).report);
    let emd = em::generate("mi-em", 100.0, SCALE, 1, 3);
    out.push(Executor::new(deployment(2, 4)).run(&em::Em::paper(1), &emd).report);
    let knnd = knn::generate("mi-knn", 100.0, SCALE, 1);
    out.push(Executor::new(deployment(2, 4)).run(&knn::Knn::paper(1), &knnd).report);
    let (vx, _) = vortex::generate("mi-vx", 100.0, SCALE * 4.0, 1);
    out.push(Executor::new(deployment(2, 4)).run(&vortex::VortexDetect::default(), &vx).report);
    let ap = apriori::generate("mi-ap", 50.0, SCALE, 1, &[[2, 17, 40]]);
    out.push(Executor::new(deployment(2, 4)).run(&apriori::Apriori::standard(), &ap).report);
    out
}

#[test]
fn total_is_exactly_the_component_sum() {
    for report in reports() {
        assert_eq!(
            report.total(),
            report.t_disk() + report.t_network() + report.t_compute(),
            "{}: T_exec must equal T_disk + T_network + T_compute",
            report.app
        );
        assert!(report.t_ro() + report.t_g() <= report.t_compute());
    }
}

#[test]
fn every_component_is_positive_on_multi_node_runs() {
    for report in reports() {
        assert!(!report.t_disk().is_zero(), "{}: no retrieval time", report.app);
        assert!(!report.t_network().is_zero(), "{}: no network time", report.app);
        assert!(!report.t_compute().is_zero(), "{}: no compute time", report.app);
        assert!(!report.t_ro().is_zero(), "{}: no gather time at c=4", report.app);
        assert!(!report.t_g().is_zero(), "{}: no global reduction time", report.app);
        assert!(report.max_obj_bytes() > 0, "{}: empty reduction object", report.app);
    }
}

#[test]
fn caching_applications_fetch_remotely_exactly_once() {
    for report in reports() {
        let remote_passes =
            report.passes.iter().filter(|p| !p.retrieval.is_zero() || !p.network.is_zero()).count();
        match report.app.as_str() {
            // Multi-pass, caching: only the first pass touches the WAN.
            "kmeans" | "em" | "apriori" => {
                assert_eq!(remote_passes, 1, "{}: cache not honored", report.app)
            }
            // Single pass.
            "knn" | "vortex" => assert_eq!(report.num_passes(), 1),
            other => panic!("unexpected app {other}"),
        }
    }
}

#[test]
fn wan_bandwidth_only_moves_network_time() {
    let ds = kmeans::generate("mi-bw", 100.0, SCALE, 2, 4);
    let app = kmeans::KMeans::paper(2);
    let fast = Executor::new(deployment(2, 4)).run(&app, &ds).report;
    let slow = Executor::new(Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(4e6),
        Configuration::new(2, 4),
    ))
    .run(&app, &ds)
    .report;
    assert_eq!(fast.t_disk(), slow.t_disk());
    assert_eq!(fast.t_compute(), slow.t_compute());
    assert!(slow.t_network() > fast.t_network() * 9);
}

#[test]
fn network_time_scales_inversely_with_bandwidth() {
    // The b-linearity assumption behind T_network's (b/b_hat) factor.
    let ds = kmeans::generate("mi-blin", 100.0, SCALE, 3, 4);
    let app = kmeans::KMeans::paper(3);
    let t = |bw: f64| {
        Executor::new(Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(bw),
            Configuration::new(1, 2),
        ))
        .run(&app, &ds)
        .report
        .t_network()
        .as_secs_f64()
    };
    let (t1, t2) = (t(10e6), t(5e6));
    let ratio = t2 / t1;
    assert!((ratio - 2.0).abs() < 0.05, "halving b should double network time: ratio {ratio}");
}

#[test]
fn virtual_times_are_bit_deterministic() {
    let ds = em::generate("mi-det", 100.0, SCALE, 4, 3);
    let app = em::Em::paper(4);
    let a = Executor::new(deployment(4, 8)).run(&app, &ds).report;
    let b = Executor::new(deployment(4, 8)).run(&app, &ds).report;
    assert_eq!(a.total(), b.total());
    for (pa, pb) in a.passes.iter().zip(b.passes.iter()) {
        assert_eq!(pa.retrieval, pb.retrieval);
        assert_eq!(pa.network, pb.network);
        assert_eq!(pa.local_compute, pb.local_compute);
        assert_eq!(pa.t_ro, pb.t_ro);
        assert_eq!(pa.t_g, pb.t_g);
        assert_eq!(pa.max_obj_bytes, pb.max_obj_bytes);
    }
}

#[test]
fn more_compute_nodes_never_slow_processing() {
    let ds = kmeans::generate("mi-mono", 100.0, SCALE, 5, 4);
    let app = kmeans::KMeans::paper(5);
    let mut prev = SimDuration::from_secs(1_000_000_000); // effectively infinite
    for c in [1usize, 2, 4, 8, 16] {
        let r = Executor::new(deployment(1, c)).run(&app, &ds).report;
        let local: SimDuration = r.passes.iter().map(|p| p.local_compute).sum();
        assert!(local <= prev, "local compute makespan should not grow with more nodes (c={c})");
        prev = local;
    }
}
