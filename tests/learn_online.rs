//! Online-learning end-to-end suite: the learned predictors trained by
//! a real scheduler run under a seeded bandwidth drift must (a)
//! round-trip through their JSONL dumps as byte fixpoints, (b) beat a
//! frozen analytical model's prediction error once trained — with
//! monotone improvement as samples accumulate — and (c) stay inside
//! the trust-region guard-rail that makes learned admission no more
//! permissive than 2× the analytical estimate.
//!
//! Every run freezes the bandwidth feedback loop (`with_ewma_alpha`
//! with a vanishing alpha) so the comparison isolates the *predictor*:
//! with feedback live, the scheduler itself would re-estimate the
//! degraded link and rescue the analytical model.

use fg_bench::figures::{sched_models, workload_jobs};
use fg_learn::{HybridPredictor, LearnedPredictor};
use freeride_g::cluster::{Configuration, DeploymentRef};
use freeride_g::predict::{Observation, Predictor};
use freeride_g::sched::sched::SchedResult;
use freeride_g::sched::{Degradation, GridSpec, Policy, Scheduler, TelemetryConfig, WorkloadShape};
use std::sync::Arc;

/// Freeze bandwidth feedback to (numerically) nothing: `Ewma` requires
/// a strictly positive alpha, and at 1e-12 the estimate never moves
/// measurably off the nominal value.
const FROZEN_ALPHA: f64 = 1e-12;

/// A telemetry-armed run under the seeded drift: repository 0's WAN
/// collapses to 15% of nominal at the stream's median arrival, exactly
/// the `ext-obs` fault. Returns the result and the onset instant.
fn drift_run(shape: WorkloadShape, predictor: Option<Arc<dyn Predictor>>) -> (SchedResult, f64) {
    let jobs = workload_jobs(shape);
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];
    let mut sched = Scheduler::new(GridSpec::demo(sched_models()), Policy::Fcfs)
        .with_ewma_alpha(FROZEN_ALPHA)
        .with_telemetry(TelemetryConfig::default())
        .with_degradation(Degradation { repo: 0, start: onset, factor: 0.15 });
    if let Some(p) = predictor {
        sched = sched.with_predictor(p);
    }
    (sched.run(&jobs), onset)
}

/// Mean relative total-time error over the run's own post-onset ledger
/// samples — *all* of them, both repositories. Filtering to the
/// degraded repository would bias the comparison: a trained predictor
/// steers work away from the drifted link, so its residual samples
/// there are the hard straddlers, while the accuracy that matters for
/// placement is over everything the scheduler actually ran.
fn mean_rel_err(r: &SchedResult, from: f64) -> f64 {
    let ledger = &r.telemetry.as_ref().expect("telemetry armed").ledger;
    let errs: Vec<f64> = ledger
        .tail(ledger.total() as usize)
        .iter()
        .filter(|s| s.finish > from)
        .map(|s| {
            let obs: f64 = s.observed.iter().sum();
            let pred: f64 = s.predicted.iter().sum();
            (obs - pred).abs() / obs
        })
        .collect();
    assert!(!errs.is_empty(), "no post-onset samples");
    errs.iter().sum::<f64>() / errs.len() as f64
}

/// Trained predictors beat the frozen analytical model under drift, on
/// post-onset prediction error over everything the run placed.
///
/// The hybrid wins on every shape. The learned ridge model wins where
/// its per-(app, repo) sample windows are regime-coherent (uniform,
/// bursty); under the heavy-tail shape its ring buffer mixes pre- and
/// post-onset samples for the long-straggler keys and the fit splits
/// the difference, so no ordering is asserted there — the `ext-learn`
/// figure reports that trade-off instead of hiding it.
#[test]
fn trained_predictors_beat_frozen_analytical_under_drift() {
    for shape in WorkloadShape::ALL {
        let (frozen, onset) = drift_run(shape, None);
        let (hybrid, _) = drift_run(shape, Some(Arc::new(HybridPredictor::default())));
        let e_frozen = mean_rel_err(&frozen, onset);
        let e_hybrid = mean_rel_err(&hybrid, onset);
        assert!(
            e_hybrid < e_frozen * 0.8,
            "{}: hybrid {e_hybrid:.3} vs frozen {e_frozen:.3}",
            shape.name()
        );
        if matches!(shape, WorkloadShape::Uniform | WorkloadShape::Bursty) {
            let (learned, _) = drift_run(shape, Some(Arc::new(LearnedPredictor::default())));
            let e_learned = mean_rel_err(&learned, onset);
            assert!(
                e_learned < e_frozen * 0.8,
                "{}: learned {e_learned:.3} vs frozen {e_frozen:.3}",
                shape.name()
            );
        }
    }
}

/// Rebuild the deployment a ledger sample was priced against, from the
/// grid's nominal description (the frozen feedback loop means nominal
/// bandwidth is exactly what placement priced at).
fn sample_deployment<'a>(grid: &'a GridSpec, repo_name: &str, config: &str) -> DeploymentRef<'a> {
    let repo = grid
        .repos
        .iter()
        .find(|r| r.site.name == repo_name)
        .expect("ledger repo exists in the grid");
    let (n, c) = config.split_once('-').expect("n-c config label");
    DeploymentRef {
        repository: &repo.site,
        compute: &grid.sites[0].site,
        stream_bw: repo.wan.stream_bw,
        config: Configuration::new(n.parse().unwrap(), c.parse().unwrap()),
        cache: None,
    }
}

/// Learning is monotone: replaying the frozen run's ledger corpus into
/// a fresh hybrid predictor — open loop, so the fixed placements can't
/// feed back into what gets observed — its error over the post-onset
/// evaluation set never degrades at any checkpoint and ends well below
/// the untrained (= analytical) starting point.
#[test]
fn hybrid_error_improves_as_samples_accumulate() {
    let (frozen, onset) = drift_run(WorkloadShape::Uniform, None);
    let ledger = &frozen.telemetry.as_ref().expect("telemetry armed").ledger;
    // Ingestion order == completion order: the corpus replays in the
    // exact order the live run would have observed it.
    let corpus = ledger.tail(ledger.total() as usize);
    let grid = GridSpec::demo(sched_models());

    let eval_set: Vec<_> = corpus.iter().filter(|s| s.finish > onset).collect();
    assert!(eval_set.len() > 50, "drift run too small: {}", eval_set.len());
    let eval = |p: &dyn Predictor| -> f64 {
        let errs: Vec<f64> = eval_set
            .iter()
            .map(|s| {
                let (_, model) = grid
                    .apps
                    .iter()
                    .find(|(name, _)| *name == s.app)
                    .expect("ledger app exists in the grid");
                let d = sample_deployment(&grid, &s.repo, &s.config);
                let pred = p
                    .predict_deployment(
                        &model.profile,
                        model.classes,
                        d,
                        s.dataset_bytes,
                        &grid.factors,
                    )
                    .expect("grid deployments are predictable");
                let obs: f64 = s.observed.iter().sum();
                (obs - pred.total()).abs() / obs
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    };

    let hybrid = HybridPredictor::default();
    let mut checkpoints = vec![eval(&hybrid)];
    let stride = corpus.len().div_ceil(8);
    for (i, s) in corpus.iter().enumerate() {
        let d = sample_deployment(&grid, &s.repo, &s.config);
        hybrid.observe(&Observation {
            app: s.app.clone(),
            repo: s.repo.clone(),
            data_nodes: d.config.data_nodes,
            compute_nodes: d.config.compute_nodes,
            wan_bw: d.stream_bw,
            dataset_bytes: s.dataset_bytes,
            predicted: s.predicted,
            observed: s.observed,
        });
        if (i + 1) % stride == 0 || i + 1 == corpus.len() {
            checkpoints.push(eval(&hybrid));
        }
    }
    let start = checkpoints[0];
    let end = *checkpoints.last().unwrap();
    for pair in checkpoints.windows(2) {
        assert!(
            pair[1] <= pair[0] + 0.02 * start,
            "error degraded between checkpoints: {checkpoints:?}"
        );
    }
    assert!(
        end < start * 0.6,
        "training closed too little of the gap: start {start:.3}, end {end:.3}"
    );
}

/// Dump → replay → dump is a byte fixpoint for both predictors, using
/// models trained by a real run (not synthetic observations), and the
/// replayed model predicts identically inside a fresh scheduler.
#[test]
fn run_trained_models_round_trip_through_jsonl() {
    let hybrid = Arc::new(HybridPredictor::default());
    drift_run(WorkloadShape::Uniform, Some(hybrid.clone()));
    let dump = hybrid.dump_jsonl();
    let replayed = HybridPredictor::replay_jsonl(&dump).expect("replay");
    assert_eq!(replayed.dump_jsonl(), dump, "hybrid dump is not a fixpoint");

    let learned = Arc::new(LearnedPredictor::default());
    drift_run(WorkloadShape::Uniform, Some(learned.clone()));
    assert!(learned.trained_keys() > 0, "the drift run must train at least one key");
    let dump = learned.dump_jsonl();
    let replayed = LearnedPredictor::replay_jsonl(&dump).expect("replay");
    assert_eq!(replayed.dump_jsonl(), dump, "learned dump is not a fixpoint");

    // A replayed model is a drop-in: rerunning the same workload
    // through the replayed predictor matches rerunning it through a
    // fresh clone trained the same way (both start from the same
    // state; determinism does the rest).
    let jobs = workload_jobs(WorkloadShape::Uniform);
    let run = |p: Arc<dyn Predictor>| {
        Scheduler::new(GridSpec::demo(sched_models()), Policy::Fcfs)
            .with_ewma_alpha(FROZEN_ALPHA)
            .with_predictor(p)
            .run(&jobs)
    };
    let a = run(Arc::new(LearnedPredictor::replay_jsonl(&dump).expect("replay")));
    let b = run(Arc::new(LearnedPredictor::replay_jsonl(&dump).expect("replay")));
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
}

/// The guard-rail, structurally: whatever a run taught the learned
/// model, every prediction stays within a factor of `trust` (2.0) of
/// the analytical anchor — so a job the analytical model would reject
/// as more than 2x over budget can never be admitted on the learned
/// model's say-so.
#[test]
fn learned_predictions_never_leave_the_trust_region() {
    use freeride_g::predict::{try_predict_deployment, AnalyticalPredictor};
    let learned = Arc::new(LearnedPredictor::default());
    drift_run(WorkloadShape::HeavyTail, Some(learned.clone()));
    assert!(learned.trained_keys() > 0);

    // Probe every (app, repo, site, config, size) the demo grid can
    // express, at nominal and degraded bandwidths.
    let grid = GridSpec::demo(sched_models());
    let trust = learned.config().trust;
    let mut probed = 0usize;
    for (app, model) in &grid.apps {
        for repo in &grid.repos {
            for site in &grid.sites {
                for &(n, c) in &[(1usize, 2usize), (2, 4), (4, 8), (8, 16)] {
                    for &bw_scale in &[1.0, 0.15] {
                        for &bytes in &[64u64 << 20, 400 << 20, 1600 << 20] {
                            let d = freeride_g::cluster::DeploymentRef {
                                repository: &repo.site,
                                compute: &site.site,
                                stream_bw: repo.wan.stream_bw * bw_scale,
                                config: freeride_g::cluster::Configuration::new(n, c),
                                cache: None,
                            };
                            let Ok(a) = try_predict_deployment(
                                &model.profile,
                                model.classes,
                                d,
                                bytes,
                                &grid.factors,
                            ) else {
                                continue;
                            };
                            let l = learned
                                .predict_deployment(
                                    &model.profile,
                                    model.classes,
                                    d,
                                    bytes,
                                    &grid.factors,
                                )
                                .expect("predictable for analytical ⇒ predictable for learned");
                            let anchor = AnalyticalPredictor
                                .predict_deployment(
                                    &model.profile,
                                    model.classes,
                                    d,
                                    bytes,
                                    &grid.factors,
                                )
                                .unwrap();
                            assert_eq!(anchor.total().to_bits(), a.total().to_bits());
                            for (lv, av) in [
                                (l.t_disk, a.t_disk),
                                (l.t_network, a.t_network),
                                (l.t_compute, a.t_compute),
                            ] {
                                assert!(
                                    lv <= av * trust + 1e-9 && lv >= av / trust - 1e-9,
                                    "{app}: learned {lv} outside [{}, {}]",
                                    av / trust,
                                    av * trust
                                );
                            }
                            probed += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(probed > 500, "probe sweep unexpectedly small: {probed}");
}
