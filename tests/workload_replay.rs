//! The JSONL trace round trip, checked from outside the crate: dumping
//! a synthetic workload and replaying it reproduces the in-memory
//! workload bit for bit, the replayed stream drives the scheduler to a
//! bit-identical schedule, and corrupted trace *text* — truncation,
//! field corruption, reordering, garbage — is rejected with a typed
//! error naming the line, mirroring the checkpoint corrupt-input tests
//! in `tests/serialization.rs`.

use fg_bench::figures::sched_models;
use freeride_g::sched::{
    GridSpec, LoadLevel, Policy, ReplayError, Scheduler, Workload, WorkloadShape, WorkloadSpec,
};

fn app_names() -> Vec<String> {
    sched_models().into_iter().map(|(n, _)| n).collect()
}

fn shaped_workload(shape: WorkloadShape, load: LoadLevel, seed: u64) -> Workload {
    let apps = app_names();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    Workload::from_spec(&WorkloadSpec::shaped(shape, load, &names, seed)).expect("valid preset")
}

#[test]
fn dump_replay_is_bit_exact_across_every_preset() {
    for shape in WorkloadShape::ALL {
        for load in LoadLevel::ALL {
            for seed in [7, 42, 1234] {
                let w = shaped_workload(shape, load, seed);
                let text = w.dump_jsonl();
                let r = Workload::replay(&text).unwrap_or_else(|e| {
                    panic!("{} {} seed {seed}: {e}", shape.name(), load.name())
                });
                assert_eq!(w, r, "{} {} seed {seed}", shape.name(), load.name());
                assert_eq!(text, r.dump_jsonl(), "dump must be a fixpoint");
            }
        }
    }
}

#[test]
fn replayed_traces_schedule_bit_identically_to_synthetic_ones() {
    // Recorded and synthetic traffic must be interchangeable: running
    // the scheduler on a replayed trace reproduces the run on the
    // original jobs, outcome for outcome and span for span.
    for shape in WorkloadShape::TRACE_SHAPED {
        let w = shaped_workload(shape, LoadLevel::Heavy, 42);
        let r = Workload::replay(&w.dump_jsonl()).expect("replay");
        let a = Scheduler::new(GridSpec::demo(sched_models()), Policy::EdfAdmit).run(&w.jobs);
        let b = Scheduler::new(GridSpec::demo(sched_models()), Policy::EdfAdmit).run(&r.jobs);
        assert_eq!(
            serde_json::to_string(&a.outcomes).unwrap(),
            serde_json::to_string(&b.outcomes).unwrap(),
            "{}: replayed outcomes diverged",
            shape.name()
        );
        assert_eq!(
            freeride_g::trace::to_jsonl(&a.trace),
            freeride_g::trace::to_jsonl(&b.trace),
            "{}: replayed trace diverged",
            shape.name()
        );
    }
}

#[test]
fn an_external_hand_written_trace_replays_and_schedules() {
    // The README quickstart case: a trace produced by some other
    // system, not by dump_jsonl. Only the schema matters.
    let text = concat!(
        r#"{"schema":1,"kind":"fg-workload","seed":0,"apps":["kmeans","em"],"tenants":["prod","batch"],"jobs":3}"#,
        "\n",
        r#"{"id":0,"tenant":0,"app":"kmeans","dataset_bytes":48000000,"arrival":5.0,"deadline_slack":3.0}"#,
        "\n",
        r#"{"id":1,"tenant":1,"app":"em","dataset_bytes":96000000,"arrival":11.5,"deadline_slack":2.5}"#,
        "\n",
        r#"{"id":2,"tenant":0,"app":"kmeans","dataset_bytes":16000000,"arrival":40.0,"deadline_slack":4.0}"#,
        "\n",
    );
    let w = Workload::replay(text).expect("external trace replays");
    assert_eq!(w.tenants, vec!["prod".to_string(), "batch".to_string()]);
    assert_eq!(w.jobs.len(), 3);
    let r = Scheduler::new(GridSpec::demo(sched_models()), Policy::FcfsBackfill).run(&w.jobs);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.outcomes.iter().all(|o| o.admitted));
}

#[test]
fn truncating_the_trace_at_any_line_is_a_typed_error() {
    // Mirror of the checkpoint truncation sweep: cutting the text
    // after any prefix of lines must fail loudly — as a truncation,
    // a silent tenant, or (for the empty prefix) a missing header —
    // never replay to a plausible shorter workload.
    let w = shaped_workload(WorkloadShape::Bursty, LoadLevel::Medium, 7);
    let text = w.dump_jsonl();
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let cut = lines[..keep].join("\n");
        let err = Workload::replay(&cut)
            .err()
            .unwrap_or_else(|| panic!("prefix of {keep} lines must not replay"));
        match err {
            ReplayError::Header(_) if keep == 0 => {}
            ReplayError::Truncated { expected, got } => {
                assert_eq!(expected, w.jobs.len());
                assert_eq!(got, keep.saturating_sub(1));
            }
            ReplayError::SilentTenant { .. } => {}
            other => panic!("prefix {keep}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn corrupting_any_job_line_is_rejected_by_line_number() {
    let w = shaped_workload(WorkloadShape::HeavyTail, LoadLevel::Medium, 7);
    let text = w.dump_jsonl();
    let lines: Vec<String> = text.lines().map(|s| s.to_string()).collect();

    // Structural JSON damage on a mid-trace line.
    let mut broken = lines.clone();
    broken[5] = broken[5][..broken[5].len() / 2].to_string();
    match Workload::replay(&broken.join("\n")) {
        Err(ReplayError::Line { line, .. }) => assert_eq!(line, 6),
        other => panic!("expected Line error, got {other:?}"),
    }

    // Field corruption the JSON parser happily accepts: a NaN arrival
    // (the vendored encoder's sentinel form) must die in validation.
    let mut nan = lines.clone();
    nan[3] = nan[3].replacen("\"arrival\":", "\"arrival\":\"nan\",\"was\":", 1);
    match Workload::replay(&nan.join("\n")) {
        Err(ReplayError::BadJob { line, reason }) => {
            assert_eq!(line, 4);
            assert!(reason.contains("arrival"), "{reason}");
        }
        other => panic!("expected BadJob, got {other:?}"),
    }

    // Swapping two adjacent job lines breaks either the id sequence or
    // the arrival order — both typed, both naming a line.
    let mut swapped = lines.clone();
    swapped.swap(4, 5);
    match Workload::replay(&swapped.join("\n")) {
        Err(ReplayError::BadId { line, .. }) | Err(ReplayError::OutOfOrder { line }) => {
            assert_eq!(line, 5)
        }
        other => panic!("expected BadId/OutOfOrder, got {other:?}"),
    }

    // Appending a duplicate of the last job line past the declared
    // count is trailing data, not a quietly longer workload.
    let trailing = format!("{}{}\n", text, lines.last().unwrap());
    assert!(matches!(Workload::replay(&trailing), Err(ReplayError::TrailingData { .. })));
}

#[test]
fn foreign_and_future_headers_are_refused() {
    let w = shaped_workload(WorkloadShape::Uniform, LoadLevel::Light, 7);
    let text = w.dump_jsonl();
    let body: Vec<&str> = text.lines().skip(1).collect();

    let foreign = format!(
        "{}\n{}\n",
        r#"{"schema":1,"kind":"fg-span","seed":7,"apps":[],"tenants":[],"jobs":0}"#,
        body.join("\n")
    );
    assert!(matches!(Workload::replay(&foreign), Err(ReplayError::Header(_))));

    let future = text.replacen("\"schema\":1", "\"schema\":2", 1);
    match Workload::replay(&future) {
        Err(ReplayError::Header(reason)) => assert!(reason.contains("schema"), "{reason}"),
        other => panic!("expected Header error, got {other:?}"),
    }
}

#[test]
fn replay_errors_render_actionable_messages() {
    let msgs = [
        ReplayError::Header("empty trace".into()).to_string(),
        ReplayError::Line { line: 4, reason: "bad json".into() }.to_string(),
        ReplayError::Truncated { expected: 23, got: 7 }.to_string(),
        ReplayError::TrailingData { line: 25 }.to_string(),
        ReplayError::OutOfOrder { line: 9 }.to_string(),
        ReplayError::BadId { line: 9, expected: 8, got: 17 }.to_string(),
        ReplayError::BadJob { line: 2, reason: "dataset must be non-empty" }.to_string(),
        ReplayError::SilentTenant { tenant: "ghost".into() }.to_string(),
    ];
    for m in &msgs {
        assert!(!m.is_empty());
    }
    assert!(msgs[2].contains("23") && msgs[2].contains('7'));
    assert!(msgs[5].contains("17"));
}
