//! The live telemetry plane, checked end to end from outside every
//! crate: a subscribed session streams monotone metrics snapshots that
//! converge on the direct run's final telemetry bit for bit; the
//! flight recorder cuts byte-identical incident bundles across
//! identical runs (golden-testable incidents); and a poisoned session
//! decoder surfaces as a `DecodePoisoned` incident through
//! [`Server::incidents`].

use fg_bench::figures::sched_models;
use fg_serve::frame::{encode_frame, FrameDecoder, FrameKind};
use fg_serve::msg::{decode_response, encode_request, Request, Response};
use fg_serve::{IncidentReason, ServeClient, Server, ServerEngine};
use freeride_g::sched::{
    Degradation, GridSpec, JobSpec, LoadLevel, Policy, Scheduler, TelemetryConfig, WorkloadShape,
    WorkloadSpec,
};

fn demo_sched(policy: Policy) -> Scheduler {
    Scheduler::new(GridSpec::demo(sched_models()), policy)
}

fn shaped_jobs(shape: WorkloadShape, load: LoadLevel, seed: u64) -> Vec<JobSpec> {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    WorkloadSpec::shaped(shape, load, &names, seed).generate()
}

/// A subscribed session receives strictly increasing telemetry epochs
/// and ends on the drained run's final plane — which matches a direct
/// `Scheduler::run` with the same telemetry configuration bit for bit.
#[test]
fn a_subscription_streams_monotone_snapshots_to_the_final_plane() {
    let jobs = shaped_jobs(WorkloadShape::HeavyTail, LoadLevel::Medium, 42);
    let direct = demo_sched(Policy::EdfAdmit).with_telemetry(TelemetryConfig::default()).run(&jobs);
    let direct_report = direct.telemetry.expect("telemetry armed");

    let server = Server::start(demo_sched(Policy::EdfAdmit));
    let mut client = ServeClient::connect(&server);
    // One submission first: its acknowledgement proves the core thread
    // has published, so the subscription ack below is deterministic.
    client.submit(jobs[0].clone()).expect("submit");
    let ack = client.subscribe_metrics(0).expect("subscribe");
    for job in &jobs[1..] {
        client.submit(job.clone()).expect("submit");
    }
    client.drain().expect("drain");
    // The final plane rides behind the drain response; collect it.
    let fin = client.recv_metrics().expect("final metrics push");
    let mut metrics = client.take_metrics();
    metrics.push(fin);
    drop(client);
    server.shutdown();

    let mut last = ack.epoch;
    for m in &metrics {
        assert!(m.epoch > last, "epochs must be strictly increasing ({} then {})", last, m.epoch);
        assert_eq!(m.epoch, m.telemetry.epoch, "envelope and plane epochs agree");
        for t in &m.telemetry.tenants {
            assert!((0.0..=1.0).contains(&t.violation_rate), "rate in [0,1]: {t:?}");
            assert!(t.deadline_violations <= t.completed, "{t:?}");
        }
        last = m.epoch;
    }

    // The last pushed snapshot is the end-of-run plane: everything
    // admitted has completed, and it is the same plane — same EWMA
    // bits, same gauges — the direct run reports.
    let fin = metrics.last().unwrap();
    assert_eq!(fin.stats.completed, fin.stats.admitted);
    assert_eq!(fin.stats.queued, 0);
    assert_eq!(fin.stats.running, 0);
    assert_eq!(fin.telemetry, direct_report.snapshot, "served plane diverged from direct run");
}

fn degraded_sched() -> (Scheduler, Vec<JobSpec>) {
    let grid = GridSpec::demo(sched_models());
    let jobs =
        WorkloadSpec::shaped(WorkloadShape::Uniform, LoadLevel::Heavy, &["kmeans"], 9).generate();
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];
    let mut telemetry = TelemetryConfig::default();
    telemetry.drift.min_samples = 3;
    let sched = Scheduler::new(grid, Policy::Fcfs)
        .with_telemetry(telemetry)
        .with_degradation(Degradation { repo: 0, start: onset, factor: 0.15 });
    (sched, jobs)
}

/// Incident bundles are deterministic under the sim clock: two
/// identical degraded runs through the sans-IO engine cut bundles
/// whose JSONL renderings are byte-identical — the property that makes
/// incidents golden-testable and diffable across CI runs.
#[test]
fn incident_bundles_are_byte_identical_across_identical_runs() {
    let run_once = || {
        let (sched, jobs) = degraded_sched();
        let mut engine = ServerEngine::new(sched);
        for job in jobs {
            let (resp, _) = engine.handle(Request::Submit { job });
            assert!(matches!(resp, Response::Submitted { .. }), "{resp:?}");
        }
        let (resp, _) = engine.handle(Request::Drain);
        assert!(matches!(resp, Response::Drained { .. }), "{resp:?}");
        engine.take_incidents().iter().map(|b| b.to_jsonl()).collect::<Vec<String>>()
    };

    let first = run_once();
    let second = run_once();
    assert!(!first.is_empty(), "a seeded WAN fault must cut at least one incident bundle");
    assert_eq!(first, second, "incident bundles must be byte-identical across identical runs");

    // Each bundle is self-contained JSONL: a versioned header naming
    // the reason, then the event ring and the accuracy-ledger tail.
    for bundle in &first {
        let header = bundle.lines().next().expect("header line");
        assert!(header.contains("\"kind\":\"fg-incident\""), "{header}");
        assert!(header.contains("\"version\":1"), "{header}");
        assert!(header.contains("Drift"), "a drift alarm tripped this bundle: {header}");
        assert!(bundle.lines().count() > 1, "a bundle carries context lines, not just a header");
    }
}

/// A corrupt client stream does more than kill the session: the core
/// thread cuts a `DecodePoisoned` incident bundle, observable through
/// [`Server::incidents`] — wire corruption is an operational event,
/// not just a client-side error.
#[test]
fn a_poisoned_decoder_cuts_an_incident_bundle() {
    let server = Server::start(demo_sched(Policy::Fcfs));
    let conn = server.connect();
    // A valid frame first, then garbage that fails the magic check.
    conn.send(&encode_frame(FrameKind::Request, 0, &encode_request(&Request::Stats)));
    conn.send(b"XXXXXXXXXXXXXXXX");

    // Wait for the session's typed error reply: by then the poisoning
    // notice is in the core thread's queue.
    let mut dec = FrameDecoder::new();
    let mut saw_error = false;
    while let Some(chunk) = conn.recv() {
        dec.push(&chunk);
        while let Some(frame) = dec.next_frame().expect("server output stays well-framed") {
            if let Response::Error { .. } = decode_response(&frame, dec.frames() - 1).expect("resp")
            {
                saw_error = true;
            }
        }
        if saw_error {
            break;
        }
    }
    assert!(saw_error, "the session must report the corruption before hanging up");

    // A core round trip on a fresh session orders us after the
    // poisoning notice: the channel is FIFO, so once this submission
    // is acknowledged the incident has been collected.
    let mut probe = ServeClient::connect(&server);
    let jobs = shaped_jobs(WorkloadShape::Uniform, LoadLevel::Light, 5);
    probe.submit(jobs[0].clone()).expect("core round trip");

    let incidents = server.incidents();
    assert_eq!(incidents.len(), 1, "exactly one poisoning, one bundle");
    match &incidents[0].reason {
        IncidentReason::DecodePoisoned { error } => {
            assert!(error.contains("magic"), "the typed wire error survives: {error}");
        }
        other => panic!("expected DecodePoisoned, got {other:?}"),
    }
    assert!(incidents[0].stats.is_some(), "a live core contributes its counters");

    drop(probe);
    drop(conn);
    server.shutdown();
}
