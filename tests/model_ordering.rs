//! The central qualitative claims of §5.1, checked as statistics over
//! the whole configuration grid rather than single points:
//!
//! 1. Model fidelity pays: mean error of *global reduction* ≤ mean error
//!    of *reduction communication* ≤ mean error of *no communication*.
//! 2. The no-communication model's worst configurations are the
//!    large-compute-count ones (its error grows with `c`), because
//!    `T_ro`/`T_g` do not shrink with more nodes.
//! 3. Even the no-communication model is decent when scaling factors
//!    are small (the paper's first takeaway).

use freeride_g::apps::{defect, em, kmeans};
use freeride_g::chunks::Dataset;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Executor, ReductionApp};
use freeride_g::predict::{
    relative_error, AppClasses, ComputeModel, ExecTimePredictor, InterconnectParams, Profile,
    Target,
};

const SCALE: f64 = 0.004;
const WAN: f64 = 40e6;

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(WAN),
        Configuration::new(n, c),
    )
}

/// Per-model mean errors over the paper grid, plus each configuration's
/// no-communication error.
fn grid_errors<A: ReductionApp>(
    app: &A,
    dataset: &Dataset,
) -> (Vec<(Configuration, [f64; 3])>, [f64; 3]) {
    let profile = Profile::from_report(&Executor::new(deployment(1, 1)).run(app, dataset).report);
    let site = deployment(1, 1).compute;
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for cfg in Configuration::paper_grid() {
        let actual = Executor::new(deployment(cfg.data_nodes, cfg.compute_nodes))
            .run(app, dataset)
            .report
            .total()
            .as_secs_f64();
        let target = Target {
            data_nodes: cfg.data_nodes,
            compute_nodes: cfg.compute_nodes,
            wan_bw: WAN,
            dataset_bytes: dataset.logical_bytes(),
        };
        let mut errs = [0.0f64; 3];
        for (i, model) in ComputeModel::ALL.iter().enumerate() {
            let predicted = ExecTimePredictor {
                profile: profile.clone(),
                classes: AppClasses::for_app(&profile.app),
                interconnect: InterconnectParams::of_site(&site),
                model: *model,
            }
            .predict(&target);
            errs[i] = relative_error(actual, predicted.total());
            sums[i] += errs[i];
        }
        rows.push((cfg, errs));
    }
    let n = rows.len() as f64;
    (rows, [sums[0] / n, sums[1] / n, sums[2] / n])
}

#[test]
fn model_fidelity_ordering_holds_on_average() {
    for (name, rows_means) in [
        ("kmeans", {
            let ds = kmeans::generate("mo-km", 350.0, SCALE, 3, 8);
            grid_errors(&kmeans::KMeans::paper(3), &ds)
        }),
        ("em", {
            let ds = em::generate("mo-em", 350.0, SCALE, 3, 4);
            grid_errors(&em::Em::paper(3), &ds)
        }),
        ("defect", {
            let (ds, _) = defect::generate("mo-df", 130.0, SCALE, 3);
            let app = defect::DefectDetect::for_dataset(&ds);
            grid_errors(&app, &ds)
        }),
    ] {
        let (_, means) = rows_means;
        assert!(
            means[2] <= means[1] * 1.05 && means[1] <= means[0] * 1.05,
            "{name}: model fidelity ordering violated: means {means:?}"
        );
        assert!(
            means[2] < 0.02,
            "{name}: global-reduction model should average under 2%, got {:.3}",
            means[2]
        );
    }
}

#[test]
fn no_comm_error_grows_with_compute_nodes() {
    let ds = em::generate("mo-grow", 350.0, SCALE, 4, 4);
    let (rows, _) = grid_errors(&em::Em::paper(4), &ds);
    // Fix n = 1 and walk c upward: the no-comm error is monotone in c
    // (within a small tolerance at the tiny end).
    let series: Vec<f64> =
        rows.iter().filter(|(cfg, _)| cfg.data_nodes == 1).map(|(_, errs)| errs[0]).collect();
    assert!(series.len() >= 4);
    for w in series.windows(2) {
        assert!(w[1] >= w[0] - 1e-3, "no-comm error should grow with compute nodes: {series:?}");
    }
    // And the worst no-comm configuration overall uses 16 compute nodes.
    let worst = rows.iter().max_by(|a, b| a.1[0].total_cmp(&b.1[0])).expect("non-empty");
    assert_eq!(worst.0.compute_nodes, 16, "worst case should be a 16-node config");
}

#[test]
fn no_comm_is_decent_at_small_scaling_factors() {
    // "even without modeling communication and global reduction, our
    // models work quite well if the scaling factors ... are small".
    let ds = kmeans::generate("mo-small", 350.0, SCALE, 5, 8);
    let (rows, _) = grid_errors(&kmeans::KMeans::paper(5), &ds);
    for (cfg, errs) in rows {
        if cfg.data_nodes <= 2 && cfg.compute_nodes <= 4 {
            assert!(
                errs[0] < 0.02,
                "no-comm error at small config {} should be tiny, got {:.4}",
                cfg.label(),
                errs[0]
            );
        }
    }
}
