//! Differential property suite for the placement hot path.
//!
//! The cached [`PlacementEngine`] claims bit-identical answers to the
//! exhaustive [`naive_best_placement`] scan it replaced — same winning
//! (repository, site, configuration) triple, same predicted components,
//! same `None`s — across cache reuse, EWMA bandwidth invalidation,
//! dominance pruning, the free-slice early-outs, and the parallel
//! rebuild path. These properties drive randomized grids (topology,
//! node counts, configuration menus, bandwidths), randomized free
//! slices including fully-saturated ones, random quota caps, and long
//! query sequences with per-repository bandwidth drift through one
//! engine, comparing every answer against the oracle.

use fg_bench::figures::sched_models;
use freeride_g::cluster::{ComputeSite, Configuration, RepositorySite, Wan};
use freeride_g::sched::{
    naive_best_placement, FreeSlices, GridSpec, PlacementEngine, RepoSpec, SiteSpec,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// The configuration menu random grids draw from. Includes shapes that
/// cannot fit small grids, so infeasibility paths get exercised.
const MENU: [(usize, usize); 6] = [(1, 1), (1, 2), (2, 2), (2, 4), (4, 8), (8, 16)];

/// Dataset sizes spanning the profile scale to several GB.
const SIZES: [u64; 6] = [1 << 20, 64 << 20, 200 << 20, 800 << 20, 3200 << 20, 12_800 << 20];

/// One placement query, generated as a flat tuple (the vendored
/// proptest has no mapping combinators): application selector, dataset
/// size selector, per-repository bandwidth drift factors, free-slice
/// selectors, and a quota-cap selector (values past 16 mean "no cap").
type Query = (usize, usize, Vec<f64>, Vec<usize>, Vec<usize>, usize);

/// The tuple-of-strategies that generates one [`Query`].
type QueryStrategy = (
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    proptest::collection::VecStrategy<std::ops::Range<f64>>,
    proptest::collection::VecStrategy<std::ops::Range<usize>>,
    proptest::collection::VecStrategy<std::ops::Range<usize>>,
    std::ops::Range<usize>,
);

fn queries_strategy(max: usize) -> proptest::collection::VecStrategy<QueryStrategy> {
    proptest::collection::vec(
        (
            0usize..7,
            0usize..SIZES.len(),
            proptest::collection::vec(0.25f64..2.0, 3..4),
            proptest::collection::vec(0usize..17, 3..4),
            proptest::collection::vec(0usize..17, 3..4),
            0usize..24,
        ),
        1..max,
    )
}

/// A randomized grid: per-repository node counts and nominal
/// bandwidths, per-site node counts, and a non-empty configuration
/// menu. Applications are the paper's seven models.
fn grid_case(repos: &[(usize, f64)], sites: &[usize], menu_mask: &[bool]) -> GridSpec {
    let configs: Vec<Configuration> = MENU
        .iter()
        .zip(menu_mask)
        .filter(|(_, &keep)| keep)
        .map(|(&(d, c), _)| Configuration::new(d, c))
        .chain(std::iter::once(Configuration::new(1, 1)))
        .collect();
    GridSpec {
        repos: repos
            .iter()
            .enumerate()
            .map(|(i, &(nodes, bw))| RepoSpec {
                site: RepositorySite::pentium_repository(&format!("repo-{i}"), nodes),
                wan: Wan::per_stream(bw),
                wan_capacity: 4.0 * bw,
            })
            .collect(),
        sites: sites
            .iter()
            .enumerate()
            .map(|(i, &nodes)| SiteSpec {
                site: ComputeSite::pentium_myrinet(&format!("site-{i}"), nodes),
                ingress_capacity: 8e6,
            })
            .collect(),
        configs,
        apps: sched_models(),
        factors: HashMap::new(),
    }
}

/// Drive one engine through the whole query sequence and compare every
/// answer to the naive oracle over identical inputs.
fn check_engine(mut engine: PlacementEngine, grid: &GridSpec, queries: &[Query], label: &str) {
    for (qi, (app_sel, size_sel, bw_factor, free_data_sel, free_cmp_sel, cap_sel)) in
        queries.iter().enumerate()
    {
        let (app_name, model) = &grid.apps[app_sel % grid.apps.len()];
        let bytes = SIZES[*size_sel];
        let quota_cap = if *cap_sel <= 16 { Some(*cap_sel) } else { None };
        let bw: Vec<f64> = grid
            .repos
            .iter()
            .enumerate()
            .map(|(ri, r)| r.wan.stream_bw * bw_factor[ri % bw_factor.len()])
            .collect();
        // Free slices clamped to each repository's/site's node count;
        // selectors at or above the count saturate to "all free" so
        // both empty and full grids occur.
        let free = FreeSlices::new(
            grid.repos
                .iter()
                .enumerate()
                .map(|(ri, r)| free_data_sel[ri % free_data_sel.len()].min(r.site.max_nodes))
                .collect(),
            grid.sites
                .iter()
                .enumerate()
                .map(|(si, s)| free_cmp_sel[si % free_cmp_sel.len()].min(s.site.max_nodes))
                .collect(),
        );
        let fast = engine.best_placement(
            &freeride_g::predict::AnalyticalPredictor,
            grid,
            app_name,
            bytes,
            &free,
            &bw,
            quota_cap,
        );
        let naive =
            naive_best_placement(grid, model, bytes, free.data(), free.cmp(), &bw, quota_cap);
        assert_eq!(
            fast, naive,
            "{label}: query {qi} ({app_name}, {bytes} bytes, cap {quota_cap:?}) diverged \
             from the naive scan"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline equivalence: random grid, long query sequence with
    /// bandwidth drift and varying occupancy through one cached engine,
    /// every answer bit-identical to the exhaustive scan.
    #[test]
    fn cached_engine_is_bit_identical_to_the_naive_scan(
        repos in proptest::collection::vec((1usize..9, 2e5f64..2e6), 1..4),
        sites in proptest::collection::vec(1usize..17, 1..4),
        menu_mask in proptest::collection::vec(any::<bool>(), 6..7),
        queries in queries_strategy(49),
    ) {
        let grid = grid_case(&repos, &sites, &menu_mask);
        check_engine(PlacementEngine::new(&grid), &grid, &queries, "sequential");
    }

    /// The rayon-parallel rebuild path must land in the same cache
    /// state: its reduce installs rankings in repository-index order,
    /// so answers stay bit-identical query by query.
    #[test]
    fn parallel_rebuilds_preserve_the_equivalence(
        repos in proptest::collection::vec((1usize..9, 2e5f64..2e6), 2..4),
        sites in proptest::collection::vec(1usize..17, 1..4),
        menu_mask in proptest::collection::vec(any::<bool>(), 6..7),
        queries in queries_strategy(25),
    ) {
        let grid = grid_case(&repos, &sites, &menu_mask);
        check_engine(
            PlacementEngine::new(&grid).with_parallel(),
            &grid,
            &queries,
            "parallel",
        );
    }
}

/// A saturated grid (zero free compute everywhere) must answer `None`
/// through the early-out, exactly like the scan.
#[test]
fn saturated_grid_answers_none_like_the_scan() {
    let grid = GridSpec::demo(sched_models());
    let mut engine = PlacementEngine::new(&grid);
    let free = FreeSlices::new(vec![8, 8], vec![0, 0]);
    let bw: Vec<f64> = grid.repos.iter().map(|r| r.wan.stream_bw).collect();
    let (name, model) = &grid.apps[0];
    let fast = engine.best_placement(
        &freeride_g::predict::AnalyticalPredictor,
        &grid,
        name,
        200 << 20,
        &free,
        &bw,
        None,
    );
    let naive = naive_best_placement(&grid, model, 200 << 20, free.data(), free.cmp(), &bw, None);
    assert_eq!(fast, naive);
    assert_eq!(fast, None);
}

/// A quota cap below the smallest configuration excludes everything —
/// on both paths.
#[test]
fn impossible_quota_cap_answers_none_like_the_scan() {
    let grid = GridSpec::demo(sched_models());
    let mut engine = PlacementEngine::new(&grid);
    let free = FreeSlices::new(vec![8, 8], vec![16, 8]);
    let bw: Vec<f64> = grid.repos.iter().map(|r| r.wan.stream_bw).collect();
    let (name, model) = &grid.apps[0];
    let fast = engine.best_placement(
        &freeride_g::predict::AnalyticalPredictor,
        &grid,
        name,
        200 << 20,
        &free,
        &bw,
        Some(0),
    );
    let naive =
        naive_best_placement(&grid, model, 200 << 20, free.data(), free.cmp(), &bw, Some(0));
    assert_eq!(fast, naive);
    assert_eq!(fast, None);
}
