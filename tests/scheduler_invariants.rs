//! End-to-end invariants of the multi-tenant scheduler: determinism,
//! work conservation, fair-share discipline, admission consistency, and
//! trace well-formedness, across policies, load levels, and seeds —
//! over the legacy uniform preset and the trace-shaped (heavy-tail,
//! bursty) presets alike.

use fg_bench::figures::sched_models;
use freeride_g::sched::{GridSpec, LoadLevel, Policy, Scheduler, WorkloadShape, WorkloadSpec};

fn grid() -> GridSpec {
    GridSpec::demo(sched_models())
}

fn apps() -> Vec<String> {
    sched_models().into_iter().map(|(n, _)| n).collect()
}

#[test]
fn same_seed_gives_bit_identical_schedules_and_traces() {
    let apps = apps();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &names, 42).generate();
    for policy in Policy::ALL {
        let a = Scheduler::new(grid(), policy).run(&jobs);
        let b = Scheduler::new(grid(), policy).run(&jobs);
        let aj = serde_json::to_string(&a.outcomes).expect("serialize outcomes");
        let bj = serde_json::to_string(&b.outcomes).expect("serialize outcomes");
        assert_eq!(aj, bj, "outcomes differ across identical runs ({})", policy.name());
        assert_eq!(
            freeride_g::trace::to_jsonl(&a.trace),
            freeride_g::trace::to_jsonl(&b.trace),
            "traces differ across identical runs ({})",
            policy.name()
        );
        assert_eq!(a.makespan, b.makespan);

        // The placement engine's cache, its parallel rebuild path, and
        // the naive reference scan are interchangeable: every variant
        // must reproduce the cached run bit for bit, on the full app
        // mix, not just a single-model workload.
        let parallel = Scheduler::new(grid(), policy).with_parallel_scoring().run(&jobs);
        let pj = serde_json::to_string(&parallel.outcomes).expect("serialize outcomes");
        assert_eq!(aj, pj, "parallel scoring changed outcomes ({})", policy.name());
        assert_eq!(
            freeride_g::trace::to_jsonl(&a.trace),
            freeride_g::trace::to_jsonl(&parallel.trace),
            "parallel scoring changed the trace ({})",
            policy.name()
        );
        let naive = Scheduler::new(grid(), policy).with_naive_placement().run(&jobs);
        let nj = serde_json::to_string(&naive.outcomes).expect("serialize outcomes");
        assert_eq!(aj, nj, "cached placement diverged from naive ({})", policy.name());
        assert_eq!(
            freeride_g::trace::to_jsonl(&a.trace),
            freeride_g::trace::to_jsonl(&naive.trace),
            "cached placement trace diverged from naive ({})",
            policy.name()
        );
    }
}

#[test]
fn empty_workload_is_a_noop_for_every_policy() {
    for policy in Policy::ALL {
        let r = Scheduler::new(grid(), policy).run(&[]);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.makespan, 0.0);
        assert!(r.violations.is_empty());
        r.trace.check_well_formed().expect("empty-run trace well-formed");
    }
}

#[test]
fn no_violations_across_policies_loads_and_seeds() {
    let apps = apps();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    for seed in [7, 42, 1234] {
        for load in LoadLevel::ALL {
            let jobs = WorkloadSpec::preset(load, &names, seed).generate();
            for policy in Policy::ALL {
                let r = Scheduler::new(grid(), policy).run(&jobs);
                assert!(
                    r.violations.is_empty(),
                    "{} {} seed {seed}: {:?}",
                    policy.name(),
                    load.name(),
                    r.violations
                );
                r.trace.check_well_formed().unwrap_or_else(|e| {
                    panic!("{} {} seed {seed}: malformed trace: {e}", policy.name(), load.name())
                });
                // Every admitted job completes; every rejection carries
                // a reason; metrics agree with outcomes.
                let admitted = r.outcomes.iter().filter(|o| o.admitted).count() as u64;
                let rejected = r.outcomes.iter().filter(|o| !o.admitted).count() as u64;
                assert!(r.outcomes.iter().all(|o| o.admitted == o.finish.is_some()
                    && (o.admitted || o.reject_reason.is_some())));
                let m = &r.trace.metrics;
                assert_eq!(m.counter("sched_jobs_admitted"), Some(admitted));
                assert_eq!(m.counter("sched_jobs_rejected"), Some(rejected));
                assert_eq!(m.counter("sched_jobs_completed"), Some(admitted));
                assert_eq!(m.counter("sched_jobs_submitted"), Some(r.outcomes.len() as u64));
            }
        }
    }
}

#[test]
fn admitted_jobs_run_the_three_phases_in_order() {
    let apps = apps();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    let jobs = WorkloadSpec::preset(LoadLevel::Medium, &names, 42).generate();
    let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
    for o in r.outcomes.iter().filter(|o| o.admitted) {
        let placed = o.placed_at.unwrap();
        let disk = o.disk_end.unwrap();
        let net = o.network_end.unwrap();
        let finish = o.finish.unwrap();
        assert!(o.arrival <= placed + 1e-9);
        assert!(placed <= disk && disk <= net && net <= finish, "job {}", o.id);
        // The achieved network phase can only be stretched by
        // contention, never shorter than the placement prediction says.
        let slowdown = o.slowdown().unwrap();
        assert!(slowdown >= 1.0 - 1e-6, "job {} ran faster than standalone: {slowdown}", o.id);
    }
}

#[test]
fn trace_shaped_streams_uphold_every_invariant() {
    // The re-verification bar for the workload rework: the invariant
    // battery above, re-run over the heavy-tail and bursty presets.
    // Giant Pareto datasets and burst pile-ups exercise backfill and
    // admission paths the uniform preset never reaches.
    let apps = apps();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    for shape in WorkloadShape::TRACE_SHAPED {
        for load in LoadLevel::ALL {
            let jobs = WorkloadSpec::shaped(shape, load, &names, 42).generate();
            for policy in Policy::ALL {
                let label = format!("{} {} {}", shape.name(), load.name(), policy.name());
                let r = Scheduler::new(grid(), policy).run(&jobs);
                assert!(r.violations.is_empty(), "{label}: {:?}", r.violations);
                r.trace
                    .check_well_formed()
                    .unwrap_or_else(|e| panic!("{label}: malformed trace: {e}"));
                let admitted = r.outcomes.iter().filter(|o| o.admitted).count() as u64;
                assert!(r.outcomes.iter().all(|o| o.admitted == o.finish.is_some()
                    && (o.admitted || o.reject_reason.is_some())));
                let m = &r.trace.metrics;
                assert_eq!(m.counter("sched_jobs_admitted"), Some(admitted));
                assert_eq!(m.counter("sched_jobs_completed"), Some(admitted));
                assert_eq!(m.counter("sched_jobs_submitted"), Some(r.outcomes.len() as u64));
                for o in r.outcomes.iter().filter(|o| o.admitted) {
                    let placed = o.placed_at.unwrap();
                    assert!(o.arrival <= placed + 1e-9, "{label}: job {}", o.id);
                    assert!(
                        placed <= o.disk_end.unwrap()
                            && o.disk_end.unwrap() <= o.network_end.unwrap()
                            && o.network_end.unwrap() <= o.finish.unwrap(),
                        "{label}: job {} phases out of order",
                        o.id
                    );
                    assert!(o.slowdown().unwrap() >= 1.0 - 1e-6, "{label}: job {}", o.id);
                }
            }
        }
    }
}

#[test]
fn trace_shaped_streams_keep_placement_variants_bit_identical() {
    // Cache coherence under adversarial traffic: a bursty heavy stream
    // hammers the placement cache with clustered arrivals and wild
    // dataset spreads, and the cached, parallel-scored, and naive
    // engines must still agree bit for bit.
    let apps = apps();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    let jobs = WorkloadSpec::shaped(WorkloadShape::Bursty, LoadLevel::Heavy, &names, 42).generate();
    for policy in Policy::ALL {
        let cached = Scheduler::new(grid(), policy).run(&jobs);
        let cj = serde_json::to_string(&cached.outcomes).expect("serialize outcomes");
        let parallel = Scheduler::new(grid(), policy).with_parallel_scoring().run(&jobs);
        let pj = serde_json::to_string(&parallel.outcomes).expect("serialize outcomes");
        assert_eq!(cj, pj, "parallel scoring diverged on bursty stream ({})", policy.name());
        let naive = Scheduler::new(grid(), policy).with_naive_placement().run(&jobs);
        let nj = serde_json::to_string(&naive.outcomes).expect("serialize outcomes");
        assert_eq!(cj, nj, "naive placement diverged on bursty stream ({})", policy.name());
        assert_eq!(
            freeride_g::trace::to_jsonl(&cached.trace),
            freeride_g::trace::to_jsonl(&naive.trace),
            "naive placement trace diverged on bursty stream ({})",
            policy.name()
        );
    }
}

#[test]
fn rejected_jobs_never_occupy_the_grid() {
    let apps = apps();
    let names: Vec<&str> = apps.iter().map(|s| s.as_str()).collect();
    let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &names, 42).generate();
    let r = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
    let rejected: Vec<_> = r.outcomes.iter().filter(|o| !o.admitted).collect();
    assert!(!rejected.is_empty(), "heavy preset should trip admission control");
    for o in &rejected {
        assert!(o.placement.is_none() && o.placed_at.is_none() && o.finish.is_none());
        assert!(o.reject_reason.as_deref().unwrap().starts_with("admission"));
        // Rejections still carry the evidence for the decision.
        assert!(o.standalone.is_some() && o.deadline.is_some());
        assert!(o.admission_estimate.unwrap() > o.deadline.unwrap());
    }
}
