//! Shared-memory (SMP) execution within compute nodes: correctness,
//! speedup bounds, and interaction with the heterogeneous experiments.

use freeride_g::apps::{em, kmeans, vortex};
use freeride_g::cluster::{
    ComputeSite, Configuration, Deployment, MachineSpec, RepositorySite, Wan,
};
use freeride_g::middleware::Executor;
use freeride_g::sim::SimDuration;

const SCALE: f64 = 0.004;

fn deployment_with_cores(cores: usize, n: usize, c: usize) -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("cs", 16);
    site.machine.cores = cores;
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        site,
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

#[test]
fn smp_nodes_compute_the_same_answer() {
    let ds = kmeans::generate("smp-ans", 200.0, SCALE, 1, 4);
    let app = kmeans::KMeans { k: 4, passes: 5, seed: 1 };
    let uni = Executor::new(deployment_with_cores(1, 2, 4)).run(&app, &ds);
    let smp = Executor::new(deployment_with_cores(4, 2, 4)).run(&app, &ds);
    for (a, b) in uni.final_state.centroids.iter().zip(smp.final_state.centroids.iter()) {
        for d in 0..kmeans::DIM {
            assert!((a[d] - b[d]).abs() < 1e-2, "SMP changed the clustering result");
        }
    }
}

#[test]
fn smp_speedup_is_positive_and_sublinear() {
    let ds = em::generate("smp-speed", 350.0, SCALE, 2, 4);
    let app = em::Em { k: 4, iterations: 3, seed: 2 };
    let local = |cores: usize| -> SimDuration {
        let r = Executor::new(deployment_with_cores(cores, 2, 4)).run(&app, &ds).report;
        r.passes.iter().map(|p| p.local_compute).sum()
    };
    let t1 = local(1);
    let t2 = local(2);
    let t4 = local(4);
    let s2 = t1.as_secs_f64() / t2.as_secs_f64();
    let s4 = t1.as_secs_f64() / t4.as_secs_f64();
    assert!(s2 > 1.3, "two cores should speed the fold up meaningfully: {s2}");
    assert!(s2 < 2.0, "two-core speedup cannot be super-linear: {s2}");
    assert!(s4 > s2, "four cores beat two: {s4} vs {s2}");
    assert!(s4 < 4.0, "memory-bus contention keeps speedup sub-linear: {s4}");
}

#[test]
fn smp_does_not_change_io_components() {
    let ds = kmeans::generate("smp-io", 200.0, SCALE, 3, 4);
    let app = kmeans::KMeans { k: 4, passes: 3, seed: 3 };
    let uni = Executor::new(deployment_with_cores(1, 2, 4)).run(&app, &ds).report;
    let smp = Executor::new(deployment_with_cores(2, 2, 4)).run(&app, &ds).report;
    assert_eq!(uni.t_disk(), smp.t_disk());
    assert_eq!(uni.t_network(), smp.t_network());
    assert!(smp.t_compute() < uni.t_compute());
}

#[test]
fn default_opteron_nodes_are_dual_processor() {
    // §5.4: "dual processor 2.4GHz Opteron 250 machines" — the preset
    // must model both processors.
    assert_eq!(MachineSpec::opteron_2400().cores, 2);
    assert_eq!(MachineSpec::pentium_700().cores, 1);
}

#[test]
fn flop_bound_work_scales_better_than_mem_bound_on_smp() {
    // Vortex is flop-heavy; EM's kernel has a larger memory share.
    // Two cores therefore help vortex at least as much as EM.
    let (vds, _) = vortex::generate("smp-vx", 200.0, SCALE * 4.0, 4);
    let eds = em::generate("smp-em", 200.0, SCALE, 4, 4);
    let vx = vortex::VortexDetect::default();
    let emapp = em::Em { k: 4, iterations: 1, seed: 4 };
    let speedup = |cores: usize, run: &dyn Fn(Deployment) -> SimDuration| {
        let t1 = run(deployment_with_cores(1, 1, 2));
        let tc = run(deployment_with_cores(cores, 1, 2));
        t1.as_secs_f64() / tc.as_secs_f64()
    };
    let vx_run = |d: Deployment| -> SimDuration {
        let r = Executor::new(d).run(&vx, &vds).report;
        r.passes.iter().map(|p| p.local_compute).sum()
    };
    let em_run = |d: Deployment| -> SimDuration {
        let r = Executor::new(d).run(&emapp, &eds).report;
        r.passes.iter().map(|p| p.local_compute).sum()
    };
    let s_vx = speedup(2, &vx_run);
    let s_em = speedup(2, &em_run);
    assert!(
        s_vx >= s_em - 0.05,
        "flop-bound vortex should scale at least as well as EM: {s_vx} vs {s_em}"
    );
}
