//! Property tests for the tracing layer: on randomly sampled
//! applications, configurations, and dataset sizes, every emitted trace
//! must (a) nest spans properly, (b) keep per-node timestamps
//! monotonic, (c) reproduce the `ExecutionReport` component sums bit
//! for bit, and (d) be identical between `run` and `run_with_faults`
//! under an empty `FaultSchedule`.

use fg_bench::{pentium_deployment, PaperApp};
use freeride_g::middleware::{ExecutionReport, FaultOptions};
use freeride_g::predict::Profile;
use freeride_g::sim::FaultSchedule;
use freeride_g::trace::{SpanKind, Trace};
use proptest::prelude::*;

const APPS: [PaperApp; 7] = [
    PaperApp::KMeans,
    PaperApp::Em,
    PaperApp::Knn,
    PaperApp::Vortex,
    PaperApp::Defect,
    PaperApp::Apriori,
    PaperApp::Ann,
];

/// `(app index, data nodes, compute nodes, nominal MB, seed)`.
type Case = (usize, usize, usize, u64, u64);

/// One exclusive range per `Case` field, in order.
type CaseRanges = (
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
);

fn cases() -> CaseRanges {
    (0..APPS.len(), 1..5, 1..9, 4..13, 0..1_000_000)
}

fn run_case(case: Case) -> (ExecutionReport, Trace) {
    let (a, n, c, mb, seed) = case;
    let app = APPS[a];
    let dataset = app.generate("ti", mb as f64, 0.01, seed);
    // The middleware requires compute nodes >= data nodes.
    app.execute_traced(pentium_deployment(n, c.max(n), 1e6), &dataset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn traces_are_well_formed_and_nested(case in cases()) {
        let (_, trace) = run_case(case);
        prop_assert!(trace.check_well_formed().is_ok(), "{:?}", trace.check_well_formed());
        // Nesting, spelled out: every non-root span lies inside its
        // parent's interval, and the root covers everything.
        let root_interval = {
            let root = trace.root().expect("run span");
            (root.start, root.end)
        };
        for s in &trace.spans {
            prop_assert!(s.start <= s.end);
            prop_assert!(s.start >= root_interval.0 && s.end <= root_interval.1);
            if let Some(p) = s.parent {
                let parent = &trace.spans[p as usize];
                prop_assert!(s.start >= parent.start && s.end <= parent.end,
                    "span {} escapes parent {}", s.id, p);
            }
        }
    }

    #[test]
    fn per_node_timestamps_are_monotonic(case in cases()) {
        let (_, trace) = run_case(case);
        let mut last: Vec<(_, _)> = Vec::new();
        for s in &trace.spans {
            let Some(node) = s.node else { continue };
            match last.iter_mut().find(|(n, _)| *n == node) {
                Some((_, t)) => {
                    prop_assert!(s.start >= *t,
                        "node {} span {} starts at {} before previous {}",
                        node, s.id, s.start, t);
                    *t = s.start;
                }
                None => last.push((node, s.start)),
            }
        }
    }

    #[test]
    fn component_sums_match_report_exactly(case in cases()) {
        let (report, trace) = run_case(case);
        prop_assert_eq!(
            trace.component_sum(SpanKind::Retrieval) + trace.component_sum(SpanKind::CacheDisk),
            report.t_disk()
        );
        prop_assert_eq!(
            trace.component_sum(SpanKind::Network) + trace.component_sum(SpanKind::CacheNetwork),
            report.t_network()
        );
        prop_assert_eq!(
            trace.component_sum(SpanKind::Compute)
                + trace.component_sum(SpanKind::Gather)
                + trace.component_sum(SpanKind::GlobalReduce),
            report.t_compute()
        );
        prop_assert_eq!(trace.component_sum(SpanKind::Gather), report.t_ro());
        prop_assert_eq!(trace.component_sum(SpanKind::GlobalReduce), report.t_g());
        prop_assert_eq!(
            trace.component_sum(SpanKind::FaultDetection)
                + trace.component_sum(SpanKind::Migration)
                + trace.component_sum(SpanKind::StragglerRecovery),
            report.t_recovery()
        );
        prop_assert_eq!(trace.root().expect("run span").duration(), report.total());
        prop_assert_eq!(trace.passes().len(), report.num_passes());
        for (span, pass) in trace.passes().iter().zip(&report.passes) {
            prop_assert_eq!(span.duration(), pass.total());
        }
        // And the downstream consumers agree bit for bit.
        let rebuilt = ExecutionReport::from_trace(&trace).expect("from_trace");
        prop_assert_eq!(&rebuilt, &report);
        prop_assert_eq!(
            Profile::from_trace(&trace).expect("profile"),
            Profile::from_report(&report)
        );
    }

    #[test]
    fn empty_fault_schedule_trace_is_identical(case in cases()) {
        let (a, n, c, mb, seed) = case;
        let app = APPS[a];
        let dataset = app.generate("ti", mb as f64, 0.01, seed);
        let dep = pentium_deployment(n, c.max(n), 1e6);
        let (plain_report, plain_trace) = app.execute_traced(dep.clone(), &dataset);
        let (fault_report, fault_trace) = app.execute_with_faults_traced(
            dep,
            &dataset,
            &FaultSchedule::none(),
            &FaultOptions::default(),
        );
        prop_assert_eq!(plain_report, fault_report);
        prop_assert_eq!(plain_trace, fault_trace);
    }
}
