//! Differential harness for the pluggable-predictor refactor: every
//! decision path now prices deployments through the [`Predictor`]
//! trait object, and this suite pins the refactor as a pure
//! re-plumbing. A default-configured scheduler must be bit-identical —
//! outcomes, makespan, violations, and the rendered trace — to one
//! explicitly wired with the analytical predictor, across all seven
//! paper applications and all three workload shapes; and a *stateful*
//! predictor (whose epoch bumps invalidate the placement engine's
//! memoized rankings) must keep the cached engine bit-identical to the
//! exhaustive naive scan, mirroring `placement_differential.rs` one
//! level up the stack.

use fg_bench::figures::{sched_models, workload_jobs};
use fg_learn::HybridPredictor;
use freeride_g::predict::{AnalyticalPredictor, Predictor};
use freeride_g::sched::{Degradation, GridSpec, Policy, Scheduler, WorkloadShape};
use freeride_g::trace::to_jsonl;
use std::sync::Arc;

/// Every observable surface of a run, bitwise: outcomes (PartialEq is
/// field-exact), makespan bits, violations, and the rendered JSONL
/// trace (spans and the metrics snapshot).
fn assert_runs_identical(
    a: &freeride_g::sched::sched::SchedResult,
    b: &freeride_g::sched::sched::SchedResult,
    label: &str,
) {
    assert_eq!(a.outcomes, b.outcomes, "{label}: outcomes diverged");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{label}: makespan diverged ({} vs {})",
        a.makespan,
        b.makespan
    );
    assert_eq!(a.violations, b.violations, "{label}: violations diverged");
    assert_eq!(to_jsonl(&a.trace), to_jsonl(&b.trace), "{label}: trace diverged");
}

fn grid() -> GridSpec {
    GridSpec::demo(sched_models())
}

/// The headline pin: for all 7 apps × 3 shapes (the shaped preset
/// spreads all seven applications over 12 tenants), the default
/// scheduler and one explicitly carrying the analytical predictor
/// produce bit-identical runs under every policy the figures use.
#[test]
fn default_run_is_bit_identical_to_explicit_analytical() {
    for shape in WorkloadShape::ALL {
        let jobs = workload_jobs(shape);
        for policy in [Policy::Fcfs, Policy::FcfsBackfill, Policy::EdfAdmit] {
            let implicit = Scheduler::new(grid(), policy).run(&jobs);
            let explicit = Scheduler::new(grid(), policy)
                .with_predictor(Arc::new(AnalyticalPredictor))
                .run(&jobs);
            assert_runs_identical(&implicit, &explicit, &format!("{}/{policy:?}", shape.name()));
        }
    }
}

/// The full feature stack — quotas, preemption, migration, degradation
/// — rides the same seam; the explicit analytical predictor must not
/// perturb any of it.
#[test]
fn feature_stack_is_unperturbed_by_the_explicit_predictor() {
    for shape in WorkloadShape::ALL {
        let jobs = workload_jobs(shape);
        let build = || {
            Scheduler::new(grid(), Policy::FcfsBackfill)
                .with_quotas(vec![
                    freeride_g::sched::TenantQuota {
                        capacity: 1000.0,
                        refill_per_sec: 1.0
                    };
                    12
                ])
                .with_preemption(2.0)
                .with_migration(freeride_g::sched::MigrationConfig::default())
                .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.1 })
        };
        let implicit = build().run(&jobs);
        let explicit = build().with_predictor(Arc::new(AnalyticalPredictor)).run(&jobs);
        assert_runs_identical(&implicit, &explicit, &format!("{}/stack", shape.name()));
    }
}

/// A *stateful* predictor exercises the cache-invalidation contract:
/// every observation can bump the epoch, and a stale epoch in the
/// placement engine's memoized rankings would silently serve outdated
/// placements. Running the cached engine against the exhaustive naive
/// scan under a learning hybrid predictor — with a mid-run degradation
/// feeding it drifting observations — pins the epoch plumbing
/// end-to-end.
#[test]
fn cached_engine_tracks_an_epoch_bumping_predictor() {
    for shape in WorkloadShape::ALL {
        let jobs = workload_jobs(shape);
        let build = |pred: Arc<dyn Predictor>| {
            Scheduler::new(grid(), Policy::FcfsBackfill)
                .with_predictor(pred)
                .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.2 })
        };
        // Each arm needs its own predictor instance: the two runs feed
        // their predictors independently, and sharing one would let
        // the first run's training leak into the second.
        let cached = build(Arc::new(HybridPredictor::default())).run(&jobs);
        let naive = build(Arc::new(HybridPredictor::default())).with_naive_placement().run(&jobs);
        assert_runs_identical(&cached, &naive, &format!("{}/hybrid", shape.name()));
    }
}

/// Same pin for the learned ridge predictor, whose epoch bumps on
/// every refit rather than every observation.
#[test]
fn cached_engine_tracks_a_refitting_learned_predictor() {
    let shape = WorkloadShape::HeavyTail;
    let jobs = workload_jobs(shape);
    let build = |pred: Arc<dyn Predictor>| {
        Scheduler::new(grid(), Policy::FcfsBackfill)
            .with_predictor(pred)
            .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.3 })
    };
    let cached = build(Arc::new(fg_learn::LearnedPredictor::default())).run(&jobs);
    let naive =
        build(Arc::new(fg_learn::LearnedPredictor::default())).with_naive_placement().run(&jobs);
    assert_runs_identical(&cached, &naive, "heavy-tail/learned");
}

/// The predictor seam survives the wire: fg-serve's config object is
/// the `Scheduler` itself, so a predictor-carrying scheduler served
/// through the full protocol stack must (a) produce a schedule
/// bit-identical to driving an identically-configured scheduler
/// directly and (b) train the served predictor instance online.
#[test]
fn served_runs_carry_the_predictor_and_train_it() {
    let jobs = workload_jobs(WorkloadShape::Uniform);
    let build = |pred: Arc<dyn Predictor>| {
        Scheduler::new(grid(), Policy::EdfAdmit)
            .with_predictor(pred)
            .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.2 })
    };
    let direct = build(Arc::new(HybridPredictor::default())).run(&jobs);

    let served_pred = Arc::new(HybridPredictor::default());
    let server = fg_serve::Server::start(build(served_pred.clone()));
    let served = fg_serve::replay(&server, &jobs, Some(7)).expect("replay succeeds");
    server.shutdown();

    assert_eq!(
        serde_json::to_string(&direct.outcomes).unwrap(),
        serde_json::to_string(&served.drained.outcomes).unwrap(),
        "served outcomes diverged from the direct run"
    );
    assert_eq!(direct.makespan.to_bits(), served.drained.makespan.to_bits());
    assert_eq!(to_jsonl(&direct.trace), served.drained.trace_jsonl);
    assert!(served_pred.epoch() > 0, "the served predictor never trained");
}

/// The scheduler feeds observations only to predictors that ask for
/// them: a default run observes nothing (the analytical predictor's
/// epoch never moves), while a hybrid run trains.
#[test]
fn observations_flow_only_on_request() {
    let jobs = workload_jobs(WorkloadShape::Uniform);
    let analytical = Arc::new(AnalyticalPredictor);
    let s = Scheduler::new(grid(), Policy::Fcfs).with_predictor(analytical.clone());
    s.run(&jobs);
    assert_eq!(analytical.epoch(), 0);

    let hybrid = Arc::new(HybridPredictor::default());
    let s = Scheduler::new(grid(), Policy::Fcfs)
        .with_predictor(hybrid.clone())
        .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.2 });
    s.run(&jobs);
    assert!(hybrid.epoch() > 0, "a degraded run must train the hybrid");
}
