//! Edge cases across the application suite: degenerate parameters,
//! deterministic boundary-crossing features, and saturation conditions.

// Reference recomputations mirror the kernels' index-loop style.
#![allow(clippy::needless_range_loop)]

use freeride_g::apps::{ann, apriori, defect, em, kmeans, knn, vortex};
use freeride_g::chunks::{codec, Dataset, DatasetBuilder, Span};
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Executor, WorkMeter};

const SCALE: f64 = 0.01;

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

#[test]
fn kmeans_with_one_cluster_finds_the_mean() {
    let ds = kmeans::generate("edge-km1", 2.0, SCALE, 5, 1);
    let app = kmeans::KMeans { k: 1, passes: 4, seed: 5 };
    let run = Executor::new(deployment(1, 2)).run(&app, &ds);
    // The single centroid is the global mean of the data: recompute.
    let mut sums = [0.0f64; kmeans::DIM];
    let mut count = 0u64;
    for chunk in &ds.chunks {
        for p in codec::decode_f32s(&chunk.payload).chunks_exact(kmeans::DIM) {
            for d in 0..kmeans::DIM {
                sums[d] += p[d] as f64;
            }
            count += 1;
        }
    }
    for d in 0..kmeans::DIM {
        let mean = (sums[d] / count as f64) as f32;
        assert!(
            (run.final_state.centroids[0][d] - mean).abs() < 1e-2,
            "k=1 centroid should be the data mean"
        );
    }
}

#[test]
fn em_variance_floor_prevents_collapse() {
    // All points identical: variances would collapse to zero without the
    // floor; the run must finish with finite, positive variances.
    let mut b = DatasetBuilder::new("edge-em-degenerate", "em-points", 1.0);
    let point = [7.0f32, 7.0, 7.0, 7.0];
    for _ in 0..16 {
        let vals: Vec<f32> = point.iter().copied().cycle().take(4 * 50).collect();
        b.push_chunk(codec::encode_f32s(&vals), 50, None);
    }
    let ds = b.build();
    let app = em::Em { k: 2, iterations: 4, seed: 3 };
    let run = Executor::new(deployment(1, 2)).run(&app, &ds);
    for c in 0..2 {
        for d in 0..em::DIM {
            let v = run.final_state.vars[c][d];
            assert!(v.is_finite() && v > 0.0, "variance collapsed: {v}");
        }
    }
    assert!(run.final_state.loglik.is_finite());
}

#[test]
fn knn_with_k_exceeding_dataset_returns_everything() {
    let mut b = DatasetBuilder::new("edge-knn-small", "knn-points", 1.0);
    // 8 labeled samples in two chunks.
    for half in 0..2 {
        let mut vals = Vec::new();
        for i in 0..4 {
            for d in 0..knn::DIM {
                vals.push((half * 4 + i) as f32 + d as f32 * 0.1);
            }
            vals.push((i % 2) as f32);
        }
        b.push_chunk(codec::encode_f32s(&vals), 4, None);
    }
    let ds = b.build();
    let app = knn::Knn { k: 50, queries: vec![[0.0; knn::DIM]] };
    let run = Executor::new(deployment(1, 2)).run(&app, &ds);
    match run.final_state {
        knn::KnnState::Done { neighbors, .. } => {
            assert_eq!(neighbors[0].len(), 8, "k > dataset returns every sample");
        }
        _ => panic!("did not finish"),
    }
}

/// Build a two-slab vector field with a single synthetic vortex centered
/// exactly on the slab boundary, and check it is joined into one feature.
#[test]
fn vortex_centered_on_chunk_boundary_counts_once() {
    const W: usize = vortex::WIDTH;
    let rows = 40usize;
    let boundary = 20usize;
    let (cx, cy, r0, s) = (W as f32 / 2.0, boundary as f32, 4.0f32, 3.0f32);
    let mut field = vec![0.0f32; rows * W * 2];
    for r in 0..rows {
        for c in 0..W {
            let (dy, dx) = (r as f32 - cy, c as f32 - cx);
            let f = s * (-(dx * dx + dy * dy) / (r0 * r0)).exp() / r0;
            field[(r * W + c) * 2] = -dy * f;
            field[(r * W + c) * 2 + 1] = dx * f;
        }
    }
    let mut b = DatasetBuilder::new("edge-vx-boundary", "cfd-field", 1.0);
    // Slab 1: rows [0, 20) with one halo row after.
    b.push_chunk(
        codec::encode_f32s(&field[..(boundary + 1) * W * 2]),
        (boundary * W) as u64,
        Some(Span { begin: 0, end: boundary as u64, halo_before: 0, halo_after: 1 }),
    );
    // Slab 2: rows [20, 40) with one halo row before.
    b.push_chunk(
        codec::encode_f32s(&field[(boundary - 1) * W * 2..]),
        ((rows - boundary) * W) as u64,
        Some(Span { begin: boundary as u64, end: rows as u64, halo_before: 1, halo_after: 0 }),
    );
    let ds = b.build();
    let app = vortex::VortexDetect::default();
    for (n, c) in [(1usize, 1usize), (2, 2)] {
        let run = Executor::new(deployment(n, c)).run(&app, &ds);
        match &run.final_state {
            vortex::VortexState::Done(found) => {
                assert_eq!(found.len(), 1, "boundary vortex split at {n}-{c}");
                assert!((found[0].row - cy as f64).abs() < 1.0);
                assert!((found[0].col - cx as f64).abs() < 1.0);
            }
            _ => panic!("did not finish"),
        }
    }
}

/// Plant a vacancy exactly on a z-slab boundary and check the fragments
/// from the two chunks are joined into one six-atom defect.
#[test]
fn defect_on_slab_boundary_counts_once() {
    const L: usize = defect::LATTICE_XY;
    let layers = 16usize;
    let hole = [8i32, 8, 8]; // z = 8 is a 4-layer slab boundary
    let mut layer_atoms: Vec<Vec<f32>> = vec![Vec::new(); layers];
    for z in 0..layers as i32 {
        for x in 0..L as i32 {
            for y in 0..L as i32 {
                if [x, y, z] == hole {
                    continue;
                }
                layer_atoms[z as usize].extend_from_slice(&[x as f32, y as f32, z as f32, 0.0]);
            }
        }
    }
    let mut b = DatasetBuilder::new("edge-df-boundary", "si-lattice", 1.0);
    let mut z0 = 0usize;
    while z0 < layers {
        let z1 = (z0 + 4).min(layers);
        let (hb, ha) = (usize::from(z0 > 0), usize::from(z1 < layers));
        let mut payload = Vec::new();
        let mut owned = 0u64;
        for z in (z0 - hb)..(z1 + ha) {
            payload.extend_from_slice(&layer_atoms[z]);
            if z >= z0 && z < z1 {
                owned += (layer_atoms[z].len() / 4) as u64;
            }
        }
        b.push_chunk(
            codec::encode_f32s(&payload),
            owned,
            Some(Span {
                begin: z0 as u64,
                end: z1 as u64,
                halo_before: hb as u64,
                halo_after: ha as u64,
            }),
        );
        z0 = z1;
    }
    let ds = b.build();
    let app = defect::DefectDetect::for_dataset(&ds);
    for (n, c) in [(1usize, 1usize), (2, 4)] {
        let run = Executor::new(deployment(n, c)).run(&app, &ds);
        match &run.final_state {
            defect::DefectState::Done { defects, classes, catalog } => {
                assert_eq!(defects.len(), 1, "boundary vacancy split at {n}-{c}");
                assert_eq!(defects[0].atoms, 6, "vacancy ring must have six atoms");
                assert_eq!(classes[0], 0, "should match the canonical vacancy class");
                assert_eq!(catalog.len(), 3);
            }
            _ => panic!("did not finish"),
        }
    }
}

#[test]
fn apriori_at_full_support_finds_nothing_but_universal_items() {
    let ds = apriori::generate("edge-ap-full", 1.0, SCALE, 4, &[]);
    let app = apriori::Apriori { min_support: 1.0, max_size: 3 };
    let run = Executor::new(deployment(1, 1)).run(&app, &ds);
    // No item appears in every transaction of a uniform-noise dataset.
    assert!(run.final_state.frequent.is_empty());
    // The run must still terminate promptly (no candidates after pass 1).
    assert_eq!(run.report.num_passes(), 1);
}

#[test]
fn ann_handles_single_chunk_single_node() {
    let mut b = DatasetBuilder::new("edge-ann-tiny", "ann-points", 1.0);
    let mut vals = Vec::new();
    for i in 0..32 {
        for _ in 0..ann::DIM {
            vals.push((i % 3) as f32 * 0.3 + 0.1);
        }
        vals.push((i % 3) as f32);
    }
    b.push_chunk(codec::encode_f32s(&vals), 32, None);
    let ds = b.build();
    let app = ann::AnnTrain { epochs: 3, learning_rate: 0.3, seed: 2 };
    let run = Executor::new(deployment(1, 1)).run(&app, &ds);
    assert_eq!(run.final_state.epoch, 3);
    assert!(run.final_state.loss.is_finite());
}

/// Meters must be monotone: folding more chunks never reduces counts.
#[test]
fn work_meters_accumulate_monotonically() {
    let ds: Dataset = kmeans::generate("edge-meter", 2.0, SCALE, 6, 4);
    let app = kmeans::KMeans { k: 4, passes: 1, seed: 6 };
    let state = freeride_g::middleware::ReductionApp::initial_state(&app);
    let mut obj = freeride_g::middleware::ReductionApp::new_object(&app, &state);
    let mut meter = WorkMeter::new();
    let mut prev = 0u64;
    for chunk in ds.chunks.iter().take(8) {
        freeride_g::middleware::ReductionApp::local_reduce(
            &app, &state, chunk, &mut obj, &mut meter,
        );
        let now = meter.data_counts().total();
        assert!(now > prev, "meter must strictly grow with data");
        prev = now;
    }
}
