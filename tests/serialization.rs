//! Serde round-trips of the publicly persisted types: profiles (written
//! by `fg profile --json`), execution reports, figure tables, and the
//! checkpoint wire format that migration ships between deployments.

use fg_bench::PaperApp;
use freeride_g::apps::{ann, apriori, defect, em, kmeans, knn, vortex};
use freeride_g::chunks::Dataset;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{Checkpoint, Executor, FaultOptions, ReductionApp, StopPoint};
use freeride_g::predict::{Prediction, Profile, ScalingFactors, Target};
use freeride_g::sim::FaultSchedule;
use serde::{Deserialize, Serialize, Value};

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

#[test]
fn profile_roundtrips_through_json() {
    let ds = kmeans::generate("ser-km", 50.0, 0.004, 1, 4);
    let app = kmeans::KMeans { k: 4, passes: 3, seed: 1 };
    let report = Executor::new(deployment(2, 4)).run(&app, &ds).report;
    let profile = Profile::from_report(&report);
    let json = serde_json::to_string(&profile).expect("serialize");
    let back: Profile = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(profile, back);
}

#[test]
fn execution_report_roundtrips_preserving_breakdown() {
    let ds = kmeans::generate("ser-rep", 50.0, 0.004, 2, 4);
    let app = kmeans::KMeans { k: 4, passes: 2, seed: 2 };
    let report = Executor::new(deployment(1, 2)).run(&app, &ds).report;
    let json = serde_json::to_string(&report).expect("serialize");
    let back: freeride_g::middleware::ExecutionReport =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report.total(), back.total());
    assert_eq!(report.t_disk(), back.t_disk());
    assert_eq!(report.t_ro(), back.t_ro());
    assert_eq!(report.num_passes(), back.num_passes());
    assert_eq!(report.cache_mode, back.cache_mode);
}

#[test]
fn deployment_roundtrips_with_cache_site() {
    let mut d = deployment(2, 4);
    d.cache = Some(freeride_g::cluster::CacheSite::new(
        RepositorySite::pentium_repository("cache", 4),
        2,
        Wan::per_stream(50e6),
    ));
    let json = serde_json::to_string(&d).expect("serialize");
    let back: Deployment = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(d, back);
}

/// Suspend a run mid-first-pass and push the checkpoint through its
/// wire format: decoding must be lossless (re-serialization is a
/// fixpoint) and the decoded checkpoint must still resume to the
/// uninterrupted run's final state.
fn checkpoint_roundtrip<A>(app: &A, ds: &Dataset)
where
    A: ReductionApp,
    A::State: Serialize + Deserialize,
    A::Obj: Serialize + Deserialize,
{
    let ex = Executor::new(deployment(2, 4));
    let (sched, opts) = (FaultSchedule::none(), FaultOptions::default());
    let stop = StopPoint { pass: 0, cursor: ds.num_chunks() / 2 };
    let ck = ex
        .run_resumable(app, ds, &sched, &opts, stop)
        .expect_suspended("every app runs at least one full pass");

    let wire = ck.to_value();
    let back: Checkpoint<A::State, A::Obj> =
        Deserialize::from_value(&wire).unwrap_or_else(|e| panic!("{}: decode: {e}", app.name()));
    assert_eq!(back.to_value(), wire, "{}: re-serialization must be a fixpoint", app.name());
    assert_eq!(back.app, app.name());
    assert_eq!(back.pass_idx, stop.pass);
    assert_eq!(back.cursor, stop.cursor);
    assert_eq!(back.num_chunks, ds.num_chunks());
    assert_eq!(back.partials.len(), 4, "one partial-object vector per compute node");

    let unsplit = ex.run(app, ds);
    let resumed = ex.resume_from(app, ds, back, &sched, &opts);
    assert_eq!(
        resumed.final_state.to_value(),
        unsplit.final_state.to_value(),
        "{}: a decoded checkpoint must resume to the unsplit answer",
        app.name()
    );
}

#[test]
fn checkpoints_roundtrip_for_all_seven_apps() {
    let gen = |app: PaperApp| app.generate(&format!("ser-ck-{}", app.name()), 6.0, 0.01, 37);
    checkpoint_roundtrip(&kmeans::KMeans::paper(7), &gen(PaperApp::KMeans));
    checkpoint_roundtrip(&em::Em::paper(7), &gen(PaperApp::Em));
    checkpoint_roundtrip(&knn::Knn::paper(7), &gen(PaperApp::Knn));
    checkpoint_roundtrip(&vortex::VortexDetect::default(), &gen(PaperApp::Vortex));
    let defect_ds = gen(PaperApp::Defect);
    checkpoint_roundtrip(&defect::DefectDetect::for_dataset(&defect_ds), &defect_ds);
    checkpoint_roundtrip(&apriori::Apriori::standard(), &gen(PaperApp::Apriori));
    checkpoint_roundtrip(&ann::AnnTrain::paper(7), &gen(PaperApp::Ann));
}

fn kmeans_checkpoint() -> (Dataset, Value) {
    let ds = kmeans::generate("ser-ck-corrupt", 50.0, 0.004, 5, 4);
    let app = kmeans::KMeans { k: 4, passes: 3, seed: 5 };
    let ck = Executor::new(deployment(2, 4))
        .run_resumable(
            &app,
            &ds,
            &FaultSchedule::none(),
            &FaultOptions::default(),
            StopPoint { pass: 1, cursor: 3 },
        )
        .expect_suspended("three passes reach pass 1");
    let wire = ck.to_value();
    (ds, wire)
}

type KmCheckpoint = Checkpoint<kmeans::KMeansState, kmeans::KMeansObj>;

#[test]
fn truncated_checkpoint_is_rejected() {
    let (_, wire) = kmeans_checkpoint();
    let Value::Object(fields) = wire else { panic!("checkpoint serializes as an object") };
    // A checkpoint cut off mid-write loses its trailing fields; every
    // truncation point must fail decoding with the missing field named.
    for keep in 0..fields.len() {
        let cut = Value::Object(fields[..keep].to_vec());
        let err = <KmCheckpoint as Deserialize>::from_value(&cut)
            .err()
            .unwrap_or_else(|| panic!("truncation at {keep} fields must be rejected"));
        assert!(
            err.to_string().contains(&fields[keep].0),
            "error should name the first missing field `{}`: {err}",
            fields[keep].0
        );
    }
}

#[test]
fn corrupt_checkpoint_fields_are_rejected() {
    let (_, wire) = kmeans_checkpoint();
    let Value::Object(fields) = wire else { panic!("checkpoint serializes as an object") };
    for victim in ["cursor", "state", "partials", "elapsed"] {
        let mut bad = fields.clone();
        bad.iter_mut().find(|(k, _)| k == victim).expect("field exists").1 =
            Value::Str("garbage".into());
        assert!(
            <KmCheckpoint as Deserialize>::from_value(&Value::Object(bad)).is_err(),
            "type-corrupted `{victim}` must be rejected"
        );
    }
}

#[test]
#[should_panic(expected = "checkpoint cursor out of range")]
fn out_of_range_checkpoint_cursor_is_rejected_at_resume() {
    let (ds, wire) = kmeans_checkpoint();
    let mut ck: KmCheckpoint = Deserialize::from_value(&wire).expect("intact wire decodes");
    ck.cursor = ds.num_chunks() + 7;
    let app = kmeans::KMeans { k: 4, passes: 3, seed: 5 };
    Executor::new(deployment(2, 4)).resume_from(
        &app,
        &ds,
        ck,
        &FaultSchedule::none(),
        &FaultOptions::default(),
    );
}

#[test]
fn model_value_types_roundtrip() {
    let t = Target { data_nodes: 4, compute_nodes: 8, wan_bw: 1e6, dataset_bytes: 42 };
    let p = Prediction { t_disk: 1.5, t_network: 2.5, t_compute: 3.5 };
    let f = ScalingFactors { disk: 0.3, network: 1.0, compute: 0.25 };
    let tt: Target = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    let pp: Prediction = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    let ff: ScalingFactors = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(t, tt);
    assert_eq!(p, pp);
    assert_eq!(f, ff);
}
