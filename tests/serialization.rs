//! Serde round-trips of the publicly persisted types: profiles (written
//! by `fg profile --json`), execution reports, and figure tables.

use freeride_g::apps::kmeans;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::Executor;
use freeride_g::predict::{Prediction, Profile, ScalingFactors, Target};

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

#[test]
fn profile_roundtrips_through_json() {
    let ds = kmeans::generate("ser-km", 50.0, 0.004, 1, 4);
    let app = kmeans::KMeans { k: 4, passes: 3, seed: 1 };
    let report = Executor::new(deployment(2, 4)).run(&app, &ds).report;
    let profile = Profile::from_report(&report);
    let json = serde_json::to_string(&profile).expect("serialize");
    let back: Profile = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(profile, back);
}

#[test]
fn execution_report_roundtrips_preserving_breakdown() {
    let ds = kmeans::generate("ser-rep", 50.0, 0.004, 2, 4);
    let app = kmeans::KMeans { k: 4, passes: 2, seed: 2 };
    let report = Executor::new(deployment(1, 2)).run(&app, &ds).report;
    let json = serde_json::to_string(&report).expect("serialize");
    let back: freeride_g::middleware::ExecutionReport =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report.total(), back.total());
    assert_eq!(report.t_disk(), back.t_disk());
    assert_eq!(report.t_ro(), back.t_ro());
    assert_eq!(report.num_passes(), back.num_passes());
    assert_eq!(report.cache_mode, back.cache_mode);
}

#[test]
fn deployment_roundtrips_with_cache_site() {
    let mut d = deployment(2, 4);
    d.cache = Some(freeride_g::cluster::CacheSite::new(
        RepositorySite::pentium_repository("cache", 4),
        2,
        Wan::per_stream(50e6),
    ));
    let json = serde_json::to_string(&d).expect("serialize");
    let back: Deployment = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(d, back);
}

#[test]
fn model_value_types_roundtrip() {
    let t = Target { data_nodes: 4, compute_nodes: 8, wan_bw: 1e6, dataset_bytes: 42 };
    let p = Prediction { t_disk: 1.5, t_network: 2.5, t_compute: 3.5 };
    let f = ScalingFactors { disk: 0.3, network: 1.0, compute: 0.25 };
    let tt: Target = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    let pp: Prediction = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    let ff: ScalingFactors = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(t, tt);
    assert_eq!(p, pp);
    assert_eq!(f, ff);
}
