//! Offline stand-in for `rand` 0.8.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the subset of the `rand` API the workspace uses: a seeded,
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! the [`Rng`] extension trait with `gen_range`/`gen_bool`/`gen`/
//! `sample_iter`, and the [`distributions::Standard`] distribution.
//!
//! The stream differs from upstream `StdRng` (which is ChaCha12), but
//! nothing in the workspace depends on the exact stream — only on
//! determinism for a fixed seed, which this implementation guarantees
//! across platforms.

#![allow(clippy::all)]

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform double in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform float in `[0, 1)` from 24 random bits.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * unit_f32(rng.next_u64())
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
    {
        distributions::DistIter { distr, rng: self, _marker: std::marker::PhantomData }
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod distributions {
    use super::{unit_f32, unit_f64, RngCore};

    /// A sampling distribution.
    pub trait Distribution<T> {
        fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> T;
    }

    /// The "any value" distribution over a type's full range.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<G: RngCore + ?Sized>(&self, rng: &mut G) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    /// Iterator over repeated samples (returned by `Rng::sample_iter`).
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
