//! Offline stand-in for `rayon`.
//!
//! The registry is unreachable in this build environment, so `par_iter()`
//! here returns an ordinary sequential `std::slice::Iter`. Every adapter
//! the workspace chains afterwards (`map`, `collect`, `max`, ...) is then
//! just the std `Iterator` machinery. Sequential execution is also the
//! conservative choice for this codebase: the simulator's results must be
//! bit-identical across runs, and the real work per item is tiny.

#![allow(clippy::all)]

pub mod prelude {
    /// `par_iter()` on slices and `Vec`s, sequential edition.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;

        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()`, sequential edition.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;

        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let total: u64 = v.par_iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v = vec![1u64, 2, 3];
        let collected: Vec<u64> = v.into_par_iter().collect();
        assert_eq!(collected, vec![1, 2, 3]);
        let r: Vec<usize> = (0..4).into_par_iter().collect();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }
}
