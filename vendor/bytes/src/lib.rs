//! Offline stand-in for `bytes`.
//!
//! Provides [`Bytes`] (a cheaply cloneable, immutable byte buffer backed
//! by an `Arc`), [`BytesMut`] (a growable builder that freezes into
//! `Bytes`), and the [`BufMut`] little-endian writer methods the chunk
//! codecs use. No slicing/splitting — the workspace never splits
//! buffers.

#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice (copies; the upstream zero-copy trick is
    /// irrelevant at these sizes).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::new(bytes.to_vec()) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes { data: Arc::new(bytes.to_vec()) }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Convert into an immutable buffer without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::new(self.data) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Little-endian append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_f32_le(1.5);
        b.put_u32_le(0xdead_beef);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(&frozen[0..4], &1.5f32.to_le_bytes());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&*a, &*b);
        assert_eq!(a, b);
    }
}
