//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment,
//! so the workspace vendors a minimal serde whose data model is a JSON
//! value tree (see `vendor/serde`). This proc-macro derives that crate's
//! `Serialize`/`Deserialize` traits for plain structs and enums without
//! pulling in `syn`/`quote`: the item is parsed directly from the token
//! stream.
//!
//! Supported shapes (everything this workspace uses):
//! - named-field structs
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays)
//! - unit structs
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde)
//!
//! Supported field attributes: `#[serde(skip)]`, `#[serde(default)]`,
//! `#[serde(with = "module")]` where the module provides
//! `to_value(&T) -> serde::Value` and
//! `from_value(&serde::Value) -> Result<T, serde::Error>`.
//!
//! Generics are intentionally unsupported; the derive panics with a
//! clear message rather than emitting wrong code.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
    with: Option<String>,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Kind {
    Struct(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Serde attributes found on one field: (skip, default, with).
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

fn parse_serde_attr(group_tokens: &[TokenTree], attrs: &mut FieldAttrs) {
    // Tokens inside `#[...]`: expect `serde ( ... )`.
    let mut it = group_tokens.iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // some other attribute (doc comment, cfg, ...)
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => return,
    };
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "skip" => attrs.skip = true,
                    "default" => attrs.default = true,
                    "with" => {
                        // with = "path"
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                let s = lit.to_string();
                                attrs.with = Some(s.trim_matches('"').to_string());
                                j += 2;
                            }
                        }
                    }
                    other => panic!("vendored serde_derive: unsupported serde attribute `{other}`"),
                }
            }
            TokenTree::Punct(_) => {}
            t => panic!("vendored serde_derive: unexpected token in serde attribute: {t}"),
        }
        j += 1;
    }
}

/// Consume leading attributes starting at `i`; returns (next index,
/// collected serde attrs).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_serde_attr(&inner, &mut attrs);
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Consume an optional visibility (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated items in a token list, tracking
/// angle-bracket depth so `Foo<A, B>` counts as one item.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1;
    let mut saw_any = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => items += 1,
            _ => saw_any = true,
        }
    }
    // A trailing comma opens a phantom item.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            items -= 1;
        }
    }
    if !saw_any {
        0
    } else {
        items
    }
}

/// Parse the fields of a named-field group `{ ... }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, attrs) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("vendored serde_derive: expected field name, got {t}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            t => panic!("vendored serde_derive: expected `:` after field `{name}`, got {t:?}"),
        }
        // Skip the type: everything until a comma at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip: attrs.skip, default: attrs.default, with: attrs.with });
    }
    fields
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _attrs) = skip_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("vendored serde_derive: expected variant name, got {t}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g).into_iter().map(|f| f.name).collect())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Tuple(count_top_level_items(&inner))
            }
            _ => VariantFields::Unit,
        };
        // Skip to past the next top-level comma (also skips `= expr`
        // discriminants if any appear).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Outer attributes and visibility.
    let (ni, _) = skip_attrs(&tokens, i);
    i = skip_vis(&tokens, ni);
    let kind_word = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("vendored serde_derive: expected `struct` or `enum`, got {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("vendored serde_derive: expected type name, got {t:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "vendored serde_derive: generic type `{name}` is not supported; \
                 write manual impls"
            );
        }
    }
    let kind = match kind_word.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Tuple(count_top_level_items(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            t => panic!("vendored serde_derive: malformed struct body: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_enum_variants(g))
            }
            t => panic!("vendored serde_derive: malformed enum body: {t:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                let expr = match &f.with {
                    Some(path) => format!("{path}::to_value(&self.{})", f.name),
                    None => format!("::serde::Serialize::to_value(&self.{})", f.name),
                };
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{}\"), {expr}));\n",
                    f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Unit => format!("::serde::Value::Str(::std::string::String::from(\"{name}\"))"),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vn}\"), \
                              ::serde::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> =
                            (0..*n).map(|k| format!("__v{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__v0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("vendored serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                let init = if f.skip {
                    "::std::default::Default::default()".to_string()
                } else {
                    let from = match &f.with {
                        Some(path) => format!("{path}::from_value(__x)?"),
                        None => "::serde::Deserialize::from_value(__x)?".to_string(),
                    };
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::Error::custom(\
                             \"missing field `{fname}` in {name}\"))"
                        )
                    };
                    format!(
                        "match ::serde::get_field(__obj, \"{fname}\") {{\n\
                         ::std::option::Option::Some(__x) => {from},\n\
                         ::std::option::Option::None => {missing},\n}}"
                    )
                };
                inits.push_str(&format!("{fname}: {init},\n"));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: match ::serde::get_field(__obj, \"{f}\") {{\n\
                                 ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::from_value(__x)?,\n\
                                 ::std::option::Option::None => return \
                                 ::std::result::Result::Err(::serde::Error::custom(\
                                 \"missing field `{f}` in {name}::{vn}\")),\n}},\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __obj = __inner.as_object()\
                             .ok_or_else(|| ::serde::Error::custom(\
                             \"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__inner)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\nlet __arr = __inner.as_array()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected array for {name}::{vn}\"))?;\n\
                                 if __arr.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong arity for {name}::{vn}\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                                items.join(", ")
                            ));
                        }
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __inner) = &__o[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for {name}\")),\n}}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("vendored serde_derive: generated invalid Deserialize impl")
}
