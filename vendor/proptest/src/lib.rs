//! Offline stand-in for `proptest`.
//!
//! Provides deterministic randomized property testing with the API shape
//! the workspace uses: the `proptest! { ... }` macro with an optional
//! `#![proptest_config(...)]` header, `arg in strategy` bindings over
//! numeric ranges / tuples / `collection::vec` / `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!` family.
//!
//! Differences from upstream, deliberately accepted:
//! - cases are seeded deterministically (test failures always reproduce);
//! - no shrinking — the failing case's inputs are reported as-is via the
//!   panic message's case number (re-runnable because seeding is fixed);
//! - `any::<f32>()`/`any::<f64>()` sample uniform bit patterns, so NaN
//!   and infinities do occur (good for codec round-trip tests).

#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod test_runner {
    use super::*;

    /// Mirror of `proptest::test_runner::Config` (just the case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case RNG.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded from a fixed constant and the case index, so every run
        /// of the suite explores the same cases in the same order.
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(
                    0x70726f70_74657374u64 ^ case.wrapping_mul(0x9e3779b97f4a7c15),
                ),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A value generator. Upstream proptest strategies also shrink; this
    /// one only generates.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Always yields a clone of the given value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range "any value" generation.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore as _;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            use rand::RngCore as _;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            use rand::RngCore as _;
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            use rand::RngCore as _;
            f64::from_bits(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub const NEW: Any<T> = Any(std::marker::PhantomData);
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — generate any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `proptest::bool::ANY`.
pub mod bool {
    pub const ANY: crate::strategy::Any<::core::primitive::bool> = crate::strategy::Any::NEW;
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Vec strategy with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// The test-definition macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __case, stringify!($name), __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Case precondition: upstream rejects and regenerates; here the case is
/// simply skipped (deterministic seeding keeps coverage stable anyway).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Property assertion: returns an `Err` from the enclosing case instead
/// of panicking (the runner reports the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..50, f in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in collection::vec((0u32..10, 0.0f32..1.0), 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            for (a, b) in &v {
                prop_assert!(*a < 10);
                prop_assert!((0.0..1.0).contains(b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        let sa = (0u64..10).map(|_| Strategy::generate(&(0u64..1000), &mut a)).collect::<Vec<_>>();
        let sb = (0u64..10).map(|_| Strategy::generate(&(0u64..1000), &mut b)).collect::<Vec<_>>();
        assert_eq!(sa, sb);
    }
}
