//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde's [`Value`] tree as JSON text.
//! Numbers print through Rust's shortest-roundtrip float formatting, so
//! `f64` survives a text round-trip bit-exactly (non-finite floats render
//! as `null`, as real serde_json's lossy modes do); `u64`/`i64` are kept
//! integral end to end.

#![allow(clippy::all)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a raw [`Value`].
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    parse_value(s)
}

// ---- printer ---------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest round-trip representation; it always
    // contains '.' or 'e' for floats, so the value re-parses as a float.
    let _ = write!(out, "{f:?}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {} of JSON input", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid keyword in JSON input"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid keyword in JSON input"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid keyword in JSON input"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in JSON array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in JSON object")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters up to
                    // the next quote or escape with one UTF-8
                    // validation — validating from `pos` per character
                    // is quadratic on long strings.
                    let mut end = self.pos;
                    while end < self.bytes.len() {
                        let b = self.bytes[end];
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in JSON input"))?;
                    out.push_str(run);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number in JSON input"))?;
        if text.is_empty() {
            return Err(Error::custom(format!(
                "unexpected character at byte {start} of JSON input"
            )));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>(&to_string(&1.25e-3).unwrap()).unwrap(), 1.25e-3);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\n\\\"b\\\"\"").unwrap(), "a\n\"b\"");
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e300, -2.5e-10, 40e6] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nonfinite_floats_render_as_sentinel_strings() {
        // serde's data model maps non-finite floats to sentinel strings
        // so they survive the JSON text format (bare `NaN` is invalid
        // JSON, and `null` would lose the value entirely).
        assert_eq!(to_string(&f64::NAN).unwrap(), "\"nan\"");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "\"inf\"");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "\"-inf\"");
        assert!(from_str::<f64>("\"nan\"").unwrap().is_nan());
        assert_eq!(from_str::<f64>("\"inf\"").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("\"-inf\"").unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn nested_containers() {
        let v: Vec<(String, Vec<f64>)> = vec![("a".into(), vec![1.0, 2.5]), ("b".into(), vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<u64> = vec![1, 2, 3];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
    }

    #[test]
    fn long_strings_roundtrip_in_linear_time() {
        // A megabyte-scale string with escapes and multi-byte
        // characters sprinkled through it: the parser must consume
        // plain runs in bulk (per-character re-validation of the
        // remaining input made this take tens of seconds).
        let unit = "span{\"kind\":\"read\"}\nsüß→\t";
        let s: String = unit.repeat(50_000);
        let start = std::time::Instant::now();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "long-string parse is superlinear: {:?}",
            start.elapsed()
        );
    }
}
