//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors the minimal surface it actually uses. Instead of
//! serde's visitor architecture, this crate models serialization as a
//! conversion to and from a JSON-like [`Value`] tree:
//!
//! - [`Serialize`]: `fn to_value(&self) -> Value`
//! - [`Deserialize`]: `fn from_value(&Value) -> Result<Self, Error>`
//!
//! The derive macros (re-exported from the vendored `serde_derive`)
//! generate these impls for plain structs and enums, honoring
//! `#[serde(skip)]`, `#[serde(default)]`, and `#[serde(with = "mod")]`.
//! The vendored `serde_json` renders and parses `Value` as JSON text.

#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A JSON-like value tree: the serialization data model.
///
/// Integers keep their signedness so `u64` round-trips exactly (floats
/// would lose precision past 2^53). Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion across the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| get_field(o, key))
    }
}

/// Field lookup on an object's entry list (used by generated code).
pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the serialization data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the serialization data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

// Non-finite floats have no JSON representation (the vendored
// serde_json renders them as `null`), so they are encoded as sentinel
// strings at the data-model layer. Finite values are untouched.
fn float_to_value(f: f64) -> Value {
    if f.is_finite() {
        Value::Float(f)
    } else if f.is_nan() {
        Value::Str("nan".to_string())
    } else if f > 0.0 {
        Value::Str("inf".to_string())
    } else {
        Value::Str("-inf".to_string())
    }
}

fn float_from_value(v: &Value) -> Result<f64, Error> {
    match v {
        Value::Str(s) => match s.as_str() {
            "nan" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(Error::custom("expected number or non-finite sentinel")),
        },
        other => other.as_f64().ok_or_else(|| Error::custom("expected number")),
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        float_to_value(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        float_from_value(v)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        float_to_value(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(float_from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if arr.len() != N {
            return Err(Error::custom("wrong array length"));
        }
        let items: Vec<T> = arr.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items.try_into().map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output regardless of hash order.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$( $idx ),+].len();
                if arr.len() != expected {
                    return Err(Error::custom("wrong tuple arity"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrips_exactly() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn fixed_arrays_roundtrip() {
        let a = [1.5f32, -2.0, 0.0];
        let v = a.to_value();
        assert_eq!(<[f32; 3]>::from_value(&v).unwrap(), a);
        assert!(<[f32; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn non_finite_floats_roundtrip_as_sentinels() {
        assert_eq!(f64::INFINITY.to_value(), Value::Str("inf".into()));
        assert_eq!(f64::NEG_INFINITY.to_value(), Value::Str("-inf".into()));
        assert_eq!(f64::from_value(&Value::Str("inf".into())).unwrap(), f64::INFINITY);
        assert_eq!(f64::from_value(&Value::Str("-inf".into())).unwrap(), f64::NEG_INFINITY);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(f32::from_value(&f32::INFINITY.to_value()).unwrap(), f32::INFINITY);
        assert!(f64::from_value(&Value::Str("fast".into())).is_err());
    }

    #[test]
    fn map_order_is_deterministic() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u64);
        m.insert("a".to_string(), 2u64);
        match m.to_value() {
            Value::Object(o) => assert_eq!(o[0].0, "a"),
            _ => panic!("expected object"),
        }
    }
}
