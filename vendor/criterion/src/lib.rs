//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's bench harnesses compiling and runnable without
//! the real statistics engine: each benchmark is warmed up once, then
//! timed for a handful of iterations, and the mean wall-clock time is
//! printed. Good enough to smoke-test the benches and eyeball relative
//! cost; not a substitute for real measurement.

#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed iterations a [`Bencher`] runs (upstream runs an
/// adaptively chosen number; we keep it small and fixed).
const TIMED_ITERS: u32 = 10;

/// Measurement configuration. Only the knobs the workspace touches.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput annotation (accepted and ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Runs the closure under timing.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up pass, then a fixed number of timed passes.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += TIMED_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total / b.iters;
        println!("bench {label:<48} {mean:>12.2?}/iter ({} iters)", b.iters);
    } else {
        println!("bench {label:<48} (no iterations)");
    }
}

/// Both upstream forms: `criterion_group!(name, target...)` and the
/// braced `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
