#!/usr/bin/env bash
# Line coverage for the scheduler, middleware, and trace crates, with a
# ratchet.
#
# Built directly on rustc's `-C instrument-coverage` plus the llvm-tools
# component — no external cargo plugins. The workspace test suite runs
# instrumented, the per-process .profraw files are merged, and llvm-cov
# reports line coverage scoped to the crates listed in the baseline.
# Each crate's percentage is compared against the floor recorded in
# scripts/coverage-baseline.txt: raise the floor when coverage rises,
# so it can never silently regress.
#
# Requires llvm-profdata/llvm-cov matching the active toolchain:
#   rustup component add llvm-tools
set -euo pipefail
cd "$(dirname "$0")/.."

sysroot="$(rustc --print sysroot)"
tooldir="$(ls -d "$sysroot"/lib/rustlib/*/bin 2>/dev/null | head -1 || true)"
profdata=""
cov=""
for cand in "$tooldir/llvm-profdata" llvm-profdata; do
    if command -v "$cand" >/dev/null 2>&1; then profdata="$cand"; break; fi
done
for cand in "$tooldir/llvm-cov" llvm-cov; do
    if command -v "$cand" >/dev/null 2>&1; then cov="$cand"; break; fi
done
if [ -z "$profdata" ] || [ -z "$cov" ]; then
    echo "error: llvm-profdata / llvm-cov not found." >&2
    echo "       install them with: rustup component add llvm-tools" >&2
    exit 2
fi
command -v jq >/dev/null 2>&1 || { echo "error: jq is required" >&2; exit 2; }

# Fail fast if the discovered llvm-profdata cannot read this rustc's
# profile format (a system LLVM several majors behind the toolchain's):
# probe with a trivial instrumented binary before paying for the full
# instrumented workspace test run.
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
echo 'fn main() {}' > "$probe_dir/probe.rs"
rustc -C instrument-coverage -o "$probe_dir/probe" "$probe_dir/probe.rs" >/dev/null 2>&1
(cd "$probe_dir" && LLVM_PROFILE_FILE="$probe_dir/probe.profraw" ./probe)
if ! "$profdata" merge -sparse "$probe_dir/probe.profraw" \
    -o "$probe_dir/probe.profdata" >/dev/null 2>&1; then
    echo "error: $profdata cannot read profiles produced by $(rustc --version)." >&2
    echo "       install the matching tools: rustup component add llvm-tools" >&2
    exit 2
fi

# Instrumented builds get their own target dir so they never collide
# with regular build artifacts.
export CARGO_TARGET_DIR=target/coverage
export RUSTFLAGS="-C instrument-coverage"
profdir="$CARGO_TARGET_DIR/profraw"
rm -rf "$profdir"
mkdir -p "$profdir"
export LLVM_PROFILE_FILE="$PWD/$profdir/fg-%p-%m.profraw"

cargo test --workspace --tests -q

merged="$CARGO_TARGET_DIR/fg.profdata"
"$profdata" merge -sparse "$profdir"/*.profraw -o "$merged"

# Every test executable contributes symbols to the report.
objects=()
while IFS= read -r bin; do
    objects+=(--object "$bin")
done < <(cargo test --workspace --tests --no-run --message-format=json 2>/dev/null |
    jq -r 'select(.executable != null) | .executable' | sort -u)

line_coverage() { # <crate source dir>
    "$cov" export "${objects[@]}" --instr-profile="$merged" --summary-only \
        --ignore-filename-regex='vendor/|/rustc/|\.cargo/' "$PWD/$1" |
        jq -r '.data[0].totals.lines.percent'
}

status=0
while read -r crate floor; do
    [ -n "$crate" ] || continue
    pct="$(line_coverage "$crate/src")"
    printf 'coverage: %-20s %6.2f%% (floor %s%%)\n' "$crate" "$pct" "$floor"
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "error: $crate line coverage $pct% fell below the ratchet floor $floor%" >&2
        status=1
    fi
done < scripts/coverage-baseline.txt
exit $status
