#!/usr/bin/env bash
# Benchmark ratchet over every committed trajectory.
#
# Runs each quick benchmark trajectory (bench_placement, bench_serve)
# and compares each entry's throughput (`per_sec`) against the
# committed baseline (BENCH_placement.json, BENCH_serve.json). Entries
# are matched by name; baseline-only entries (e.g. a full-mode-only
# trace) are skipped. A fresh run more than TOLERANCE below the
# baseline fails the ratchet — raise a baseline by re-running the full
# benchmark (cargo run -p fg-bench --release --bin <bench>) when the
# hot path gets faster, so throughput can never silently regress.
#
# Environment:
#   BENCH_TOLERANCE   fractional allowed regression (default 0.15)
#   BENCH_ONLY        ratchet a single trajectory (placement | serve)
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null 2>&1 || { echo "error: jq is required" >&2; exit 2; }

tolerance="${BENCH_TOLERANCE:-0.15}"
status=0

ratchet_one() {
    local bin="$1" baseline="$2" fresh="$3"

    cargo run -p fg-bench --release --bin "$bin" -- --quick --out "$fresh"

    if [ ! -f "$baseline" ]; then
        # Bootstrap: no committed trajectory yet. Record the quick run
        # so the next invocation has something to ratchet against.
        cp "$fresh" "$baseline"
        echo "bench: no baseline found; bootstrapped $baseline from this run"
        return 0
    fi

    while IFS=$'\t' read -r name fresh_rate; do
        base_rate="$(jq -r --arg n "$name" \
            '[.entries[] | select(.name == $n) | .per_sec][0] // empty' "$baseline")"
        if [ -z "$base_rate" ]; then
            printf 'bench: %-24s %12.0f/s (no baseline entry, skipped)\n' \
                "$name" "$fresh_rate"
            continue
        fi
        floor="$(awk -v b="$base_rate" -v t="$tolerance" 'BEGIN { printf "%.6f", b * (1 - t) }')"
        printf 'bench: %-24s %12.0f/s (baseline %.0f/s, floor %.0f/s)\n' \
            "$name" "$fresh_rate" "$base_rate" "$floor"
        if awk -v p="$fresh_rate" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
            echo "error: $name throughput $fresh_rate/s regressed past the" \
                "ratchet floor $floor/s (baseline $base_rate/s, tolerance $tolerance)" >&2
            status=1
        fi
    done < <(jq -r '.entries[] | [.name, .per_sec] | @tsv' "$fresh")
}

only="${BENCH_ONLY:-}"
if [ -z "$only" ] || [ "$only" = placement ]; then
    ratchet_one bench_placement BENCH_placement.json target/BENCH_placement.quick.json
fi
if [ -z "$only" ] || [ "$only" = serve ]; then
    ratchet_one bench_serve BENCH_serve.json target/BENCH_serve.quick.json
fi
exit $status
