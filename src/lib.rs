//! # freeride-g — facade crate
//!
//! Re-exports the whole FREERIDE-G reproduction behind one dependency:
//! the simulation substrate, the grid resource models, the chunked data
//! repository, the middleware runtime, the five applications, and the
//! performance prediction framework (the paper's contribution).
//!
//! See the `examples/` directory for end-to-end usage and `DESIGN.md`
//! for the system inventory.

#![warn(missing_docs)]

pub use fg_apps as apps;
pub use fg_chunks as chunks;
pub use fg_cluster as cluster;
pub use fg_middleware as middleware;
pub use fg_predict as predict;
pub use fg_sched as sched;
pub use fg_sim as sim;
pub use fg_trace as trace;
