//! `fg` — command-line front end for the FREERIDE-G reproduction.
//!
//! ```text
//! fg apps                                   list applications
//! fg run    --app em --mb 700 --config 4-8  execute and show the timeline
//! fg profile --app em --mb 700 [--json P]   collect a 1-1 profile
//! fg predict --app em --mb 700 --config 8-16 [--bw MBps]
//!                                           profile at 1-1, predict the
//!                                           target, verify with a real run
//! fg select --app em --mb 700               rank the paper grid
//! ```
//!
//! All sizes are nominal megabytes (the paper's labels); data is
//! generated at 1/100 scale. The simulated testbed is the paper's
//! Pentium/Myrinet cluster.

use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{timeline, ExecutionReport};
use freeride_g::predict::{
    rank_deployments, relative_error, AppClasses, ComputeModel, ExecTimePredictor,
    InterconnectParams, Profile, Target,
};
use std::collections::HashMap;
use std::process::ExitCode;

const SCALE: f64 = 0.01;
const DEFAULT_BW_MBPS: f64 = 40.0;
const APPS: [&str; 7] = ["kmeans", "em", "knn", "vortex", "defect", "apriori", "ann"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "apps" => {
            for app in APPS {
                let c = AppClasses::for_app(app);
                println!("{app:<8} {:?} object, {:?} global reduction", c.obj, c.global);
            }
            ExitCode::SUCCESS
        }
        "run" => cmd_run(&opts),
        "profile" => cmd_profile(&opts),
        "predict" => cmd_predict(&opts),
        "select" => cmd_select(&opts),
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fg apps
  fg run     --app <name> --mb <nominal-MB> --config <n-c> [--bw <MB/s>]
  fg profile --app <name> --mb <nominal-MB> [--json <path>] [--bw <MB/s>]
  fg predict --app <name> --mb <nominal-MB> --config <n-c> [--bw <MB/s>]
  fg select  --app <name> --mb <nominal-MB> [--bw <MB/s>]";

struct Options {
    app: Option<String>,
    mb: f64,
    config: Option<Configuration>,
    bw: f64,
    json: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts =
            Options { app: None, mb: 200.0, config: None, bw: DEFAULT_BW_MBPS * 1e6, json: None };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next().map(String::as_str).ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--app" => opts.app = Some(value()?.to_string()),
                "--mb" => {
                    opts.mb = value()?.parse().map_err(|e| format!("bad --mb: {e}"))?;
                    if opts.mb <= 0.0 {
                        return Err("--mb must be positive".into());
                    }
                }
                "--config" => {
                    let v = value()?.to_string();
                    let (n, c) = v
                        .split_once('-')
                        .ok_or_else(|| format!("bad --config {v:?}, expected n-c"))?;
                    let n: usize = n.parse().map_err(|e| format!("bad --config: {e}"))?;
                    let c: usize = c.parse().map_err(|e| format!("bad --config: {e}"))?;
                    opts.config = Some(Configuration::new(n, c));
                }
                "--bw" => {
                    let mbps: f64 = value()?.parse().map_err(|e| format!("bad --bw: {e}"))?;
                    if mbps <= 0.0 {
                        return Err("--bw must be positive".into());
                    }
                    opts.bw = mbps * 1e6;
                }
                "--json" => opts.json = Some(value()?.to_string()),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(opts)
    }

    fn app(&self) -> Result<&str, String> {
        let app = self.app.as_deref().ok_or("missing --app")?;
        if APPS.contains(&app) {
            Ok(app)
        } else {
            Err(format!("unknown app {app:?}; see `fg apps`"))
        }
    }
}

fn deployment(cfg: Configuration, bw: f64) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repository", 8),
        ComputeSite::pentium_myrinet("cluster", 16),
        Wan::per_stream(bw),
        cfg,
    )
}

/// Generate a dataset and execute on a configuration, via the harness's
/// uniform app driver.
fn execute(app: &str, mb: f64, cfg: Configuration, bw: f64, seed: u64) -> ExecutionReport {
    // The harness crate owns the uniform PaperApp driver, but the CLI
    // lives in the facade crate; drive each app directly.
    use freeride_g::apps::*;
    use freeride_g::middleware::Executor;
    let exec = Executor::new(deployment(cfg, bw));
    let id = format!("cli-{app}-{mb}");
    match app {
        "kmeans" => {
            let ds = kmeans::generate(&id, mb, SCALE, seed, 8);
            exec.run(&kmeans::KMeans::paper(7), &ds).report
        }
        "em" => {
            let ds = em::generate(&id, mb, SCALE, seed, 4);
            exec.run(&em::Em::paper(7), &ds).report
        }
        "knn" => {
            let ds = knn::generate(&id, mb, SCALE, seed);
            exec.run(&knn::Knn::paper(7), &ds).report
        }
        "vortex" => {
            let ds = vortex::generate(&id, mb, SCALE, seed).0;
            exec.run(&vortex::VortexDetect::default(), &ds).report
        }
        "defect" => {
            let ds = defect::generate(&id, mb, SCALE, seed).0;
            let app = defect::DefectDetect::for_dataset(&ds);
            exec.run(&app, &ds).report
        }
        "apriori" => {
            let ds = apriori::generate(&id, mb, SCALE, seed, &[[2, 17, 40], [5, 23, 51]]);
            exec.run(&apriori::Apriori::standard(), &ds).report
        }
        "ann" => {
            let ds = ann::generate(&id, mb, SCALE, seed);
            exec.run(&ann::AnnTrain::paper(7), &ds).report
        }
        other => unreachable!("validated app {other}"),
    }
}

fn dataset_bytes(app: &str, mb: f64, seed: u64) -> u64 {
    use freeride_g::apps::*;
    let id = format!("cli-{app}-{mb}");
    match app {
        "kmeans" => kmeans::generate(&id, mb, SCALE, seed, 8).logical_bytes(),
        "em" => em::generate(&id, mb, SCALE, seed, 4).logical_bytes(),
        "knn" => knn::generate(&id, mb, SCALE, seed).logical_bytes(),
        "vortex" => vortex::generate(&id, mb, SCALE, seed).0.logical_bytes(),
        "defect" => defect::generate(&id, mb, SCALE, seed).0.logical_bytes(),
        "apriori" => {
            apriori::generate(&id, mb, SCALE, seed, &[[2, 17, 40], [5, 23, 51]]).logical_bytes()
        }
        "ann" => ann::generate(&id, mb, SCALE, seed).logical_bytes(),
        other => unreachable!("validated app {other}"),
    }
}

fn cmd_run(opts: &Options) -> ExitCode {
    let (Ok(app), Some(cfg)) = (opts.app(), opts.config) else {
        eprintln!("run needs --app and --config\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let report = execute(app, opts.mb, cfg, opts.bw, 42);
    print!("{}", timeline::render(&report));
    ExitCode::SUCCESS
}

fn cmd_profile(opts: &Options) -> ExitCode {
    let Ok(app) = opts.app() else {
        eprintln!("profile needs --app\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let report = execute(app, opts.mb, Configuration::new(1, 1), opts.bw, 42);
    let profile = Profile::from_report(&report);
    println!(
        "profile {app} 1-1 @ {:.0} MB: t_d={:.2}s t_n={:.2}s t_c={:.2}s \
         (t_ro={:.3}s t_g={:.3}s), rho={} B, {} passes",
        opts.mb,
        profile.t_disk,
        profile.t_network,
        profile.t_compute,
        profile.t_ro,
        profile.t_g,
        profile.max_obj_bytes,
        profile.passes
    );
    if let Some(path) = &opts.json {
        let json = serde_json::to_string_pretty(&profile).expect("serialize profile");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("profile written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_predict(opts: &Options) -> ExitCode {
    let (Ok(app), Some(cfg)) = (opts.app(), opts.config) else {
        eprintln!("predict needs --app and --config\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let profile =
        Profile::from_report(&execute(app, opts.mb, Configuration::new(1, 1), opts.bw, 42));
    let predictor = ExecTimePredictor {
        profile,
        classes: AppClasses::for_app(app),
        interconnect: InterconnectParams::of_site(
            &deployment(Configuration::new(1, 1), opts.bw).compute,
        ),
        model: ComputeModel::GlobalReduction,
    };
    let target = Target {
        data_nodes: cfg.data_nodes,
        compute_nodes: cfg.compute_nodes,
        wan_bw: opts.bw,
        dataset_bytes: dataset_bytes(app, opts.mb, 42),
    };
    let predicted = predictor.predict(&target);
    println!(
        "predicted {}: T_disk={:.2}s T_network={:.2}s T_compute={:.2}s total={:.2}s",
        cfg.label(),
        predicted.t_disk,
        predicted.t_network,
        predicted.t_compute,
        predicted.total()
    );
    let actual = execute(app, opts.mb, cfg, opts.bw, 42);
    println!(
        "actual    {}: total={:.2}s  (error {:.2}%)",
        cfg.label(),
        actual.total().as_secs_f64(),
        relative_error(actual.total().as_secs_f64(), predicted.total()) * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_select(opts: &Options) -> ExitCode {
    let Ok(app) = opts.app() else {
        eprintln!("select needs --app\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let profile =
        Profile::from_report(&execute(app, opts.mb, Configuration::new(1, 1), opts.bw, 42));
    let deployments: Vec<Deployment> =
        Configuration::paper_grid().into_iter().map(|cfg| deployment(cfg, opts.bw)).collect();
    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app(app),
        &deployments,
        dataset_bytes(app, opts.mb, 42),
        &HashMap::new(),
    );
    println!("deployments ranked by predicted cost ({app} @ {:.0} MB):", opts.mb);
    for (i, cand) in ranked.iter().enumerate() {
        println!(
            "  {:>2}. {:<6} {:>10.1}s  (disk {:>7.1}s net {:>7.1}s compute {:>8.1}s)",
            i + 1,
            cand.deployment.config.label(),
            cand.cost(),
            cand.predicted.t_disk,
            cand.predicted.t_network,
            cand.predicted.t_compute
        );
    }
    ExitCode::SUCCESS
}
