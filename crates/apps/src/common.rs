//! Shared sizing and math helpers for the application suite.

/// Bytes per megabyte as the paper uses them (decimal).
pub const MB: f64 = 1_000_000.0;

/// Number of elements a dataset of `nominal_mb` megabytes holds at
/// `bytes_per_element`.
pub fn nominal_elements(nominal_mb: f64, bytes_per_element: usize) -> u64 {
    assert!(nominal_mb > 0.0);
    (nominal_mb * MB / bytes_per_element as f64).round() as u64
}

/// Number of elements actually generated when running at `scale`.
pub fn physical_elements(nominal_mb: f64, scale: f64, bytes_per_element: usize) -> u64 {
    let n = (nominal_elements(nominal_mb, bytes_per_element) as f64 * scale).round() as u64;
    assert!(n > 0, "scale {scale} leaves no elements at {nominal_mb} MB");
    n
}

/// Split `total` elements into chunks of roughly `per_chunk` elements.
/// The chunk count is rounded up to a multiple of `granule` (capped at
/// `total`) and element counts are balanced to within one.
///
/// The granule matters for parallel balance: the middleware statically
/// assigns chunks to compute nodes, so a chunk count divisible by every
/// node count in play (the paper grid tops out at 16) keeps per-node
/// chunk counts exactly equal, as the demand-driven chunk delivery of a
/// production repository would. Datasets at paper scale have hundreds to
/// thousands of chunks, where this rounding is in the noise.
pub fn chunk_sizes(total: u64, per_chunk: u64, granule: usize) -> Vec<u64> {
    assert!(total > 0 && per_chunk > 0 && granule >= 1);
    let by_size = total.div_ceil(per_chunk) as usize;
    let num = by_size.div_ceil(granule).max(1).saturating_mul(granule).min(total as usize).max(1);
    (0..num as u64)
        .map(|i| {
            let lo = i * total / num as u64;
            let hi = (i + 1) * total / num as u64;
            hi - lo
        })
        .collect()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_element_math() {
        assert_eq!(nominal_elements(1.0, 4), 250_000);
        assert_eq!(nominal_elements(1400.0, 32), 43_750_000);
    }

    #[test]
    fn physical_elements_apply_scale() {
        assert_eq!(physical_elements(1.0, 0.01, 4), 2_500);
    }

    #[test]
    #[should_panic(expected = "leaves no elements")]
    fn vanishing_scale_rejected() {
        physical_elements(0.001, 1e-9, 32);
    }

    #[test]
    fn chunk_sizes_cover_total_and_balance() {
        let sizes = chunk_sizes(100, 30, 1);
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(mx - mn <= 1);
    }

    #[test]
    fn chunk_count_is_a_granule_multiple() {
        let sizes = chunk_sizes(10_000, 300, 16);
        // 34 raw chunks round up to 48.
        assert_eq!(sizes.len(), 48);
        assert_eq!(sizes.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn granule_respected_when_size_suggests_fewer() {
        let sizes = chunk_sizes(10, 100, 4);
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<u64>(), 10);
    }

    #[test]
    fn chunk_count_never_exceeds_elements() {
        let sizes = chunk_sizes(3, 100, 8);
        assert_eq!(sizes.len(), 3);
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn dist_sq_basic() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_sq(&[], &[]), 0.0);
    }
}
