//! Artificial neural network training — §2.2 of the paper lists
//! "artificial neural networks" among the popular algorithms whose
//! processing structure is a generalized reduction; this module supplies
//! that sixth application.
//!
//! A one-hidden-layer MLP classifier trained by full-batch gradient
//! descent: each pass, every node accumulates the loss gradient over its
//! data share into the reduction object; the master sums the per-node
//! gradients, takes a step, and broadcasts the new weights. One pass per
//! epoch, caching on.
//!
//! Classes: the gradient accumulator is parameter-sized — **constant**
//! object; merging `c` of them is **linear-constant**.

use crate::common::{chunk_sizes, physical_elements};
use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Input dimensionality.
pub const DIM: usize = 4;
/// Output classes.
pub const CLASSES: usize = 3;
/// Hidden units.
pub const HIDDEN: usize = 8;
/// Bytes per labeled sample: DIM features + label, all f32.
pub const BYTES_PER_POINT: usize = (DIM + 1) * 4;
/// Logical chunk size.
const CHUNK_BYTES: u64 = 2_000_000;

/// Number of weights in the network (both layers, with biases).
pub const NUM_WEIGHTS: usize = (DIM + 1) * HIDDEN + (HIDDEN + 1) * CLASSES;

/// Generate a labeled dataset: `CLASSES` Gaussian blobs in
/// `[0, 1]^DIM` (inputs pre-scaled for training).
pub fn generate(id: &str, nominal_mb: f64, scale: f64, seed: u64) -> Dataset {
    let total = physical_elements(nominal_mb, scale, BYTES_PER_POINT);
    let mut rng = stream_rng(seed, "ann-data");
    let centers: Vec<[f32; DIM]> =
        (0..CLASSES).map(|_| std::array::from_fn(|_| rng.gen_range(0.15..0.85))).collect();
    let per_chunk = (CHUNK_BYTES as f64 * scale / BYTES_PER_POINT as f64).max(1.0) as u64;
    let mut builder = DatasetBuilder::new(id, "ann-points", scale);
    for count in chunk_sizes(total, per_chunk, 16) {
        let mut vals = Vec::with_capacity(count as usize * (DIM + 1));
        for _ in 0..count {
            let label = rng.gen_range(0..CLASSES);
            for d in 0..DIM {
                let jitter: f32 = rng.gen_range(-0.05f32..0.05) + rng.gen_range(-0.05f32..0.05);
                vals.push(centers[label][d] + jitter);
            }
            vals.push(label as f32);
        }
        builder.push_chunk(codec::encode_f32s(&vals), count, None);
    }
    builder.build()
}

/// Flat network parameters: `w1 (DIM+1 x HIDDEN)` then
/// `w2 (HIDDEN+1 x CLASSES)`, biases in the `+1` rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Weights(pub Vec<f32>);

impl Weights {
    fn w1(&self, i: usize, h: usize) -> f32 {
        self.0[i * HIDDEN + h]
    }
    fn w2(&self, h: usize, o: usize) -> f32 {
        self.0[(DIM + 1) * HIDDEN + h * CLASSES + o]
    }
}

/// Forward pass; returns hidden activations and class probabilities.
fn forward(w: &Weights, x: &[f32]) -> ([f64; HIDDEN], [f64; CLASSES]) {
    let mut hidden = [0.0f64; HIDDEN];
    for h in 0..HIDDEN {
        let mut a = w.w1(DIM, h) as f64; // bias
        for (i, &xi) in x.iter().enumerate() {
            a += xi as f64 * w.w1(i, h) as f64;
        }
        hidden[h] = a.tanh();
    }
    let mut logits = [0.0f64; CLASSES];
    for o in 0..CLASSES {
        let mut a = w.w2(HIDDEN, o) as f64; // bias
        for (h, &hv) in hidden.iter().enumerate() {
            a += hv * w.w2(h, o) as f64;
        }
        logits[o] = a;
    }
    // Softmax.
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut denom = 0.0;
    for l in &mut logits {
        *l = (*l - max).exp();
        denom += *l;
    }
    for l in &mut logits {
        *l /= denom;
    }
    (hidden, logits)
}

/// Per-pass gradient accumulator (plus loss and sample count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradObj {
    grad: Vec<f64>,
    loss: f64,
    samples: u64,
}

impl ReductionObject for GradObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        for (a, b) in self.grad.iter_mut().zip(other.grad.iter()) {
            *a += b;
        }
        self.loss += other.loss;
        self.samples += other.samples;
        meter.fixed_flops(self.grad.len() as u64 + 2);
    }

    fn size(&self) -> ObjSize {
        ObjSize { fixed: (self.grad.len() * 8 + 16) as u64, data: 0 }
    }
}

/// Broadcast state: current weights, epoch counter, last loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnState {
    /// Current network parameters.
    pub weights: Weights,
    /// Completed epochs.
    pub epoch: usize,
    /// Mean cross-entropy loss observed in the last epoch.
    pub loss: f64,
}

/// The ANN training application.
pub struct AnnTrain {
    /// Training epochs (passes over the data).
    pub epochs: usize,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl AnnTrain {
    /// The experiment instance: 8 epochs, lr 0.5 (full-batch).
    pub fn paper(seed: u64) -> AnnTrain {
        AnnTrain { epochs: 8, learning_rate: 0.5, seed }
    }
}

impl ReductionApp for AnnTrain {
    type Obj = GradObj;
    type State = AnnState;

    fn name(&self) -> &str {
        "ann"
    }

    fn initial_state(&self) -> AnnState {
        let mut rng = stream_rng(self.seed, "ann-init");
        AnnState {
            weights: Weights((0..NUM_WEIGHTS).map(|_| rng.gen_range(-0.5f32..0.5)).collect()),
            epoch: 0,
            loss: f64::INFINITY,
        }
    }

    fn new_object(&self, _: &AnnState) -> GradObj {
        GradObj { grad: vec![0.0; NUM_WEIGHTS], loss: 0.0, samples: 0 }
    }

    fn local_reduce(
        &self,
        state: &AnnState,
        chunk: &Chunk,
        obj: &mut GradObj,
        meter: &mut WorkMeter,
    ) {
        let vals = codec::decode_f32s(&chunk.payload);
        let samples = vals.chunks_exact(DIM + 1);
        let n = samples.len() as u64;
        let w = &state.weights;
        for s in samples {
            let (x, label) = s.split_at(DIM);
            let label = label[0] as usize;
            let (hidden, probs) = forward(w, x);
            obj.loss -= probs[label].max(1e-12).ln();
            obj.samples += 1;
            // Backprop: dL/dlogit_o = p_o - 1[o == label].
            let mut dlogit = [0.0f64; CLASSES];
            for o in 0..CLASSES {
                dlogit[o] = probs[o] - if o == label { 1.0 } else { 0.0 };
            }
            // Layer 2 gradients + hidden deltas.
            let mut dhidden = [0.0f64; HIDDEN];
            for o in 0..CLASSES {
                for (h, &hv) in hidden.iter().enumerate() {
                    obj.grad[(DIM + 1) * HIDDEN + h * CLASSES + o] += dlogit[o] * hv;
                    dhidden[h] += dlogit[o] * w.w2(h, o) as f64;
                }
                obj.grad[(DIM + 1) * HIDDEN + HIDDEN * CLASSES + o] += dlogit[o];
                // bias
            }
            // Layer 1 gradients (through tanh').
            for h in 0..HIDDEN {
                let dh = dhidden[h] * (1.0 - hidden[h] * hidden[h]);
                for (i, &xi) in x.iter().enumerate() {
                    obj.grad[i * HIDDEN + h] += dh * xi as f64;
                }
                obj.grad[DIM * HIDDEN + h] += dh; // bias
            }
        }
        // Forward + backward per sample ~ 6 flops per weight.
        meter.data_flops(n * NUM_WEIGHTS as u64 * 6);
        meter.data_mem(n * (DIM as u64 + NUM_WEIGHTS as u64 / 4));
        meter.data_cmp(n * CLASSES as u64);
    }

    fn global_finalize(
        &self,
        state: &AnnState,
        merged: GradObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<AnnState> {
        let n = merged.samples.max(1) as f64;
        let mut weights = state.weights.clone();
        for (w, g) in weights.0.iter_mut().zip(merged.grad.iter()) {
            *w -= (self.learning_rate * g / n) as f32;
        }
        meter.fixed_flops(NUM_WEIGHTS as u64 * 2);
        let next = AnnState { weights, epoch: state.epoch + 1, loss: merged.loss / n };
        if next.epoch >= self.epochs {
            PassOutcome::Finished(next)
        } else {
            PassOutcome::NextPass(next)
        }
    }

    fn state_size(&self, _: &AnnState) -> ObjSize {
        ObjSize { fixed: (NUM_WEIGHTS * 4 + 16) as u64, data: 0 }
    }

    fn caches(&self) -> bool {
        true
    }
}

/// Classify one input with the given state (for accuracy checks).
pub fn classify(state: &AnnState, x: &[f32]) -> usize {
    let (_, probs) = forward(&state.weights, x);
    probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty class list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(40e6),
            Configuration::new(n, c),
        )
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = generate("ann-loss", 2.0, 0.01, 21);
        let short = AnnTrain { epochs: 2, learning_rate: 0.5, seed: 9 };
        let long = AnnTrain { epochs: 10, learning_rate: 0.5, seed: 9 };
        let a = Executor::new(deployment(1, 2)).run(&short, &ds);
        let b = Executor::new(deployment(1, 2)).run(&long, &ds);
        assert!(
            b.final_state.loss < a.final_state.loss,
            "training longer should reduce loss: {} vs {}",
            b.final_state.loss,
            a.final_state.loss
        );
    }

    #[test]
    fn learns_the_planted_blobs() {
        let seed = 33;
        let ds = generate("ann-acc", 4.0, 0.02, seed);
        let app = AnnTrain { epochs: 40, learning_rate: 1.0, seed: 5 };
        let run = Executor::new(deployment(2, 4)).run(&app, &ds);
        // Evaluate on the planted centers themselves.
        let mut rng = stream_rng(seed, "ann-data");
        let centers: Vec<[f32; DIM]> =
            (0..CLASSES).map(|_| std::array::from_fn(|_| rng.gen_range(0.15..0.85))).collect();
        let correct = centers
            .iter()
            .enumerate()
            .filter(|(label, x)| classify(&run.final_state, *x) == *label)
            .count();
        assert_eq!(correct, CLASSES, "all class centers should classify correctly");
    }

    #[test]
    fn result_is_configuration_independent() {
        let ds = generate("ann-cfg", 2.0, 0.01, 22);
        let app = AnnTrain { epochs: 4, learning_rate: 0.5, seed: 6 };
        let a = Executor::new(deployment(1, 1)).run(&app, &ds);
        let b = Executor::new(deployment(8, 16)).run(&app, &ds);
        for (wa, wb) in a.final_state.weights.0.iter().zip(b.final_state.weights.0.iter()) {
            assert!((wa - wb).abs() < 1e-4, "weights diverged across configurations");
        }
        assert!((a.final_state.loss - b.final_state.loss).abs() < 1e-6);
    }

    #[test]
    fn object_is_constant_class() {
        let ds = generate("ann-const", 2.0, 0.01, 23);
        let app = AnnTrain::paper(1);
        let state = app.initial_state();
        let mut obj = app.new_object(&state);
        let mut meter = WorkMeter::new();
        let s0 = obj.size();
        app.local_reduce(&state, &ds.chunks[0], &mut obj, &mut meter);
        assert_eq!(obj.size(), s0, "gradient object must not grow with data");
        assert_eq!(obj.size().data, 0);
    }

    #[test]
    fn one_pass_per_epoch_with_cache() {
        let ds = generate("ann-pass", 2.0, 0.01, 24);
        let app = AnnTrain { epochs: 5, learning_rate: 0.5, seed: 7 };
        let run = Executor::new(deployment(2, 2)).run(&app, &ds);
        assert_eq!(run.report.num_passes(), 5);
        assert!(run.report.passes[1].retrieval.is_zero(), "epochs 2+ hit the cache");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Analytic backprop vs numeric differentiation on a few weights.
        let app = AnnTrain { epochs: 1, learning_rate: 0.1, seed: 8 };
        let state = app.initial_state();
        let x = [0.3f32, 0.7, 0.2, 0.9];
        let label = 1usize;
        let loss_of = |w: &Weights| {
            let (_, probs) = forward(w, &x);
            -probs[label].max(1e-12).ln()
        };
        // Analytic gradient via local_reduce on a one-sample chunk.
        let mut vals = x.to_vec();
        vals.push(label as f32);
        let chunk = fg_chunks::Chunk {
            id: 0,
            payload: codec::encode_f32s(&vals),
            elements: 1,
            logical_bytes: 20,
            span: None,
        };
        let mut obj = app.new_object(&state);
        let mut meter = WorkMeter::new();
        app.local_reduce(&state, &chunk, &mut obj, &mut meter);
        // Numeric gradient on a sample of weight indices.
        let eps = 1e-3f32;
        for idx in [0usize, 7, HIDDEN * DIM, NUM_WEIGHTS - 1, NUM_WEIGHTS / 2] {
            let mut wp = state.weights.clone();
            wp.0[idx] += eps;
            let mut wm = state.weights.clone();
            wm.0[idx] -= eps;
            let numeric = (loss_of(&wp) - loss_of(&wm)) / (2.0 * eps as f64);
            assert!(
                (obj.grad[idx] - numeric).abs() < 1e-3,
                "gradient mismatch at weight {idx}: analytic {} vs numeric {}",
                obj.grad[idx],
                numeric
            );
        }
    }
}
