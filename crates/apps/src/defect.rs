//! Molecular defect detection and categorization (§4.5 of the paper).
//!
//! A two-phase feature-mining pipeline over a silicon lattice (modeled as
//! a simple-cubic lattice with positional noise, which preserves the
//! algorithmic structure at lower geometric complexity than the diamond
//! lattice):
//!
//! 1. **Detection pass** — atoms with abnormal neighborhoods (wrong
//!    coordination count, large displacement, or foreign species) are
//!    marked and clustered into defect structures on the chunks local to
//!    each node; defects spanning slab boundaries are joined in the
//!    global combination, and the detected defects are re-broadcast.
//! 2. **Categorization pass** — each node computes candidate classes for
//!    the defects whose centroids fall in its chunks and shape-matches
//!    them against the catalog; non-matching defects receive temporary
//!    class assignments added to local catalogs, which the global
//!    combination merges into a new catalog copy.
//!
//! Classes: defect lists and local catalogs are dataset-proportional —
//! **linear** reduction objects with a **constant-linear** global
//! reduction, matching the paper's classification.

use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder, Span};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Lattice extent in x and y (sites); z grows with dataset size. Kept
/// small so even modest datasets span many z-layers and therefore many
/// chunks (parallel balance needs chunk counts well above the node
/// count).
pub const LATTICE_XY: usize = 16;
/// Bytes per atom: x, y, z, species — four f32.
pub const BYTES_PER_ATOM: usize = 16;
/// Owned z-layers per chunk.
const LAYERS_PER_CHUNK: usize = 4;
/// Positional noise amplitude (uniform, per axis).
const NOISE: f32 = 0.05;
/// Two atoms are lattice neighbors within this distance.
const NEIGHBOR_CUTOFF: f32 = 1.2;
/// Abnormal atoms within this distance belong to one defect.
const CLUSTER_CUTOFF: f32 = 1.7;
/// An atom further than this from its nearest site is displaced.
const DISPLACEMENT_THRESHOLD: f32 = 0.25;
/// Shape-match acceptance threshold.
const MATCH_THRESHOLD: f32 = 0.5;

/// Kinds of planted defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectKind {
    /// A missing atom; detected as its six under-coordinated neighbors.
    Vacancy,
    /// An extra atom at a cell center; detected as nine over-coordinated
    /// atoms (the interstitial plus its eight corner neighbors).
    Interstitial,
    /// A foreign species on a regular site; detected as one atom.
    Substitution,
}

/// Ground truth for one planted defect.
#[derive(Debug, Clone, Copy)]
pub struct PlantedDefect {
    /// Defect type.
    pub kind: DefectKind,
    /// Lattice site of the defect center.
    pub site: [i32; 3],
}

/// Generate a silicon lattice with planted defects. Returns the dataset
/// and the ground truth.
pub fn generate(id: &str, nominal_mb: f64, scale: f64, seed: u64) -> (Dataset, Vec<PlantedDefect>) {
    let target_atoms = crate::common::physical_elements(nominal_mb, scale, BYTES_PER_ATOM) as usize;
    // Round the layer count so the chunk count is a multiple of 16 (see
    // `common::chunk_sizes` for the balance rationale).
    let slab = LAYERS_PER_CHUNK * 16;
    let layers = (target_atoms / (LATTICE_XY * LATTICE_XY)).max(slab).div_ceil(slab) * slab;
    let mut rng = stream_rng(seed, "defect-data");

    // Plant defects on a coarse grid so no two interact (>= 6 sites apart,
    // >= 3 from every border).
    let count = (target_atoms / 5_000).max(3);
    let mut planted = Vec::with_capacity(count);
    let mut used = std::collections::BTreeSet::new();
    let kinds = [DefectKind::Vacancy, DefectKind::Interstitial, DefectKind::Substitution];
    let mut attempts = 0;
    while planted.len() < count && attempts < count * 100 {
        attempts += 1;
        let sx = rng.gen_range(3..(LATTICE_XY as i32 - 3));
        let sy = rng.gen_range(3..(LATTICE_XY as i32 - 3));
        let sz = rng.gen_range(3..(layers as i32 - 3));
        let cell = (sx / 6, sy / 6, sz / 6);
        if used.contains(&cell) {
            continue;
        }
        used.insert(cell);
        planted
            .push(PlantedDefect { kind: kinds[planted.len() % kinds.len()], site: [sx, sy, sz] });
    }

    let vacancies: std::collections::BTreeSet<[i32; 3]> =
        planted.iter().filter(|p| p.kind == DefectKind::Vacancy).map(|p| p.site).collect();
    let substitutions: std::collections::BTreeSet<[i32; 3]> =
        planted.iter().filter(|p| p.kind == DefectKind::Substitution).map(|p| p.site).collect();

    // Emit atoms layer by layer, then slice into halo-overlapped slabs.
    let mut layer_atoms: Vec<Vec<f32>> = vec![Vec::new(); layers];
    for z in 0..layers as i32 {
        let atoms = &mut layer_atoms[z as usize];
        for x in 0..LATTICE_XY as i32 {
            for y in 0..LATTICE_XY as i32 {
                if vacancies.contains(&[x, y, z]) {
                    continue;
                }
                let species = if substitutions.contains(&[x, y, z]) { 1.0 } else { 0.0 };
                atoms.extend_from_slice(&[
                    x as f32 + rng.gen_range(-NOISE..NOISE),
                    y as f32 + rng.gen_range(-NOISE..NOISE),
                    z as f32 + rng.gen_range(-NOISE..NOISE),
                    species,
                ]);
            }
        }
    }
    for p in &planted {
        if p.kind == DefectKind::Interstitial {
            let [x, y, z] = p.site;
            layer_atoms[z as usize].extend_from_slice(&[
                x as f32 + 0.5,
                y as f32 + 0.5,
                z as f32 + 0.5,
                0.0,
            ]);
        }
    }

    let mut builder = DatasetBuilder::new(id, "si-lattice", scale);
    let mut z0 = 0usize;
    while z0 < layers {
        let z1 = (z0 + LAYERS_PER_CHUNK).min(layers);
        let halo_before = usize::from(z0 > 0);
        let halo_after = usize::from(z1 < layers);
        let mut payload = Vec::new();
        let mut owned = 0u64;
        for z in (z0 - halo_before)..(z1 + halo_after) {
            payload.extend_from_slice(&layer_atoms[z]);
            if z >= z0 && z < z1 {
                owned += (layer_atoms[z].len() / 4) as u64;
            }
        }
        builder.push_chunk(
            codec::encode_f32s(&payload),
            owned,
            Some(Span {
                begin: z0 as u64,
                end: z1 as u64,
                halo_before: halo_before as u64,
                halo_after: halo_after as u64,
            }),
        );
        z0 = z1;
    }
    (builder.build(), planted)
}

/// Shape signature: mean and spread of atom distances from the centroid,
/// atom count, and foreign-species fraction. Robust to positional noise,
/// separable across the planted defect types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    /// Mean distance from centroid.
    pub mean_r: f32,
    /// Standard deviation of distances.
    pub std_r: f32,
    /// Atom count.
    pub atoms: f32,
    /// Fraction of foreign-species atoms.
    pub foreign: f32,
}

impl Signature {
    /// Compute from atom positions and species.
    pub fn from_atoms(atoms: &[[f32; 4]]) -> Signature {
        let n = atoms.len() as f32;
        let mut c = [0.0f32; 3];
        let mut foreign = 0.0;
        for a in atoms {
            for d in 0..3 {
                c[d] += a[d];
            }
            if a[3] != 0.0 {
                foreign += 1.0;
            }
        }
        for v in &mut c {
            *v /= n;
        }
        let rs: Vec<f32> = atoms
            .iter()
            .map(|a| ((a[0] - c[0]).powi(2) + (a[1] - c[1]).powi(2) + (a[2] - c[2]).powi(2)).sqrt())
            .collect();
        let mean = rs.iter().sum::<f32>() / n;
        let var = rs.iter().map(|r| (r - mean).powi(2)).sum::<f32>() / n;
        Signature { mean_r: mean, std_r: var.sqrt(), atoms: n, foreign: foreign / n }
    }

    /// Shape distance used for catalog matching.
    pub fn distance(&self, other: &Signature) -> f32 {
        (self.mean_r - other.mean_r).abs()
            + (self.std_r - other.std_r).abs()
            + (self.atoms - other.atoms).abs() / self.atoms.max(other.atoms)
            + (self.foreign - other.foreign).abs()
    }

    /// Canonical templates for the planted defect types (ideal geometry):
    /// the seeded defect catalog.
    pub fn canonical_catalog() -> Vec<Signature> {
        let vacancy: Vec<[f32; 4]> = vec![
            [1.0, 0.0, 0.0, 0.0],
            [-1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, -1.0, 0.0],
        ];
        let mut interstitial: Vec<[f32; 4]> = vec![[0.5, 0.5, 0.5, 0.0]];
        for dx in [0.0f32, 1.0] {
            for dy in [0.0f32, 1.0] {
                for dz in [0.0f32, 1.0] {
                    interstitial.push([dx, dy, dz, 0.0]);
                }
            }
        }
        let substitution: Vec<[f32; 4]> = vec![[0.0, 0.0, 0.0, 1.0]];
        vec![
            Signature::from_atoms(&vacancy),
            Signature::from_atoms(&interstitial),
            Signature::from_atoms(&substitution),
        ]
    }
}

/// A defect fragment detected within one chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fragment {
    /// Atom records (x, y, z, species).
    pub atoms: Vec<[f32; 4]>,
    /// First owned z-layer of the source chunk.
    pub chunk_first: u64,
    /// Last owned z-layer of the source chunk.
    pub chunk_last: u64,
    /// Occupied (x*L + y) cells on `chunk_first`, sorted.
    pub cells_first: Vec<u16>,
    /// Occupied cells on `chunk_last`, sorted.
    pub cells_last: Vec<u16>,
}

/// A joined defect with its shape signature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Defect {
    /// Centroid position.
    pub centroid: [f32; 3],
    /// Atom count.
    pub atoms: u64,
    /// Shape signature.
    pub signature: Signature,
}

/// Reduction object for the detection pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectObj {
    /// Fragments found so far.
    pub fragments: Vec<Fragment>,
}

/// Class assignment of one defect during categorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Match {
    /// Matched an existing catalog class.
    Catalog(u32),
    /// Novel shape: index into the object's `new_templates`.
    Novel(u32),
}

/// Reduction object for the categorization pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CategorizeObj {
    /// (defect index, match) pairs.
    pub assignments: Vec<(u32, Match)>,
    /// Temporary class templates created by this node.
    pub new_templates: Vec<Signature>,
}

/// The reduction object across both passes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DefectObj {
    /// Detection-pass accumulator.
    Detect(DetectObj),
    /// Categorization-pass accumulator.
    Categorize(CategorizeObj),
}

impl ReductionObject for DefectObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        match (self, other) {
            (DefectObj::Detect(a), DefectObj::Detect(b)) => {
                meter.data_mem(b.fragments.iter().map(|f| f.atoms.len() as u64 + 4).sum());
                a.fragments.extend_from_slice(&b.fragments);
            }
            (DefectObj::Categorize(a), DefectObj::Categorize(b)) => {
                let offset = a.new_templates.len() as u32;
                for (d, m) in &b.assignments {
                    let m = match m {
                        Match::Catalog(c) => Match::Catalog(*c),
                        Match::Novel(i) => Match::Novel(i + offset),
                    };
                    a.assignments.push((*d, m));
                }
                a.new_templates.extend_from_slice(&b.new_templates);
                meter.data_mem(b.assignments.len() as u64 + b.new_templates.len() as u64 * 4);
            }
            _ => panic!("cannot merge reduction objects from different passes"),
        }
    }

    fn size(&self) -> ObjSize {
        match self {
            DefectObj::Detect(o) => ObjSize {
                fixed: 16,
                data: o
                    .fragments
                    .iter()
                    .map(|f| {
                        16 * f.atoms.len() as u64
                            + 2 * (f.cells_first.len() + f.cells_last.len()) as u64
                            + 24
                    })
                    .sum(),
            },
            DefectObj::Categorize(o) => ObjSize {
                fixed: 16,
                data: o.assignments.len() as u64 * 8 + o.new_templates.len() as u64 * 16,
            },
        }
    }
}

/// The broadcast state across the two passes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DefectState {
    /// Pass 0: detect.
    Detect,
    /// Pass 1: categorize the detected defects against the catalog.
    Categorize {
        /// Defects from the detection pass.
        defects: Vec<Defect>,
        /// Current catalog.
        catalog: Vec<Signature>,
    },
    /// Final result.
    Done {
        /// Detected defects.
        defects: Vec<Defect>,
        /// Class of each defect (index into `catalog`).
        classes: Vec<u32>,
        /// Final catalog (seeded templates plus novel classes).
        catalog: Vec<Signature>,
    },
}

/// The molecular defect detection application.
pub struct DefectDetect {
    /// Total z-layers of the lattice (needed for boundary coordination
    /// counts); read from the generated dataset.
    pub total_layers: u64,
}

impl DefectDetect {
    /// Build for a dataset produced by [`generate`].
    pub fn for_dataset(dataset: &Dataset) -> DefectDetect {
        let total_layers = dataset
            .chunks
            .iter()
            .map(|c| c.span.expect("lattice chunks carry spans").end)
            .max()
            .unwrap_or(0);
        DefectDetect { total_layers }
    }

    /// Detect defect fragments within one chunk.
    pub fn detect_in_chunk(&self, chunk: &Chunk, meter: &mut WorkMeter) -> Vec<Fragment> {
        let span = chunk.span.expect("lattice chunks carry spans");
        let vals = codec::decode_f32s(&chunk.payload);
        let atoms: Vec<[f32; 4]> = vals.chunks_exact(4).map(|a| [a[0], a[1], a[2], a[3]]).collect();
        let l = LATTICE_XY as i32;
        let z_lo = span.begin as i64 - span.halo_before as i64;
        let z_hi = span.end as i64 + span.halo_after as i64;
        let stored_layers = (z_hi - z_lo) as usize;

        // Dense site-grid over the stored slab for neighbor queries.
        let cell_of = |a: &[f32; 4]| -> Option<usize> {
            let ix = a[0].round() as i32;
            let iy = a[1].round() as i32;
            let iz = a[2].round() as i64;
            if ix < 0 || ix >= l || iy < 0 || iy >= l || iz < z_lo || iz >= z_hi {
                return None;
            }
            Some(((iz - z_lo) as usize * LATTICE_XY + ix as usize) * LATTICE_XY + iy as usize)
        };
        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); stored_layers * LATTICE_XY * LATTICE_XY];
        for (i, a) in atoms.iter().enumerate() {
            if let Some(c) = cell_of(a) {
                grid[c].push(i as u32);
            }
        }

        // Mark abnormal owned atoms.
        let mut abnormal: Vec<u32> = Vec::new();
        let mut query_ops = 0u64;
        for (i, a) in atoms.iter().enumerate() {
            let iz_site = a[2].round() as i64;
            if iz_site < span.begin as i64 || iz_site >= span.end as i64 {
                continue; // halo atom: owned by a neighboring chunk
            }
            let ix = a[0].round() as i32;
            let iy = a[1].round() as i32;
            let displacement = ((a[0] - ix as f32).powi(2)
                + (a[1] - iy as f32).powi(2)
                + (a[2] - iz_site as f32).powi(2))
            .sqrt();
            // Coordination count within the cutoff.
            let mut neighbors = 0u32;
            for dz in -1i64..=1 {
                for dx in -1i32..=1 {
                    for dy in -1i32..=1 {
                        let (nx, ny, nz) = (ix + dx, iy + dy, iz_site + dz);
                        if nx < 0 || nx >= l || ny < 0 || ny >= l || nz < z_lo || nz >= z_hi {
                            continue;
                        }
                        let cell = ((nz - z_lo) as usize * LATTICE_XY + nx as usize) * LATTICE_XY
                            + ny as usize;
                        for &j in &grid[cell] {
                            if j as usize == i {
                                continue;
                            }
                            let b = &atoms[j as usize];
                            let d2 = (a[0] - b[0]).powi(2)
                                + (a[1] - b[1]).powi(2)
                                + (a[2] - b[2]).powi(2);
                            query_ops += 1;
                            if d2 < NEIGHBOR_CUTOFF * NEIGHBOR_CUTOFF {
                                neighbors += 1;
                            }
                        }
                    }
                }
            }
            // Expected coordination from in-bounds neighbor sites.
            let mut expected = 0u32;
            for (dx, dy, dz) in
                [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
            {
                let (nx, ny, nz) = (ix + dx, iy + dy, iz_site + dz);
                if nx >= 0
                    && nx < l
                    && ny >= 0
                    && ny < l
                    && nz >= 0
                    && nz < self.total_layers as i64
                {
                    expected += 1;
                }
            }
            if neighbors != expected || displacement > DISPLACEMENT_THRESHOLD || a[3] != 0.0 {
                abnormal.push(i as u32);
            }
        }
        meter.data_flops(query_ops * 8 + atoms.len() as u64 * 6);
        meter.data_mem(atoms.len() as u64 * 30);
        meter.data_cmp(query_ops + atoms.len() as u64 * 8);

        // Cluster abnormal atoms (pairwise union-find: defects are tiny).
        let m = abnormal.len();
        let mut parent: Vec<u32> = (0..m as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for i in 0..m {
            for j in (i + 1)..m {
                let a = &atoms[abnormal[i] as usize];
                let b = &atoms[abnormal[j] as usize];
                let d2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
                if d2 < CLUSTER_CUTOFF * CLUSTER_CUTOFF {
                    let (ra, rb) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                    parent[ra as usize] = rb;
                }
            }
        }
        meter.data_cmp((m * m) as u64);

        // Build fragments with slab-boundary fingerprints.
        let mut by_root = std::collections::BTreeMap::<u32, Fragment>::new();
        for (i, &ai) in abnormal.iter().enumerate() {
            let root = find(&mut parent, i as u32);
            let a = atoms[ai as usize];
            let frag = by_root.entry(root).or_insert_with(|| Fragment {
                atoms: Vec::new(),
                chunk_first: span.begin,
                chunk_last: span.end - 1,
                cells_first: Vec::new(),
                cells_last: Vec::new(),
            });
            let iz = a[2].round() as u64;
            let cell = (a[0].round() as u16) * LATTICE_XY as u16 + a[1].round() as u16;
            if iz == span.begin {
                frag.cells_first.push(cell);
            }
            if iz == span.end - 1 {
                frag.cells_last.push(cell);
            }
            frag.atoms.push(a);
        }
        let mut frags: Vec<Fragment> = by_root.into_values().collect();
        for f in &mut frags {
            f.cells_first.sort_unstable();
            f.cells_last.sort_unstable();
        }
        frags
    }

    /// Join fragments across slab boundaries and compute signatures.
    pub fn combine(&self, fragments: Vec<Fragment>, meter: &mut WorkMeter) -> Vec<Defect> {
        let n = fragments.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut by_last = std::collections::BTreeMap::<u64, Vec<usize>>::new();
        let mut by_first = std::collections::BTreeMap::<u64, Vec<usize>>::new();
        for (i, f) in fragments.iter().enumerate() {
            if !f.cells_last.is_empty() {
                by_last.entry(f.chunk_last).or_default().push(i);
            }
            if !f.cells_first.is_empty() && f.chunk_first > 0 {
                by_first.entry(f.chunk_first - 1).or_default().push(i);
            }
        }
        let mut join_ops = 0u64;
        for (layer, uppers) in &by_last {
            let Some(lowers) = by_first.get(layer) else { continue };
            for &a in uppers {
                for &b in lowers {
                    join_ops += 1;
                    if cells_adjacent(&fragments[a].cells_last, &fragments[b].cells_first) {
                        let (ra, rb) = (find(&mut parent, a as u32), find(&mut parent, b as u32));
                        parent[ra as usize] = rb;
                    }
                }
            }
        }
        let mut grouped = std::collections::BTreeMap::<u32, Vec<[f32; 4]>>::new();
        for (i, f) in fragments.iter().enumerate() {
            let root = find(&mut parent, i as u32);
            grouped.entry(root).or_default().extend_from_slice(&f.atoms);
        }
        meter.data_cmp(join_ops * 8 + n as u64);
        // Exact shape verification of every joined defect at the master
        // (atom-level alignment against the lattice): dataset-proportional
        // work — the constant-linear global-reduction class.
        let total_atoms: u64 = grouped.values().map(|a| a.len() as u64).sum();
        meter.data_flops(total_atoms * 300);
        meter.data_mem(total_atoms * 60);
        let defects: Vec<Defect> = grouped
            .into_values()
            .map(|atoms| {
                let sig = Signature::from_atoms(&atoms);
                let mut c = [0.0f32; 3];
                for a in &atoms {
                    for d in 0..3 {
                        c[d] += a[d];
                    }
                }
                for v in &mut c {
                    *v /= atoms.len() as f32;
                }
                Defect { centroid: c, atoms: atoms.len() as u64, signature: sig }
            })
            .collect();
        meter.data_flops(defects.iter().map(|d| d.atoms * 12).sum());
        defects
    }
}

/// Are any two cells (one from each sorted list) in the same or a
/// face-adjacent (x, y) position? Used for joining fragments across a
/// one-layer z gap.
fn cells_adjacent(a: &[u16], b: &[u16]) -> bool {
    let l = LATTICE_XY as i32;
    for &ca in a {
        let (ax, ay) = ((ca as i32) / l, (ca as i32) % l);
        for &cb in b {
            let (bx, by) = ((cb as i32) / l, (cb as i32) % l);
            let (dx, dy) = ((ax - bx).abs(), (ay - by).abs());
            if dx <= 1 && dy <= 1 {
                return true;
            }
        }
    }
    false
}

impl ReductionApp for DefectDetect {
    type Obj = DefectObj;
    type State = DefectState;

    fn name(&self) -> &str {
        "defect"
    }

    fn initial_state(&self) -> DefectState {
        DefectState::Detect
    }

    fn new_object(&self, state: &DefectState) -> DefectObj {
        match state {
            DefectState::Detect => DefectObj::Detect(DetectObj::default()),
            _ => DefectObj::Categorize(CategorizeObj::default()),
        }
    }

    fn local_reduce(
        &self,
        state: &DefectState,
        chunk: &Chunk,
        obj: &mut DefectObj,
        meter: &mut WorkMeter,
    ) {
        match (state, obj) {
            (DefectState::Detect, DefectObj::Detect(o)) => {
                o.fragments.extend(self.detect_in_chunk(chunk, meter));
            }
            (DefectState::Categorize { defects, catalog }, DefectObj::Categorize(o)) => {
                let span = chunk.span.expect("span");
                let total = self.total_layers as i64;
                for (di, defect) in defects.iter().enumerate() {
                    let z = (defect.centroid[2].round() as i64).clamp(0, total - 1) as u64;
                    if z < span.begin || z >= span.end {
                        continue;
                    }
                    // Candidate classes: best catalog match, then local
                    // temporary classes.
                    let mut best: Option<(f32, Match)> = None;
                    for (ci, t) in catalog.iter().enumerate() {
                        let d = defect.signature.distance(t);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, Match::Catalog(ci as u32)));
                        }
                    }
                    for (ti, t) in o.new_templates.iter().enumerate() {
                        let d = defect.signature.distance(t);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, Match::Novel(ti as u32)));
                        }
                    }
                    meter.data_flops(((catalog.len() + o.new_templates.len()) * 8) as u64);
                    meter.data_cmp((catalog.len() + o.new_templates.len()) as u64);
                    let m = match best {
                        Some((d, m)) if d < MATCH_THRESHOLD => m,
                        _ => {
                            o.new_templates.push(defect.signature);
                            Match::Novel(o.new_templates.len() as u32 - 1)
                        }
                    };
                    o.assignments.push((di as u32, m));
                }
                // The scan over the chunk itself (exact shape matching
                // re-reads the atoms around each candidate).
                meter.data_mem(chunk.elements * 4);
            }
            _ => unreachable!("state and object pass mismatch"),
        }
    }

    fn global_finalize(
        &self,
        state: &DefectState,
        merged: DefectObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<DefectState> {
        match (state, merged) {
            (DefectState::Detect, DefectObj::Detect(o)) => {
                let defects = self.combine(o.fragments, meter);
                PassOutcome::NextPass(DefectState::Categorize {
                    defects,
                    catalog: Signature::canonical_catalog(),
                })
            }
            (DefectState::Categorize { defects, catalog }, DefectObj::Categorize(o)) => {
                // Merge temporary classes: greedy dedup in template order.
                let mut final_catalog = catalog.clone();
                let mut novel_map = Vec::with_capacity(o.new_templates.len());
                for t in &o.new_templates {
                    let found = final_catalog[catalog.len()..]
                        .iter()
                        .position(|u| t.distance(u) < MATCH_THRESHOLD)
                        .map(|p| (catalog.len() + p) as u32);
                    meter.data_flops((final_catalog.len() - catalog.len()) as u64 * 8 + 8);
                    match found {
                        Some(id) => novel_map.push(id),
                        None => {
                            final_catalog.push(*t);
                            novel_map.push(final_catalog.len() as u32 - 1);
                        }
                    }
                }
                let mut classes = vec![u32::MAX; defects.len()];
                for (di, m) in &o.assignments {
                    classes[*di as usize] = match m {
                        Match::Catalog(c) => *c,
                        Match::Novel(i) => novel_map[*i as usize],
                    };
                }
                meter.data_mem(o.assignments.len() as u64 * 2);
                assert!(
                    classes.iter().all(|&c| c != u32::MAX),
                    "some defects were never categorized"
                );
                PassOutcome::Finished(DefectState::Done {
                    defects: defects.clone(),
                    classes,
                    catalog: final_catalog,
                })
            }
            _ => unreachable!("state and object pass mismatch"),
        }
    }

    fn state_size(&self, state: &DefectState) -> ObjSize {
        match state {
            DefectState::Detect => ObjSize { fixed: 8, data: 0 },
            DefectState::Categorize { defects, catalog } => {
                ObjSize { fixed: 16 + catalog.len() as u64 * 16, data: defects.len() as u64 * 32 }
            }
            DefectState::Done { defects, catalog, .. } => {
                ObjSize { fixed: 16 + catalog.len() as u64 * 16, data: defects.len() as u64 * 36 }
            }
        }
    }

    fn caches(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    fn run(ds: &Dataset, n: usize, c: usize) -> (Vec<Defect>, Vec<u32>, Vec<Signature>) {
        let app = DefectDetect::for_dataset(ds);
        match Executor::new(deployment(n, c)).run(&app, ds).final_state {
            DefectState::Done { defects, classes, catalog } => (defects, classes, catalog),
            _ => panic!("did not finish"),
        }
    }

    #[test]
    fn finds_every_planted_defect() {
        let (ds, planted) = generate("df-count", 2.0, 0.01, 55);
        let (defects, _, _) = run(&ds, 2, 4);
        assert_eq!(defects.len(), planted.len(), "defect count mismatch");
        for p in &planted {
            let target = [p.site[0] as f32, p.site[1] as f32, p.site[2] as f32];
            let nearest = defects
                .iter()
                .map(|d| (0..3).map(|i| (d.centroid[i] - target[i]).powi(2)).sum::<f32>().sqrt())
                .fold(f32::INFINITY, f32::min);
            assert!(nearest < 1.5, "planted {:?} at {:?} not located", p.kind, p.site);
        }
    }

    #[test]
    fn expected_atom_counts_per_kind() {
        let (ds, planted) = generate("df-size", 2.0, 0.01, 56);
        let (defects, _, _) = run(&ds, 1, 1);
        for p in &planted {
            let target = [p.site[0] as f32, p.site[1] as f32, p.site[2] as f32];
            let d = defects
                .iter()
                .min_by(|a, b| {
                    let da: f32 = (0..3).map(|i| (a.centroid[i] - target[i]).powi(2)).sum();
                    let db: f32 = (0..3).map(|i| (b.centroid[i] - target[i]).powi(2)).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            let expect = match p.kind {
                DefectKind::Vacancy => 6,
                DefectKind::Interstitial => 9,
                DefectKind::Substitution => 1,
            };
            assert_eq!(d.atoms, expect, "{:?} at {:?}", p.kind, p.site);
        }
    }

    #[test]
    fn categorization_matches_canonical_classes() {
        let (ds, planted) = generate("df-class", 2.0, 0.01, 57);
        let (defects, classes, catalog) = run(&ds, 2, 8);
        // Canonical catalog: 0 = vacancy, 1 = interstitial, 2 = substitution.
        assert_eq!(catalog.len(), 3, "no novel classes expected for clean defects");
        for p in &planted {
            let target = [p.site[0] as f32, p.site[1] as f32, p.site[2] as f32];
            let (di, _) = defects
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = (0..3).map(|i| (a.centroid[i] - target[i]).powi(2)).sum();
                    let db: f32 = (0..3).map(|i| (b.centroid[i] - target[i]).powi(2)).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            let expect = match p.kind {
                DefectKind::Vacancy => 0,
                DefectKind::Interstitial => 1,
                DefectKind::Substitution => 2,
            };
            assert_eq!(classes[di], expect, "{:?} misclassified", p.kind);
        }
    }

    #[test]
    fn result_is_configuration_independent() {
        let (ds, _) = generate("df-cfg", 60.0, 0.01, 58);
        let (d1, c1, k1) = run(&ds, 1, 1);
        let (d2, c2, k2) = run(&ds, 8, 16);
        assert_eq!(d1.len(), d2.len());
        assert_eq!(c1, c2);
        assert_eq!(k1.len(), k2.len());
    }

    #[test]
    fn two_passes_with_cache() {
        let (ds, _) = generate("df-pass", 2.0, 0.01, 59);
        let app = DefectDetect::for_dataset(&ds);
        let report = Executor::new(deployment(2, 2)).run(&app, &ds).report;
        assert_eq!(report.num_passes(), 2);
        assert!(report.passes[1].retrieval.is_zero(), "pass 2 must hit the cache");
        assert!(report.passes[1].network.is_zero());
    }

    #[test]
    fn object_is_linear_class() {
        let (ds, _) = generate("df-lin", 4.0, 0.01, 60);
        let app = DefectDetect::for_dataset(&ds);
        let mut obj = app.new_object(&DefectState::Detect);
        let mut meter = WorkMeter::new();
        let mut grew = false;
        let mut prev = 0;
        for chunk in &ds.chunks {
            app.local_reduce(&DefectState::Detect, chunk, &mut obj, &mut meter);
            let now = obj.size().data;
            if now > prev {
                grew = true;
            }
            prev = now;
        }
        assert!(grew, "defect object must grow with data volume");
    }

    #[test]
    fn signature_separates_canonical_shapes() {
        let catalog = Signature::canonical_catalog();
        for i in 0..catalog.len() {
            for j in 0..catalog.len() {
                let d = catalog[i].distance(&catalog[j]);
                if i == j {
                    assert!(d < 1e-6);
                } else {
                    assert!(d > MATCH_THRESHOLD, "templates {i} and {j} too close: {d}");
                }
            }
        }
    }

    #[test]
    fn cells_adjacency_rules() {
        let l = LATTICE_XY as u16;
        let cell = |x: u16, y: u16| x * l + y;
        assert!(cells_adjacent(&[cell(5, 5)], &[cell(5, 5)]));
        assert!(cells_adjacent(&[cell(5, 5)], &[cell(6, 5)]));
        assert!(cells_adjacent(&[cell(5, 5)], &[cell(6, 6)]));
        assert!(!cells_adjacent(&[cell(5, 5)], &[cell(7, 5)]));
        assert!(!cells_adjacent(&[], &[cell(1, 1)]));
    }
}
