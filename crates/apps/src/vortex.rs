//! Vortex detection in CFD fields (§4.4 of the paper).
//!
//! A feature-mining pipeline over a 2-D vector field: per-cell vorticity
//! (**detection**), thresholding with sign (**classification**), local
//! connected-component **aggregation** within each chunk, then a global
//! combination that joins vortex fragments spanning chunk boundaries,
//! followed by de-noising and sorting — the structure Machiraju et al.'s
//! EVITA algorithm takes in the paper.
//!
//! Chunks are row slabs with one halo row on each side, so detection
//! needs no neighbor communication ("a special approach to partitioning
//! data between nodes ... overlapping data instances from neighboring
//! partitions"). Because the halo rows are stored in the payload, a
//! dataset's logical size slightly exceeds its nominal label (by
//! `2/rows_per_chunk`); all model arithmetic uses the measured logical
//! size, so this is only a labeling nuance.
//!
//! Classes: the reduction object is the list of detected fragments —
//! **linear** (dataset-proportional); the master's join/denoise/sort over
//! all fragments makes the global reduction **constant-linear**.

use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder, Span};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Grid width (columns); the field's height follows from the dataset size.
pub const WIDTH: usize = 256;
/// Bytes per cell: two f32 velocity components.
pub const BYTES_PER_CELL: usize = 8;
/// Owned rows per chunk.
const ROWS_PER_CHUNK: usize = 20;
/// Vorticity magnitude threshold for candidate cells.
pub const VORTICITY_THRESHOLD: f32 = 0.25;
/// Minimum cells for a region to survive de-noising.
pub const MIN_REGION_CELLS: u64 = 5;

/// A planted vortex (ground truth, returned by the generator for tests).
#[derive(Debug, Clone, Copy)]
pub struct PlantedVortex {
    /// Center column.
    pub col: f32,
    /// Center row.
    pub row: f32,
    /// Core radius in cells.
    pub radius: f32,
    /// Signed strength (positive = counter-clockwise).
    pub strength: f32,
}

/// Generate a vector field with planted vortices. Returns the dataset and
/// the ground truth.
pub fn generate(id: &str, nominal_mb: f64, scale: f64, seed: u64) -> (Dataset, Vec<PlantedVortex>) {
    let total_cells = crate::common::physical_elements(nominal_mb, scale, BYTES_PER_CELL) as usize;
    // Round the height so the chunk count is a multiple of 16: per-node
    // chunk counts then divide evenly on every paper configuration (see
    // `common::chunk_sizes` for why this matters for balance).
    let slab = ROWS_PER_CHUNK * 16;
    let height = (total_cells / WIDTH).max(slab).div_ceil(slab) * slab;
    let mut rng = stream_rng(seed, "vortex-data");

    // Smooth, low-vorticity background flow.
    let mut field = vec![0.0f32; height * WIDTH * 2];
    for r in 0..height {
        for c in 0..WIDTH {
            let i = (r * WIDTH + c) * 2;
            field[i] = (r as f32 * 0.02).sin() * 0.8 + (c as f32 * 0.013).cos() * 0.4;
            field[i + 1] = (c as f32 * 0.017).sin() * 0.7 + (r as f32 * 0.011).cos() * 0.3;
        }
    }

    // Plant vortices with margins so every core is fully measurable, and
    // mutual separation so cores never overlap or merge.
    let count = (total_cells / 30_000).max(3);
    let mut planted: Vec<PlantedVortex> = Vec::with_capacity(count);
    let mut attempts = 0;
    while planted.len() < count && attempts < count * 200 {
        attempts += 1;
        let radius = rng.gen_range(3.0f32..6.0);
        let margin = (radius * 4.0) as usize + 3;
        let v = PlantedVortex {
            col: rng.gen_range(margin as f32..(WIDTH - margin) as f32),
            row: rng.gen_range(margin as f32..(height - margin) as f32),
            radius,
            strength: rng.gen_range(2.0f32..4.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
        };
        let separated = planted.iter().all(|p| {
            let d = ((p.col - v.col).powi(2) + (p.row - v.row).powi(2)).sqrt();
            d > 4.0 * (p.radius + v.radius)
        });
        if !separated {
            continue;
        }
        // Superpose a Gaussian-core vortex within a 4-radius box.
        let r4 = (v.radius * 4.0) as i64;
        let (vr, vc) = (v.row as i64, v.col as i64);
        for r in (vr - r4).max(0)..(vr + r4).min(height as i64) {
            for c in (vc - r4).max(0)..(vc + r4).min(WIDTH as i64) {
                let dy = r as f32 - v.row;
                let dx = c as f32 - v.col;
                let d2 = dx * dx + dy * dy;
                let f = v.strength * (-d2 / (v.radius * v.radius)).exp() / v.radius;
                let i = (r as usize * WIDTH + c as usize) * 2;
                field[i] -= dy * f;
                field[i + 1] += dx * f;
            }
        }
        planted.push(v);
    }

    // Slice into halo-overlapped row slabs.
    let mut builder = DatasetBuilder::new(id, "cfd-field", scale);
    let mut row = 0usize;
    while row < height {
        let end = (row + ROWS_PER_CHUNK).min(height);
        let halo_before = usize::from(row > 0);
        let halo_after = usize::from(end < height);
        let lo = row - halo_before;
        let hi = end + halo_after;
        let payload = codec::encode_f32s(&field[lo * WIDTH * 2..hi * WIDTH * 2]);
        builder.push_chunk(
            payload,
            ((end - row) * WIDTH) as u64,
            Some(Span {
                begin: row as u64,
                end: end as u64,
                halo_before: halo_before as u64,
                halo_after: halo_after as u64,
            }),
        );
        row = end;
    }
    (builder.build(), planted)
}

/// A connected vorticity fragment found within one chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Candidate cells in the fragment.
    pub cells: u64,
    /// Sum of cell columns (for the centroid).
    pub sum_col: f64,
    /// Sum of cell rows.
    pub sum_row: f64,
    /// Sum of |vorticity| over cells.
    pub strength: f64,
    /// Rotation sense: +1 or -1.
    pub sign: i8,
    /// Global row index of the chunk's first owned row.
    pub chunk_first: u64,
    /// Global row index of the chunk's last owned row.
    pub chunk_last: u64,
    /// Column intervals of this fragment on `chunk_first` (inclusive).
    pub spans_first: Vec<(u32, u32)>,
    /// Column intervals on `chunk_last`.
    pub spans_last: Vec<(u32, u32)>,
}

/// A detected vortex after global combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vortex {
    /// Total candidate cells.
    pub cells: u64,
    /// Centroid column.
    pub col: f64,
    /// Centroid row.
    pub row: f64,
    /// Integrated |vorticity|.
    pub strength: f64,
    /// Rotation sense.
    pub sign: i8,
}

/// Reduction object: fragments detected so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VortexObj {
    /// Per-chunk fragments, concatenated.
    pub regions: Vec<Region>,
}

impl ReductionObject for VortexObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        meter.data_mem(other.regions.len() as u64 * 8);
        self.regions.extend_from_slice(&other.regions);
    }

    fn size(&self) -> ObjSize {
        let bytes: u64 = self
            .regions
            .iter()
            .map(|r| 48 + 8 * (r.spans_first.len() + r.spans_last.len()) as u64)
            .sum();
        ObjSize { fixed: 16, data: bytes }
    }
}

/// Application state: scanning, then done.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum VortexState {
    /// The single detection pass.
    Scan,
    /// Sorted, de-noised vortices.
    Done(Vec<Vortex>),
}

/// The vortex detection application.
pub struct VortexDetect {
    /// Vorticity threshold.
    pub threshold: f32,
    /// De-noising floor.
    pub min_cells: u64,
}

impl Default for VortexDetect {
    fn default() -> Self {
        VortexDetect { threshold: VORTICITY_THRESHOLD, min_cells: MIN_REGION_CELLS }
    }
}

impl VortexDetect {
    /// Detect fragments within one chunk (detection + classification +
    /// local aggregation). Public so the sequential reference and tests
    /// can reuse it.
    pub fn detect_in_chunk(&self, chunk: &Chunk, meter: &mut WorkMeter) -> Vec<Region> {
        let span = chunk.span.expect("vortex chunks carry spans");
        let vals = codec::decode_f32s(&chunk.payload);
        let stored_rows = span.stored_len() as usize;
        let owned_rows = span.owned_len() as usize;
        debug_assert_eq!(vals.len(), stored_rows * WIDTH * 2);
        let first_owned = span.halo_before as usize; // row offset in `vals`

        // Detection: vorticity at every owned cell with full neighborhoods.
        let u = |r: usize, c: usize| vals[(r * WIDTH + c) * 2];
        let v = |r: usize, c: usize| vals[(r * WIDTH + c) * 2 + 1];
        let mut vort = vec![0.0f32; owned_rows * WIDTH];
        let mut candidate = vec![false; owned_rows * WIDTH];
        for or in 0..owned_rows {
            let sr = first_owned + or;
            if sr == 0 || sr + 1 >= stored_rows {
                continue; // global field boundary: no one-sided stencils
            }
            for c in 1..WIDTH - 1 {
                let w = (v(sr, c + 1) - v(sr, c - 1)) * 0.5 - (u(sr + 1, c) - u(sr - 1, c)) * 0.5;
                vort[or * WIDTH + c] = w;
                candidate[or * WIDTH + c] = w.abs() > self.threshold;
            }
        }
        // Per-cell cost of the full EVITA-style detection/classification
        // criterion (velocity-gradient tensor and swirl test, of which the
        // curl is our computational stand-in).
        meter.data_flops(owned_rows as u64 * WIDTH as u64 * 40);
        meter.data_cmp(owned_rows as u64 * WIDTH as u64 * 6);
        meter.data_mem(owned_rows as u64 * WIDTH as u64 * 10);

        // Local aggregation: union-find over same-sign candidates,
        // 4-connectivity within the owned slab.
        let n = owned_rows * WIDTH;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut uf_ops = 0u64;
        for or in 0..owned_rows {
            for c in 0..WIDTH {
                let i = or * WIDTH + c;
                if !candidate[i] {
                    continue;
                }
                let sign = vort[i] > 0.0;
                if c > 0 && candidate[i - 1] && (vort[i - 1] > 0.0) == sign {
                    let (a, b) = (find(&mut parent, i as u32), find(&mut parent, (i - 1) as u32));
                    parent[a as usize] = b;
                    uf_ops += 1;
                }
                if or > 0 && candidate[i - WIDTH] && (vort[i - WIDTH] > 0.0) == sign {
                    let (a, b) =
                        (find(&mut parent, i as u32), find(&mut parent, (i - WIDTH) as u32));
                    parent[a as usize] = b;
                    uf_ops += 1;
                }
            }
        }
        meter.data_cmp(uf_ops * 3);

        // Collect fragments.
        let mut by_root = std::collections::BTreeMap::<u32, Region>::new();
        for or in 0..owned_rows {
            for c in 0..WIDTH {
                let i = or * WIDTH + c;
                if !candidate[i] {
                    continue;
                }
                let root = find(&mut parent, i as u32);
                let global_row = span.begin + or as u64;
                let region = by_root.entry(root).or_insert_with(|| Region {
                    cells: 0,
                    sum_col: 0.0,
                    sum_row: 0.0,
                    strength: 0.0,
                    sign: if vort[i] > 0.0 { 1 } else { -1 },
                    chunk_first: span.begin,
                    chunk_last: span.end - 1,
                    spans_first: Vec::new(),
                    spans_last: Vec::new(),
                });
                region.cells += 1;
                region.sum_col += c as f64;
                region.sum_row += global_row as f64;
                region.strength += vort[i].abs() as f64;
                let col = c as u32;
                if or == 0 {
                    push_span(&mut region.spans_first, col);
                }
                if or == owned_rows - 1 {
                    push_span(&mut region.spans_last, col);
                }
            }
        }
        by_root.into_values().collect()
    }

    /// Global combination: join fragments across chunk boundaries, then
    /// de-noise and sort by strength. Public for the reference and tests.
    pub fn combine(&self, regions: Vec<Region>, meter: &mut WorkMeter) -> Vec<Vortex> {
        let n = regions.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        // Index fragments by the boundary row where they expose spans.
        let mut by_last = std::collections::BTreeMap::<u64, Vec<usize>>::new();
        let mut by_first = std::collections::BTreeMap::<u64, Vec<usize>>::new();
        for (i, r) in regions.iter().enumerate() {
            if !r.spans_last.is_empty() {
                by_last.entry(r.chunk_last).or_default().push(i);
            }
            if !r.spans_first.is_empty() && r.chunk_first > 0 {
                by_first.entry(r.chunk_first - 1).or_default().push(i);
            }
        }
        let mut join_ops = 0u64;
        for (row, uppers) in &by_last {
            let Some(lowers) = by_first.get(row) else { continue };
            for &a in uppers {
                for &b in lowers {
                    join_ops += 1;
                    if regions[a].sign == regions[b].sign
                        && spans_overlap(&regions[a].spans_last, &regions[b].spans_first)
                    {
                        let (ra, rb) = (find(&mut parent, a as u32), find(&mut parent, b as u32));
                        parent[ra as usize] = rb;
                    }
                }
            }
        }
        meter.data_cmp(join_ops * 4 + n as u64);
        meter.data_mem(n as u64 * 8);
        // De-noising re-verifies every candidate cell of every region
        // (the EVITA pipeline's per-point swirl verification): genuinely
        // dataset-proportional master work — this is what makes vortex
        // detection's global reduction the constant-linear class.
        let region_cells: u64 = regions.iter().map(|r| r.cells).sum();
        meter.data_flops(region_cells * 60);
        meter.data_mem(region_cells * 12);

        // Accumulate per root, de-noise, sort.
        let mut acc = std::collections::BTreeMap::<u32, Vortex>::new();
        for (i, r) in regions.iter().enumerate() {
            let root = find(&mut parent, i as u32);
            let v = acc.entry(root).or_insert(Vortex {
                cells: 0,
                col: 0.0,
                row: 0.0,
                strength: 0.0,
                sign: r.sign,
            });
            v.cells += r.cells;
            v.col += r.sum_col;
            v.row += r.sum_row;
            v.strength += r.strength;
        }
        let mut out: Vec<Vortex> = acc
            .into_values()
            .filter(|v| v.cells >= self.min_cells)
            .map(|mut v| {
                v.col /= v.cells as f64;
                v.row /= v.cells as f64;
                v
            })
            .collect();
        let sort_ops =
            (out.len() as u64 + 1) * (64 - (out.len() as u64 + 1).leading_zeros() as u64);
        meter.data_cmp(sort_ops * 4);
        out.sort_by(|a, b| b.strength.total_cmp(&a.strength));
        out
    }
}

fn push_span(spans: &mut Vec<(u32, u32)>, col: u32) {
    if let Some(last) = spans.last_mut() {
        if last.1 + 1 == col {
            last.1 = col;
            return;
        }
    }
    spans.push((col, col));
}

fn spans_overlap(a: &[(u32, u32)], b: &[(u32, u32)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].1 < b[j].0 {
            i += 1;
        } else if b[j].1 < a[i].0 {
            j += 1;
        } else {
            return true;
        }
    }
    false
}

impl ReductionApp for VortexDetect {
    type Obj = VortexObj;
    type State = VortexState;

    fn name(&self) -> &str {
        "vortex"
    }

    fn initial_state(&self) -> VortexState {
        VortexState::Scan
    }

    fn new_object(&self, _: &VortexState) -> VortexObj {
        VortexObj::default()
    }

    fn local_reduce(
        &self,
        _: &VortexState,
        chunk: &Chunk,
        obj: &mut VortexObj,
        meter: &mut WorkMeter,
    ) {
        let regions = self.detect_in_chunk(chunk, meter);
        obj.regions.extend(regions);
    }

    fn global_finalize(
        &self,
        _: &VortexState,
        merged: VortexObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<VortexState> {
        PassOutcome::Finished(VortexState::Done(self.combine(merged.regions, meter)))
    }

    fn state_size(&self, state: &VortexState) -> ObjSize {
        match state {
            VortexState::Scan => ObjSize { fixed: 8, data: 0 },
            VortexState::Done(v) => ObjSize { fixed: 8, data: v.len() as u64 * 40 },
        }
    }

    fn caches(&self) -> bool {
        false
    }
}

/// Sequential reference: detect over the whole field as one chunk-less
/// scan, by synthesizing a single full-height chunk.
pub fn reference_detect(dataset: &Dataset, app: &VortexDetect) -> Vec<Vortex> {
    // Reassemble the field from owned rows.
    let mut rows: Vec<(u64, Vec<f32>)> = Vec::new();
    for chunk in &dataset.chunks {
        let span = chunk.span.expect("span");
        let vals = codec::decode_f32s(&chunk.payload);
        let first = span.halo_before as usize;
        for or in 0..span.owned_len() as usize {
            let sr = first + or;
            rows.push((
                span.begin + or as u64,
                vals[sr * WIDTH * 2..(sr + 1) * WIDTH * 2].to_vec(),
            ));
        }
    }
    rows.sort_by_key(|(r, _)| *r);
    let height = rows.len();
    let mut field = Vec::with_capacity(height * WIDTH * 2);
    for (_, row) in rows {
        field.extend(row);
    }
    let chunk = Chunk {
        id: 0,
        payload: codec::encode_f32s(&field),
        elements: (height * WIDTH) as u64,
        logical_bytes: 0,
        span: Some(Span { begin: 0, end: height as u64, halo_before: 0, halo_after: 0 }),
    };
    let mut meter = WorkMeter::new();
    let regions = app.detect_in_chunk(&chunk, &mut meter);
    app.combine(regions, &mut meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    fn run(ds: &Dataset, n: usize, c: usize) -> Vec<Vortex> {
        let app = VortexDetect::default();
        match Executor::new(deployment(n, c)).run(&app, ds).final_state {
            VortexState::Done(v) => v,
            VortexState::Scan => panic!("did not finish"),
        }
    }

    #[test]
    fn finds_every_planted_vortex() {
        let (ds, planted) = generate("vx-count", 4.0, 0.01, 77);
        let found = run(&ds, 2, 4);
        assert_eq!(found.len(), planted.len(), "vortex count mismatch");
        for p in &planted {
            let nearest = found
                .iter()
                .map(|v| ((v.col - p.col as f64).powi(2) + (v.row - p.row as f64).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 2.0, "planted vortex at ({}, {}) not located", p.col, p.row);
        }
    }

    #[test]
    fn signs_match_planted_rotation() {
        let (ds, planted) = generate("vx-sign", 4.0, 0.01, 78);
        let found = run(&ds, 1, 1);
        for p in &planted {
            let v = found
                .iter()
                .min_by(|a, b| {
                    let da = (a.col - p.col as f64).powi(2) + (a.row - p.row as f64).powi(2);
                    let db = (b.col - p.col as f64).powi(2) + (b.row - p.row as f64).powi(2);
                    da.total_cmp(&db)
                })
                .unwrap();
            assert_eq!(v.sign as f32, p.strength.signum());
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let (ds, _) = generate("vx-ref", 4.0, 0.01, 79);
        let app = VortexDetect::default();
        let expect = reference_detect(&ds, &app);
        let got = run(&ds, 4, 8);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(expect.iter()) {
            assert_eq!(g.cells, e.cells);
            assert!((g.strength - e.strength).abs() < 1e-6);
            assert!((g.col - e.col).abs() < 1e-9);
            assert!((g.row - e.row).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_chunk_fragments_are_joined_once() {
        // A vortex straddling a chunk boundary must appear exactly once
        // regardless of the configuration (fragments live on different
        // compute nodes for c > 1).
        let (ds, planted) = generate("vx-join", 40.0, 0.01, 80);
        let base = run(&ds, 1, 1);
        for (n, c) in [(1, 2), (2, 8), (8, 16)] {
            let other = run(&ds, n, c);
            assert_eq!(other.len(), base.len(), "config {n}-{c} changed vortex count");
        }
        assert_eq!(base.len(), planted.len());
    }

    #[test]
    fn object_size_grows_with_data() {
        let (ds, _) = generate("vx-lin", 4.0, 0.01, 81);
        let app = VortexDetect::default();
        let mut obj = VortexObj::default();
        let mut meter = WorkMeter::new();
        let mut sizes = Vec::new();
        for chunk in ds.chunks.iter().take(20) {
            app.local_reduce(&VortexState::Scan, chunk, &mut obj, &mut meter);
            sizes.push(obj.size().data);
        }
        assert!(
            sizes.last().unwrap() > sizes.first().unwrap(),
            "vortex object must be the linear (data-proportional) class"
        );
    }

    #[test]
    fn span_compression_builds_intervals() {
        let mut spans = Vec::new();
        for c in [1u32, 2, 3, 7, 8, 12] {
            push_span(&mut spans, c);
        }
        assert_eq!(spans, vec![(1, 3), (7, 8), (12, 12)]);
    }

    #[test]
    fn span_overlap_detection() {
        assert!(spans_overlap(&[(1, 3)], &[(3, 5)]));
        assert!(spans_overlap(&[(1, 10)], &[(4, 5)]));
        assert!(!spans_overlap(&[(1, 3)], &[(4, 5)]));
        assert!(!spans_overlap(&[], &[(0, 100)]));
    }

    #[test]
    fn quiet_field_detects_nothing() {
        // Background flow alone stays under the threshold.
        let mut builder = DatasetBuilder::new("quiet", "cfd-field", 1.0);
        let rows = 40;
        let mut field = vec![0.0f32; rows * WIDTH * 2];
        for r in 0..rows {
            for c in 0..WIDTH {
                field[(r * WIDTH + c) * 2] = (r as f32 * 0.02).sin() * 0.8;
                field[(r * WIDTH + c) * 2 + 1] = (c as f32 * 0.017).sin() * 0.7;
            }
        }
        builder.push_chunk(
            codec::encode_f32s(&field),
            (rows * WIDTH) as u64,
            Some(Span { begin: 0, end: rows as u64, halo_before: 0, halo_after: 0 }),
        );
        let ds = builder.build();
        let app = VortexDetect::default();
        let mut meter = WorkMeter::new();
        let regions = app.detect_in_chunk(&ds.chunks[0], &mut meter);
        assert!(regions.is_empty(), "background flow misdetected: {:?}", regions.len());
    }
}
