//! Expectation-Maximization clustering (§4.2 of the paper).
//!
//! A diagonal-covariance Gaussian mixture fitted by EM, parallelized the
//! way the paper describes: each EM iteration alternates two generalized
//! reductions — an **E pass** (each node accumulates responsibilities,
//! responsibility-weighted sums and the log-likelihood; the master
//! computes new means and mixture weights and broadcasts them) and an
//! **M pass** (each node accumulates responsibility-weighted squared
//! deviations from the *new* means; the master computes the covariances
//! and re-broadcasts). The log-likelihood is the monotonically increasing
//! quantity the paper uses to monitor solution quality.
//!
//! Classes: besides the fixed-size sufficient statistics, the reduction
//! object carries a per-node diagnostic buffer (one log-density sample
//! per 64 elements) — a **linear** (dataset-proportional) object, and the
//! master's processing of the merged buffer makes the global reduction
//! **constant-linear** (`T_g ∝ s`, independent of `c`), matching the
//! paper's classification of EM.

use crate::common::{chunk_sizes, physical_elements};
use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Feature dimensionality.
pub const DIM: usize = 4;
/// Bytes per point.
pub const BYTES_PER_POINT: usize = DIM * 4;
/// Logical chunk size.
const CHUNK_BYTES: u64 = 2_000_000;
/// One diagnostic sample is kept per this many elements.
const DIAG_STRIDE: usize = 64;
/// Variance floor to keep components from collapsing.
const VAR_FLOOR: f64 = 1e-3;

/// Generate a Gaussian-mixture dataset with `k_true` components.
pub fn generate(id: &str, nominal_mb: f64, scale: f64, seed: u64, k_true: usize) -> Dataset {
    let total = physical_elements(nominal_mb, scale, BYTES_PER_POINT);
    let mut rng = stream_rng(seed, "em-data");
    let centers: Vec<[f32; DIM]> =
        (0..k_true).map(|_| std::array::from_fn(|_| rng.gen_range(10.0..90.0))).collect();
    let sigmas: Vec<f32> = (0..k_true).map(|_| rng.gen_range(1.5..4.0)).collect();
    let per_chunk = (CHUNK_BYTES as f64 * scale / BYTES_PER_POINT as f64).max(1.0) as u64;
    let mut builder = DatasetBuilder::new(id, "em-points", scale);
    for count in chunk_sizes(total, per_chunk, 16) {
        let mut vals = Vec::with_capacity(count as usize * DIM);
        for _ in 0..count {
            let c = rng.gen_range(0..k_true);
            for d in 0..DIM {
                let jitter: f32 = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).sum();
                vals.push(centers[c][d] + jitter * sigmas[c]);
            }
        }
        builder.push_chunk(codec::encode_f32s(&vals), count, None);
    }
    builder.build()
}

/// Which half of an EM iteration the next pass performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmPhase {
    /// Expectation: accumulate `N_k`, `Σ γ x`, log-likelihood.
    Expectation,
    /// Maximization: accumulate `Σ γ (x - μ_new)²`.
    Maximization,
}

/// The broadcast state: current mixture parameters plus the staging area
/// between the E and M halves of an iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmState {
    /// Component means used for responsibilities (μ_old).
    pub means: Vec<[f64; DIM]>,
    /// Component diagonal variances (σ²_old).
    pub vars: Vec<[f64; DIM]>,
    /// Mixture weights (w_old).
    pub weights: Vec<f64>,
    /// Means computed by the last E pass (μ_new), consumed by the M pass.
    pub new_means: Vec<[f64; DIM]>,
    /// Mixture weights computed by the last E pass, applied after the M
    /// pass (responsibilities within one iteration must use the old
    /// parameters throughout).
    pub new_weights: Vec<f64>,
    /// Per-component responsibility masses from the last E pass.
    pub n_k: Vec<f64>,
    /// Which pass runs next.
    pub phase: EmPhase,
    /// Completed EM iterations.
    pub iter: usize,
    /// Log-likelihood observed by the most recent E pass.
    pub loglik: f64,
}

/// Sufficient-statistics accumulator (shared by both passes) plus the
/// dataset-proportional diagnostic buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmObj {
    n: Vec<f64>,
    sums: Vec<[f64; DIM]>,
    loglik: f64,
    diag: Vec<f32>,
}

impl ReductionObject for EmObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        for (a, b) in self.n.iter_mut().zip(other.n.iter()) {
            *a += b;
        }
        for (a, b) in self.sums.iter_mut().zip(other.sums.iter()) {
            for d in 0..DIM {
                a[d] += b[d];
            }
        }
        self.loglik += other.loglik;
        self.diag.extend_from_slice(&other.diag);
        meter.fixed_flops((self.n.len() * (DIM + 1)) as u64 + 1);
        meter.data_mem(other.diag.len() as u64);
    }

    fn size(&self) -> ObjSize {
        ObjSize {
            fixed: (self.n.len() * (8 + 8 * DIM) + 8) as u64,
            data: (self.diag.len() * 4) as u64,
        }
    }
}

/// The EM clustering application: `k` components, `iterations` EM
/// iterations (two passes each).
pub struct Em {
    /// Mixture components.
    pub k: usize,
    /// EM iterations (each is an E pass plus an M pass).
    pub iterations: usize,
    /// Seed for parameter initialization.
    pub seed: u64,
}

impl Em {
    /// The experiment instance: k=4, 10 iterations (20 passes).
    pub fn paper(seed: u64) -> Em {
        Em { k: 4, iterations: 10, seed }
    }

    /// Per-point log-densities and responsibilities under `state`'s
    /// (old) parameters. Writes γ into `gamma` (length k) and returns
    /// `log p(x)`. Buffer-reusing (this is the hot loop of the suite);
    /// precomputed `log w_c - 0.5 log det Σ_c` terms come in via `prior`.
    fn responsibilities(state: &EmState, x: &[f32], prior: &[f64], gamma: &mut [f64]) -> f64 {
        let k = state.weights.len();
        debug_assert_eq!(gamma.len(), k);
        for c in 0..k {
            let mut quad = 0.0f64;
            for d in 0..DIM {
                let diff = x[d] as f64 - state.means[c][d];
                quad += diff * diff / state.vars[c][d];
            }
            gamma[c] = prior[c] - 0.5 * quad; // log p(x, c) for now
        }
        let max = gamma.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0f64;
        for g in gamma.iter() {
            denom += (g - max).exp();
        }
        let log_px = max + denom.ln();
        for g in gamma.iter_mut() {
            *g = (*g - log_px).exp();
        }
        log_px
    }

    /// The per-component constant of the log-density:
    /// `log w_c - 0.5 (log det Σ_c + D log 2π)`.
    fn log_priors(state: &EmState) -> Vec<f64> {
        state
            .weights
            .iter()
            .zip(state.vars.iter())
            .map(|(w, var)| {
                let logdet: f64 = var.iter().map(|v| v.ln()).sum();
                w.max(1e-300).ln() - 0.5 * (logdet + DIM as f64 * (2.0 * std::f64::consts::PI).ln())
            })
            .collect()
    }
}

impl ReductionApp for Em {
    type Obj = EmObj;
    type State = EmState;

    fn name(&self) -> &str {
        "em"
    }

    fn initial_state(&self) -> EmState {
        let mut rng = stream_rng(self.seed, "em-init");
        EmState {
            means: (0..self.k)
                .map(|_| std::array::from_fn(|_| rng.gen_range(0.0..100.0)))
                .collect(),
            vars: vec![[25.0; DIM]; self.k],
            weights: vec![1.0 / self.k as f64; self.k],
            new_means: vec![[0.0; DIM]; self.k],
            new_weights: vec![1.0 / self.k as f64; self.k],
            n_k: vec![0.0; self.k],
            phase: EmPhase::Expectation,
            iter: 0,
            loglik: f64::NEG_INFINITY,
        }
    }

    fn new_object(&self, _: &EmState) -> EmObj {
        EmObj {
            n: vec![0.0; self.k],
            sums: vec![[0.0; DIM]; self.k],
            loglik: 0.0,
            diag: Vec::new(),
        }
    }

    fn local_reduce(&self, state: &EmState, chunk: &Chunk, obj: &mut EmObj, meter: &mut WorkMeter) {
        let vals = codec::decode_f32s(&chunk.payload);
        let points = vals.chunks_exact(DIM);
        let n = points.len() as u64;
        let prior = Em::log_priors(state);
        let mut gamma = vec![0.0f64; self.k];
        for (i, p) in points.enumerate() {
            let log_px = Em::responsibilities(state, p, &prior, &mut gamma);
            match state.phase {
                EmPhase::Expectation => {
                    for c in 0..self.k {
                        obj.n[c] += gamma[c];
                        for d in 0..DIM {
                            obj.sums[c][d] += gamma[c] * p[d] as f64;
                        }
                    }
                    obj.loglik += log_px;
                    if i % DIAG_STRIDE == 0 {
                        obj.diag.push(log_px as f32);
                    }
                }
                EmPhase::Maximization => {
                    for c in 0..self.k {
                        obj.n[c] += gamma[c];
                        for d in 0..DIM {
                            let diff = p[d] as f64 - state.new_means[c][d];
                            obj.sums[c][d] += gamma[c] * diff * diff;
                        }
                    }
                    if i % DIAG_STRIDE == 0 {
                        obj.diag.push(log_px as f32);
                    }
                }
            }
        }
        // Per point: k log-densities (≈ 6 flops per dim each), softmax,
        // and k*(DIM+1) accumulator updates.
        let k = self.k as u64;
        meter.data_flops(n * k * (6 * DIM as u64 + 4));
        meter.data_mem(n * DIM as u64 * 2);
        meter.data_cmp(n * k);
    }

    fn global_finalize(
        &self,
        state: &EmState,
        merged: EmObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<EmState> {
        // The master scans the merged diagnostic buffer (outlier check):
        // genuine data-proportional work at the master.
        let mut worst = f64::INFINITY;
        for &v in &merged.diag {
            if (v as f64) < worst {
                worst = v as f64;
            }
        }
        // Outlier screen over the merged buffer: sort-free selection plus
        // robust statistics — this is the dataset-proportional master work
        // that makes EM's global reduction the constant-linear class.
        meter.data_mem(merged.diag.len() as u64 * 4);
        meter.data_flops(merged.diag.len() as u64 * 3);
        meter.data_cmp(merged.diag.len() as u64 * 2);
        meter.fixed_flops((self.k * (DIM + 1)) as u64);
        let _ = worst;

        let mut next = state.clone();
        match state.phase {
            EmPhase::Expectation => {
                let total: f64 = merged.n.iter().sum();
                for c in 0..self.k {
                    if merged.n[c] > 1e-12 {
                        next.new_means[c] =
                            std::array::from_fn(|d| merged.sums[c][d] / merged.n[c]);
                    } else {
                        next.new_means[c] = state.means[c];
                    }
                }
                next.n_k = merged.n.clone();
                next.new_weights = merged.n.iter().map(|&nk| (nk / total).max(1e-12)).collect();
                next.loglik = merged.loglik;
                next.phase = EmPhase::Maximization;
                PassOutcome::NextPass(next)
            }
            EmPhase::Maximization => {
                for c in 0..self.k {
                    if state.n_k[c] > 1e-12 {
                        next.vars[c] = std::array::from_fn(|d| {
                            (merged.sums[c][d] / state.n_k[c]).max(VAR_FLOOR)
                        });
                    }
                }
                next.means = state.new_means.clone();
                next.weights = state.new_weights.clone();
                next.phase = EmPhase::Expectation;
                next.iter = state.iter + 1;
                if next.iter >= self.iterations {
                    PassOutcome::Finished(next)
                } else {
                    PassOutcome::NextPass(next)
                }
            }
        }
    }

    fn state_size(&self, _: &EmState) -> ObjSize {
        ObjSize { fixed: (self.k * (8 * DIM * 2 + 16) + 32) as u64, data: 0 }
    }

    fn caches(&self) -> bool {
        true
    }
}

/// Sequential reference: one full EM iteration (E + M) over all points.
/// Returns the updated state; used by tests to validate the two-pass
/// middleware split.
pub fn reference_em_iteration(app: &Em, state: &EmState, points: &[f32]) -> EmState {
    let mut n = vec![0.0f64; app.k];
    let mut sums = vec![[0.0f64; DIM]; app.k];
    let mut loglik = 0.0;
    let prior = Em::log_priors(state);
    let mut gamma = vec![0.0f64; app.k];
    for p in points.chunks_exact(DIM) {
        let log_px = Em::responsibilities(state, p, &prior, &mut gamma);
        for c in 0..app.k {
            n[c] += gamma[c];
            for d in 0..DIM {
                sums[c][d] += gamma[c] * p[d] as f64;
            }
        }
        loglik += log_px;
    }
    let total: f64 = n.iter().sum();
    let mut next = state.clone();
    for c in 0..app.k {
        if n[c] > 1e-12 {
            next.means[c] = std::array::from_fn(|d| sums[c][d] / n[c]);
        }
    }
    next.weights = n.iter().map(|&nk| (nk / total).max(1e-12)).collect();
    next.loglik = loglik;
    // M step with the same responsibilities (recomputed from old params).
    let mut v = vec![[0.0f64; DIM]; app.k];
    for p in points.chunks_exact(DIM) {
        Em::responsibilities(state, p, &prior, &mut gamma);
        for c in 0..app.k {
            for d in 0..DIM {
                let diff = p[d] as f64 - next.means[c][d];
                v[c][d] += gamma[c] * diff * diff;
            }
        }
    }
    for c in 0..app.k {
        if n[c] > 1e-12 {
            next.vars[c] = std::array::from_fn(|d| (v[c][d] / n[c]).max(VAR_FLOOR));
        }
    }
    next.iter = state.iter + 1;
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    fn all_points(ds: &Dataset) -> Vec<f32> {
        ds.chunks.iter().flat_map(|c| codec::decode_f32s(&c.payload)).collect()
    }

    #[test]
    fn two_pass_split_matches_reference_iteration() {
        let ds = generate("em-ref", 1.0, 0.01, 31, 3);
        let app = Em { k: 3, iterations: 1, seed: 9 };
        let run = Executor::new(deployment(2, 4)).run(&app, &ds);
        assert_eq!(run.report.num_passes(), 2);
        let expect = reference_em_iteration(&app, &app.initial_state(), &all_points(&ds));
        for c in 0..app.k {
            for d in 0..DIM {
                assert!(
                    (run.final_state.means[c][d] - expect.means[c][d]).abs() < 1e-6,
                    "means differ"
                );
                assert!(
                    (run.final_state.vars[c][d] - expect.vars[c][d]).abs() < 1e-6,
                    "vars differ"
                );
            }
            assert!((run.final_state.weights[c] - expect.weights[c]).abs() < 1e-9);
        }
    }

    #[test]
    fn loglikelihood_is_monotone() {
        let ds = generate("em-ll", 1.0, 0.01, 32, 3);
        let pts = all_points(&ds);
        let app = Em { k: 3, iterations: 1, seed: 10 };
        let mut state = app.initial_state();
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..8 {
            state = reference_em_iteration(&app, &state, &pts);
            assert!(
                state.loglik >= prev - 1e-6,
                "log-likelihood decreased: {} -> {}",
                prev,
                state.loglik
            );
            prev = state.loglik;
        }
    }

    #[test]
    fn recovers_planted_component_means() {
        let seed = 44;
        let ds = generate("em-plant", 2.0, 0.02, seed, 2);
        let app = Em { k: 2, iterations: 25, seed: 5 };
        let run = Executor::new(deployment(1, 2)).run(&app, &ds);
        let mut rng = stream_rng(seed, "em-data");
        let planted: Vec<[f32; DIM]> =
            (0..2).map(|_| std::array::from_fn(|_| rng.gen_range(10.0..90.0))).collect();
        for m in &run.final_state.means {
            let nearest = planted
                .iter()
                .map(|p| (0..DIM).map(|d| (m[d] - p[d] as f64).powi(2)).sum::<f64>().sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 5.0, "fitted mean {:?} far from planted centers", m);
        }
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let app = Em { k: 4, iterations: 1, seed: 1 };
        let state = app.initial_state();
        let x = [50.0f32, 50.0, 50.0, 50.0];
        let prior = Em::log_priors(&state);
        let mut gamma = vec![0.0f64; 4];
        Em::responsibilities(&state, &x, &prior, &mut gamma);
        let total: f64 = gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(gamma.iter().all(|&g| (0.0..=1.0).contains(&g)));
    }

    #[test]
    fn result_is_configuration_independent() {
        let ds = generate("em-cfg", 1.0, 0.01, 33, 3);
        let app = Em { k: 3, iterations: 3, seed: 2 };
        let base = Executor::new(deployment(1, 1)).run(&app, &ds);
        let wide = Executor::new(deployment(8, 16)).run(&app, &ds);
        for c in 0..app.k {
            for d in 0..DIM {
                assert!((base.final_state.means[c][d] - wide.final_state.means[c][d]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn object_is_linear_class() {
        let ds = generate("em-lin", 1.0, 0.01, 34, 2);
        let app = Em::paper(1);
        let state = app.initial_state();
        let mut obj = app.new_object(&state);
        let mut meter = WorkMeter::new();
        app.local_reduce(&state, &ds.chunks[0], &mut obj, &mut meter);
        let one = obj.size().data;
        app.local_reduce(&state, &ds.chunks[1], &mut obj, &mut meter);
        let two = obj.size().data;
        assert!(one > 0, "EM object must carry data-proportional payload");
        assert!(two > one, "diagnostic buffer must grow with data volume");
    }

    #[test]
    fn pass_count_is_two_per_iteration() {
        let ds = generate("em-pc", 1.0, 0.01, 35, 2);
        let app = Em { k: 2, iterations: 4, seed: 3 };
        let run = Executor::new(deployment(1, 1)).run(&app, &ds);
        assert_eq!(run.report.num_passes(), 8);
        assert_eq!(run.final_state.iter, 4);
    }
}
