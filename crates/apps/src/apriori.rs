//! Apriori association mining — extension application.
//!
//! §2.2 of the paper names apriori association mining as one of the
//! algorithms whose generalized-reduction structure FREERIDE-G supports;
//! it is not part of the five-application evaluation, so we provide it as
//! an extension exercising the middleware's multi-pass path with a
//! candidate-generation state machine.
//!
//! Pass `p` counts the support of the candidate `p`-itemsets broadcast in
//! the state; the master keeps the frequent ones and joins them into the
//! next generation of candidates. The run ends when no candidates remain
//! or the itemset size limit is reached.
//!
//! Classes: the reduction object is a count vector over candidates —
//! **constant** (parameter-sized); merging `c` of them is
//! **linear-constant**.

use crate::common::{chunk_sizes, physical_elements};
use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Item alphabet size.
pub const NUM_ITEMS: u32 = 64;
/// Items per transaction (average; the wire format is length-prefixed).
pub const AVG_ITEMS: usize = 8;
/// Bytes per transaction on the wire (length word + items).
pub const BYTES_PER_TXN: usize = (AVG_ITEMS + 1) * 4;
/// Logical chunk size.
const CHUNK_BYTES: u64 = 2_000_000;

/// Generate a transaction dataset with planted frequent patterns: each of
/// `patterns` 3-item sets appears (as a unit) in a fixed fraction of
/// transactions, over a background of uniform noise items.
pub fn generate(
    id: &str,
    nominal_mb: f64,
    scale: f64,
    seed: u64,
    patterns: &[[u32; 3]],
) -> Dataset {
    let total = physical_elements(nominal_mb, scale, BYTES_PER_TXN);
    let mut rng = stream_rng(seed, "apriori-data");
    let per_chunk = (CHUNK_BYTES as f64 * scale / BYTES_PER_TXN as f64).max(1.0) as u64;
    let mut builder = DatasetBuilder::new(id, "transactions", scale);
    for count in chunk_sizes(total, per_chunk, 16) {
        let mut words: Vec<u32> = Vec::with_capacity(count as usize * (AVG_ITEMS + 1));
        for _ in 0..count {
            let mut items: Vec<u32> = Vec::with_capacity(AVG_ITEMS);
            // 40% of transactions contain a planted pattern.
            if !patterns.is_empty() && rng.gen_bool(0.4) {
                items.extend_from_slice(&patterns[rng.gen_range(0..patterns.len())]);
            }
            while items.len() < AVG_ITEMS {
                items.push(rng.gen_range(0..NUM_ITEMS));
            }
            items.sort_unstable();
            items.dedup();
            words.push(items.len() as u32);
            words.extend_from_slice(&items);
        }
        builder.push_chunk(codec::encode_u32s(&words), count, None);
    }
    builder.build()
}

/// Candidate support counts for one pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AprioriObj {
    counts: Vec<u64>,
    transactions: u64,
}

impl ReductionObject for AprioriObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.transactions += other.transactions;
        meter.fixed_flops(self.counts.len() as u64 + 1);
    }

    fn size(&self) -> ObjSize {
        ObjSize { fixed: self.counts.len() as u64 * 8 + 8, data: 0 }
    }
}

/// The broadcast state: current candidates and the frequent sets found so
/// far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AprioriState {
    /// Candidates counted in the next pass (sorted item lists).
    pub candidates: Vec<Vec<u32>>,
    /// Frequent itemsets discovered so far, with supports.
    pub frequent: Vec<(Vec<u32>, u64)>,
    /// Completed passes.
    pub pass: usize,
}

/// The apriori application.
pub struct Apriori {
    /// Minimum support as a fraction of transactions.
    pub min_support: f64,
    /// Largest itemset size mined.
    pub max_size: usize,
}

impl Apriori {
    /// The extension instance: 5% support, up to 3-itemsets.
    pub fn standard() -> Apriori {
        Apriori { min_support: 0.05, max_size: 3 }
    }
}

/// Does sorted `txn` contain sorted `set`?
fn contains_sorted(txn: &[u32], set: &[u32]) -> bool {
    let mut i = 0;
    for item in txn {
        if i == set.len() {
            return true;
        }
        if *item == set[i] {
            i += 1;
        } else if *item > set[i] {
            return false;
        }
    }
    i == set.len()
}

impl ReductionApp for Apriori {
    type Obj = AprioriObj;
    type State = AprioriState;

    fn name(&self) -> &str {
        "apriori"
    }

    fn initial_state(&self) -> AprioriState {
        AprioriState {
            candidates: (0..NUM_ITEMS).map(|i| vec![i]).collect(),
            frequent: Vec::new(),
            pass: 0,
        }
    }

    fn new_object(&self, state: &AprioriState) -> AprioriObj {
        AprioriObj { counts: vec![0; state.candidates.len()], transactions: 0 }
    }

    fn local_reduce(
        &self,
        state: &AprioriState,
        chunk: &Chunk,
        obj: &mut AprioriObj,
        meter: &mut WorkMeter,
    ) {
        let words = codec::decode_u32s(&chunk.payload);
        let mut pos = 0usize;
        let mut scans = 0u64;
        while pos < words.len() {
            let len = words[pos] as usize;
            let txn = &words[pos + 1..pos + 1 + len];
            pos += 1 + len;
            obj.transactions += 1;
            for (ci, cand) in state.candidates.iter().enumerate() {
                scans += (txn.len() + cand.len()) as u64;
                if contains_sorted(txn, cand) {
                    obj.counts[ci] += 1;
                }
            }
        }
        meter.data_cmp(scans);
        meter.data_mem(words.len() as u64);
    }

    fn global_finalize(
        &self,
        state: &AprioriState,
        merged: AprioriObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<AprioriState> {
        let threshold = (self.min_support * merged.transactions as f64).ceil() as u64;
        let mut frequent_now: Vec<(Vec<u32>, u64)> = state
            .candidates
            .iter()
            .zip(merged.counts.iter())
            .filter(|(_, &count)| count >= threshold)
            .map(|(c, &count)| (c.clone(), count))
            .collect();
        meter.fixed_cmp(state.candidates.len() as u64);

        // Join step: combine frequent k-sets sharing a (k-1)-prefix.
        let size = state.pass + 1;
        let mut next: Vec<Vec<u32>> = Vec::new();
        if size < self.max_size {
            for i in 0..frequent_now.len() {
                for j in (i + 1)..frequent_now.len() {
                    let (a, b) = (&frequent_now[i].0, &frequent_now[j].0);
                    if a[..size - 1] == b[..size - 1] && a[size - 1] < b[size - 1] {
                        let mut cand = a.clone();
                        cand.push(b[size - 1]);
                        // Prune: all (k)-subsets must be frequent. For
                        // size <= 3 checking the pair suffix is enough.
                        next.push(cand);
                    }
                }
            }
            meter.fixed_cmp((frequent_now.len() * frequent_now.len()) as u64);
        }

        let mut all = state.frequent.clone();
        all.append(&mut frequent_now);
        let next_state = AprioriState { candidates: next, frequent: all, pass: size };
        if next_state.candidates.is_empty() || size >= self.max_size {
            PassOutcome::Finished(next_state)
        } else {
            PassOutcome::NextPass(next_state)
        }
    }

    fn state_size(&self, state: &AprioriState) -> ObjSize {
        ObjSize {
            fixed: state.candidates.iter().map(|c| c.len() as u64 * 4 + 4).sum::<u64>() + 16,
            data: 0,
        }
    }

    fn caches(&self) -> bool {
        true
    }
}

/// Sequential reference: brute-force support counting.
pub fn reference_support(dataset: &Dataset, set: &[u32]) -> u64 {
    let mut sorted = set.to_vec();
    sorted.sort_unstable();
    let mut count = 0;
    for chunk in &dataset.chunks {
        let words = codec::decode_u32s(&chunk.payload);
        let mut pos = 0usize;
        while pos < words.len() {
            let len = words[pos] as usize;
            let txn = &words[pos + 1..pos + 1 + len];
            pos += 1 + len;
            if contains_sorted(txn, &sorted) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    const PATTERNS: [[u32; 3]; 2] = [[2, 17, 40], [5, 23, 51]];

    #[test]
    fn planted_triples_are_found_frequent() {
        let ds = generate("ap-find", 1.0, 0.01, 91, &PATTERNS);
        let app = Apriori::standard();
        let run = Executor::new(deployment(2, 4)).run(&app, &ds);
        let frequent_triples: Vec<Vec<u32>> = run
            .final_state
            .frequent
            .iter()
            .filter(|(s, _)| s.len() == 3)
            .map(|(s, _)| s.clone())
            .collect();
        for p in &PATTERNS {
            assert!(
                frequent_triples.iter().any(|s| s == &p.to_vec()),
                "planted pattern {:?} not found in {:?}",
                p,
                frequent_triples
            );
        }
    }

    #[test]
    fn supports_match_bruteforce() {
        let ds = generate("ap-ref", 1.0, 0.01, 92, &PATTERNS);
        let app = Apriori::standard();
        let run = Executor::new(deployment(4, 8)).run(&app, &ds);
        for (set, support) in &run.final_state.frequent {
            assert_eq!(*support, reference_support(&ds, set), "support mismatch for {:?}", set);
        }
    }

    #[test]
    fn result_is_configuration_independent() {
        let ds = generate("ap-cfg", 1.0, 0.01, 93, &PATTERNS);
        let app = Apriori::standard();
        let a = Executor::new(deployment(1, 1)).run(&app, &ds).final_state;
        let b = Executor::new(deployment(8, 16)).run(&app, &ds).final_state;
        assert_eq!(a.frequent, b.frequent);
    }

    #[test]
    fn runs_one_pass_per_itemset_size() {
        let ds = generate("ap-pass", 1.0, 0.01, 94, &PATTERNS);
        let app = Apriori::standard();
        let run = Executor::new(deployment(1, 2)).run(&app, &ds);
        assert_eq!(run.report.num_passes(), 3);
        // Passes after the first are served from cache.
        assert!(run.report.passes[1].retrieval.is_zero());
        assert!(run.report.passes[2].retrieval.is_zero());
    }

    #[test]
    fn no_patterns_means_no_frequent_triples_at_high_support() {
        let ds = generate("ap-none", 1.0, 0.01, 95, &[]);
        let app = Apriori { min_support: 0.2, max_size: 3 };
        let run = Executor::new(deployment(1, 1)).run(&app, &ds);
        // Uniform noise items each appear with p ~ 8/64 = 12.5% < 20%.
        assert!(
            run.final_state.frequent.is_empty(),
            "spurious frequent sets: {:?}",
            run.final_state.frequent
        );
    }

    #[test]
    fn contains_sorted_semantics() {
        assert!(contains_sorted(&[1, 3, 5, 9], &[3, 9]));
        assert!(!contains_sorted(&[1, 3, 5, 9], &[3, 4]));
        assert!(contains_sorted(&[1, 3], &[]));
        assert!(!contains_sorted(&[], &[1]));
    }

    #[test]
    fn object_size_is_constant_class() {
        let ds = generate("ap-const", 1.0, 0.01, 96, &PATTERNS);
        let app = Apriori::standard();
        let state = app.initial_state();
        let mut obj = app.new_object(&state);
        let mut meter = WorkMeter::new();
        let s0 = obj.size();
        app.local_reduce(&state, &ds.chunks[0], &mut obj, &mut meter);
        app.local_reduce(&state, &ds.chunks[1], &mut obj, &mut meter);
        assert_eq!(obj.size(), s0, "apriori object must not grow with data");
        assert_eq!(obj.size().data, 0);
    }
}
