//! k-nearest-neighbor search (§4.3 of the paper).
//!
//! Training samples are distributed among the nodes; given a batch of
//! unknown samples, each node finds the k nearest training points it
//! owns; the global reduction merges the per-node k-best lists into the
//! overall k nearest and classifies by majority vote.
//!
//! Classes: the reduction object holds `Q * k` candidate records —
//! **constant** size; merging `c` such objects makes the global reduction
//! **linear-constant**.

use crate::common::{chunk_sizes, dist_sq, physical_elements};
use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Feature dimensionality.
pub const DIM: usize = 4;
/// Bytes per training sample: DIM features + one label, all f32.
pub const BYTES_PER_POINT: usize = (DIM + 1) * 4;
/// Logical chunk size.
const CHUNK_BYTES: u64 = 2_000_000;

/// Number of planted classes in generated datasets.
pub const NUM_CLASSES: usize = 4;

/// Generate a labeled training set: `NUM_CLASSES` Gaussian blobs in
/// `[0, 100]^DIM`, label = blob index.
pub fn generate(id: &str, nominal_mb: f64, scale: f64, seed: u64) -> Dataset {
    let total = physical_elements(nominal_mb, scale, BYTES_PER_POINT);
    let mut rng = stream_rng(seed, "knn-data");
    let centers: Vec<[f32; DIM]> =
        (0..NUM_CLASSES).map(|_| std::array::from_fn(|_| rng.gen_range(15.0..85.0))).collect();
    let per_chunk = (CHUNK_BYTES as f64 * scale / BYTES_PER_POINT as f64).max(1.0) as u64;
    let mut builder = DatasetBuilder::new(id, "knn-points", scale);
    for count in chunk_sizes(total, per_chunk, 16) {
        let mut vals = Vec::with_capacity(count as usize * (DIM + 1));
        for _ in 0..count {
            let label = rng.gen_range(0..NUM_CLASSES);
            for d in 0..DIM {
                let jitter: f32 = rng.gen_range(-4.0f32..4.0) + rng.gen_range(-4.0f32..4.0);
                vals.push(centers[label][d] + jitter);
            }
            vals.push(label as f32);
        }
        builder.push_chunk(codec::encode_f32s(&vals), count, None);
    }
    builder.build()
}

/// A neighbor candidate: squared distance and label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Squared distance to the query.
    pub dist_sq: f32,
    /// Training label.
    pub label: u32,
}

/// Per-query bounded best-list (kept sorted ascending by distance;
/// ties broken by label so merges are order-independent).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BestList {
    k: usize,
    items: Vec<Neighbor>,
}

impl BestList {
    fn new(k: usize) -> BestList {
        BestList { k, items: Vec::with_capacity(k + 1) }
    }

    fn push(&mut self, n: Neighbor) {
        // Selection of the k smallest under the total order (dist, label):
        // exact and independent of insertion order, including ties.
        if self.items.len() == self.k {
            let last = self.items.last().expect("k >= 1");
            if (n.dist_sq, n.label) >= (last.dist_sq, last.label) {
                return;
            }
        }
        let pos = self.items.partition_point(|x| (x.dist_sq, x.label) < (n.dist_sq, n.label));
        self.items.insert(pos, n);
        self.items.truncate(self.k);
    }
}

/// The reduction object: one k-best list per query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnObj {
    lists: Vec<BestList>,
}

impl ReductionObject for KnnObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        let mut work = 0u64;
        for (mine, theirs) in self.lists.iter_mut().zip(other.lists.iter()) {
            for n in &theirs.items {
                mine.push(*n);
                work += 1;
            }
        }
        meter.fixed_cmp(work * 4);
        meter.fixed_mem(work);
    }

    fn size(&self) -> ObjSize {
        ObjSize { fixed: self.lists.iter().map(|l| (l.k * 8 + 8) as u64).sum(), data: 0 }
    }
}

/// The kNN application: classify `queries` against the distributed
/// training set in a single pass.
pub struct Knn {
    /// Neighbors per query.
    pub k: usize,
    /// The query batch (each `DIM` long).
    pub queries: Vec<[f32; DIM]>,
}

impl Knn {
    /// The experiment instance: k=16, 64 queries drawn near the data
    /// region.
    pub fn paper(seed: u64) -> Knn {
        let mut rng = stream_rng(seed, "knn-queries");
        Knn {
            k: 16,
            queries: (0..64).map(|_| std::array::from_fn(|_| rng.gen_range(10.0..90.0))).collect(),
        }
    }
}

/// Final classification result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum KnnState {
    /// Still searching (the only pass).
    Searching,
    /// Majority-vote label and neighbor lists per query.
    Done {
        /// Predicted label per query.
        labels: Vec<u32>,
        /// The k nearest neighbors per query.
        neighbors: Vec<Vec<Neighbor>>,
    },
}

impl ReductionApp for Knn {
    type Obj = KnnObj;
    type State = KnnState;

    fn name(&self) -> &str {
        "knn"
    }

    fn initial_state(&self) -> KnnState {
        KnnState::Searching
    }

    fn new_object(&self, _: &KnnState) -> KnnObj {
        KnnObj { lists: (0..self.queries.len()).map(|_| BestList::new(self.k)).collect() }
    }

    fn local_reduce(&self, _: &KnnState, chunk: &Chunk, obj: &mut KnnObj, meter: &mut WorkMeter) {
        let vals = codec::decode_f32s(&chunk.payload);
        let samples = vals.chunks_exact(DIM + 1);
        let n = samples.len() as u64;
        for s in samples {
            let (coords, label) = s.split_at(DIM);
            let label = label[0] as u32;
            for (q, query) in self.queries.iter().enumerate() {
                let d = dist_sq(coords, query);
                obj.lists[q].push(Neighbor { dist_sq: d, label });
            }
        }
        // kNN is compare-bound: partial-distance pruning and bounded-list
        // maintenance dominate over the raw subtract-square arithmetic.
        let q = self.queries.len() as u64;
        meter.data_flops(n * q * DIM as u64);
        meter.data_cmp(n * q * 6 * DIM as u64);
        meter.data_mem(n * (DIM as u64 + 1) * 2);
    }

    fn global_finalize(
        &self,
        _: &KnnState,
        merged: KnnObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<KnnState> {
        let mut labels = Vec::with_capacity(merged.lists.len());
        let mut neighbors = Vec::with_capacity(merged.lists.len());
        for list in merged.lists {
            let mut votes = std::collections::BTreeMap::<u32, usize>::new();
            for n in &list.items {
                *votes.entry(n.label).or_insert(0) += 1;
            }
            // Most votes; lowest label breaks ties (deterministic).
            let best = votes
                .iter()
                .max_by_key(|(label, count)| (**count, std::cmp::Reverse(**label)))
                .map(|(l, _)| *l)
                .unwrap_or_else(|| list.items.first().map(|n| n.label).unwrap_or(0));
            labels.push(best);
            neighbors.push(list.items);
        }
        meter.fixed_cmp((labels.len() * self.k) as u64);
        PassOutcome::Finished(KnnState::Done { labels, neighbors })
    }

    fn state_size(&self, _: &KnnState) -> ObjSize {
        ObjSize { fixed: (self.queries.len() * 4) as u64, data: 0 }
    }

    fn caches(&self) -> bool {
        false // single pass: nothing to cache
    }
}

/// Sequential reference: exact brute-force kNN over all samples.
pub fn reference_knn(samples: &[f32], queries: &[[f32; DIM]], k: usize) -> Vec<Vec<Neighbor>> {
    queries
        .iter()
        .map(|q| {
            let mut all: Vec<Neighbor> = samples
                .chunks_exact(DIM + 1)
                .map(|s| Neighbor { dist_sq: dist_sq(&s[..DIM], q), label: s[DIM] as u32 })
                .collect();
            all.sort_by(|a, b| (a.dist_sq, a.label).partial_cmp(&(b.dist_sq, b.label)).unwrap());
            all.truncate(k);
            all
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    fn all_samples(ds: &Dataset) -> Vec<f32> {
        ds.chunks.iter().flat_map(|c| codec::decode_f32s(&c.payload)).collect()
    }

    #[test]
    fn middleware_matches_bruteforce_exactly() {
        let ds = generate("knn-test", 2.0, 0.01, 11);
        let app = Knn::paper(5);
        let run = Executor::new(deployment(2, 4)).run(&app, &ds);
        let expect = reference_knn(&all_samples(&ds), &app.queries, app.k);
        match run.final_state {
            KnnState::Done { neighbors, .. } => {
                for (got, want) in neighbors.iter().zip(expect.iter()) {
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(want.iter()) {
                        assert_eq!(g.label, w.label);
                        assert_eq!(g.dist_sq.to_bits(), w.dist_sq.to_bits());
                    }
                }
            }
            KnnState::Searching => panic!("did not finish"),
        }
    }

    #[test]
    fn classification_is_configuration_independent() {
        let ds = generate("knn-cfg", 2.0, 0.01, 12);
        let app = Knn::paper(6);
        let labels = |n, c| match Executor::new(deployment(n, c)).run(&app, &ds).final_state {
            KnnState::Done { labels, .. } => labels,
            _ => panic!(),
        };
        let base = labels(1, 1);
        assert_eq!(base, labels(4, 8));
        assert_eq!(base, labels(8, 16));
    }

    #[test]
    fn queries_on_blobs_get_blob_labels() {
        let seed = 21;
        let ds = generate("knn-acc", 2.0, 0.01, seed);
        // Build queries exactly at the planted centers.
        let mut rng = stream_rng(seed, "knn-data");
        let centers: Vec<[f32; DIM]> =
            (0..NUM_CLASSES).map(|_| std::array::from_fn(|_| rng.gen_range(15.0..85.0))).collect();
        let app = Knn { k: 9, queries: centers.clone() };
        let run = Executor::new(deployment(1, 2)).run(&app, &ds);
        match run.final_state {
            KnnState::Done { labels, .. } => {
                for (i, &l) in labels.iter().enumerate() {
                    assert_eq!(l as usize, i, "query at center {i} misclassified");
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn best_list_keeps_k_smallest_sorted() {
        let mut l = BestList::new(3);
        for d in [5.0f32, 1.0, 4.0, 2.0, 3.0] {
            l.push(Neighbor { dist_sq: d, label: d as u32 });
        }
        let dists: Vec<f32> = l.items.iter().map(|n| n.dist_sq).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn best_list_merge_is_order_independent() {
        let ns: Vec<Neighbor> =
            (0..20).map(|i| Neighbor { dist_sq: ((i * 7) % 13) as f32, label: i }).collect();
        let build = |order: &[usize]| {
            let mut l = BestList::new(5);
            for &i in order {
                l.push(ns[i]);
            }
            l.items
        };
        let fwd: Vec<usize> = (0..20).collect();
        let rev: Vec<usize> = (0..20).rev().collect();
        assert_eq!(build(&fwd), build(&rev));
    }

    #[test]
    fn single_pass_and_no_cache() {
        let ds = generate("knn-1p", 2.0, 0.01, 13);
        let app = Knn::paper(1);
        let run = Executor::new(deployment(1, 1)).run(&app, &ds);
        assert_eq!(run.report.num_passes(), 1);
    }
}
