//! k-means clustering (§4.1 of the paper).
//!
//! Points are partitioned among the nodes; each node accumulates, per
//! cluster, the local sum of its assigned points and their count; the
//! global reduction combines the local sums and moves the centers.
//!
//! Classes: the reduction object is `k` centroid accumulators —
//! **constant** size; the global reduction merges `c` fixed-size objects
//! — **linear-constant** (`T_g ∝ c`, independent of dataset size).

use crate::common::{chunk_sizes, dist_sq, physical_elements};
use fg_chunks::{codec, Chunk, Dataset, DatasetBuilder};
use fg_middleware::{ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter};
use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dimensionality of the point space.
pub const DIM: usize = 8;
/// Bytes per point on the wire.
pub const BYTES_PER_POINT: usize = DIM * 4;
/// Logical chunk size: 2 MB, "manageable for the repository nodes".
const CHUNK_BYTES: u64 = 2_000_000;

/// Generate a clustered point dataset: `k_true` Gaussian blobs in
/// `[0, 100]^DIM` plus 5% uniform background noise.
pub fn generate(id: &str, nominal_mb: f64, scale: f64, seed: u64, k_true: usize) -> Dataset {
    let total = physical_elements(nominal_mb, scale, BYTES_PER_POINT);
    let mut rng = stream_rng(seed, "kmeans-data");
    let centers: Vec<[f32; DIM]> =
        (0..k_true).map(|_| std::array::from_fn(|_| rng.gen_range(10.0..90.0))).collect();
    let per_chunk = (CHUNK_BYTES as f64 * scale / BYTES_PER_POINT as f64).max(1.0) as u64;
    let mut builder = DatasetBuilder::new(id, "kmeans-points", scale);
    for count in chunk_sizes(total, per_chunk, 16) {
        let mut vals = Vec::with_capacity(count as usize * DIM);
        for _ in 0..count {
            if rng.gen_bool(0.05) {
                for _ in 0..DIM {
                    vals.push(rng.gen_range(0.0f32..100.0));
                }
            } else {
                let c = &centers[rng.gen_range(0..k_true)];
                for d in 0..DIM {
                    // Sum of three uniforms: cheap approximately-normal
                    // jitter with sigma ~= 2.9.
                    let jitter: f32 = rng.gen_range(-5.0f32..5.0)
                        + rng.gen_range(-5.0f32..5.0)
                        + rng.gen_range(-5.0f32..5.0);
                    vals.push(c[d] + jitter * 0.58);
                }
            }
        }
        builder.push_chunk(codec::encode_f32s(&vals), count, None);
    }
    builder.build()
}

/// The broadcast state: current centers and the pass counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansState {
    /// Current cluster centers.
    pub centroids: Vec<[f32; DIM]>,
    /// Passes completed so far.
    pub pass: usize,
    /// Sum of squared distances from the previous assignment (for
    /// monitoring convergence).
    pub sse: f64,
}

/// Per-node accumulator: per-cluster coordinate sums and counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansObj {
    sums: Vec<[f64; DIM]>,
    counts: Vec<u64>,
    sse: f64,
}

impl ReductionObject for KMeansObj {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        for (s, o) in self.sums.iter_mut().zip(other.sums.iter()) {
            for d in 0..DIM {
                s[d] += o[d];
            }
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.sse += other.sse;
        meter.fixed_flops((self.sums.len() * (DIM + 1)) as u64 + 1);
        meter.fixed_mem((self.sums.len() * (DIM + 1)) as u64);
    }

    fn size(&self) -> ObjSize {
        ObjSize { fixed: (self.sums.len() * (DIM * 8 + 8) + 8) as u64, data: 0 }
    }
}

/// The k-means application: `k` clusters, a fixed number of passes.
///
/// The pass count is fixed (rather than convergence-tested) so identical
/// datasets take identical passes on every configuration — the property
/// the profile-based prediction model relies on.
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Scan passes over the data.
    pub passes: usize,
    /// Seed for initial center placement.
    pub seed: u64,
}

impl KMeans {
    /// Standard instance used by the experiments: k=8, 10 passes.
    pub fn paper(seed: u64) -> KMeans {
        KMeans { k: 8, passes: 10, seed }
    }
}

impl ReductionApp for KMeans {
    type Obj = KMeansObj;
    type State = KMeansState;

    fn name(&self) -> &str {
        "kmeans"
    }

    fn initial_state(&self) -> KMeansState {
        let mut rng = stream_rng(self.seed, "kmeans-init");
        KMeansState {
            centroids: (0..self.k)
                .map(|_| std::array::from_fn(|_| rng.gen_range(0.0..100.0)))
                .collect(),
            pass: 0,
            sse: f64::INFINITY,
        }
    }

    fn new_object(&self, _: &KMeansState) -> KMeansObj {
        KMeansObj { sums: vec![[0.0; DIM]; self.k], counts: vec![0; self.k], sse: 0.0 }
    }

    fn local_reduce(
        &self,
        state: &KMeansState,
        chunk: &Chunk,
        obj: &mut KMeansObj,
        meter: &mut WorkMeter,
    ) {
        let vals = codec::decode_f32s(&chunk.payload);
        let points = vals.chunks_exact(DIM);
        let n = points.len() as u64;
        for p in points {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (ci, c) in state.centroids.iter().enumerate() {
                let d = dist_sq(p, c);
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            for d in 0..DIM {
                obj.sums[best][d] += p[d] as f64;
            }
            obj.counts[best] += 1;
            obj.sse += best_d as f64;
        }
        // Per point: k distances of 3*DIM flops, k compares, DIM+1
        // accumulator updates, DIM element loads.
        meter.data_flops(n * (self.k as u64 * 3 * DIM as u64 + DIM as u64 + 1));
        meter.data_cmp(n * self.k as u64);
        meter.data_mem(n * DIM as u64 * 2);
    }

    fn global_finalize(
        &self,
        state: &KMeansState,
        merged: KMeansObj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<KMeansState> {
        let centroids = merged
            .sums
            .iter()
            .zip(merged.counts.iter())
            .zip(state.centroids.iter())
            .map(|((sum, &count), old)| {
                if count == 0 {
                    *old // empty cluster keeps its center
                } else {
                    std::array::from_fn(|d| (sum[d] / count as f64) as f32)
                }
            })
            .collect();
        meter.fixed_flops((self.k * DIM) as u64);
        let next = KMeansState { centroids, pass: state.pass + 1, sse: merged.sse };
        if next.pass >= self.passes {
            PassOutcome::Finished(next)
        } else {
            PassOutcome::NextPass(next)
        }
    }

    fn state_size(&self, _: &KMeansState) -> ObjSize {
        ObjSize { fixed: (self.k * DIM * 4 + 16) as u64, data: 0 }
    }

    fn caches(&self) -> bool {
        true
    }
}

/// Sequential reference: plain Lloyd iterations over all points at once.
/// Used by tests to check the middleware run computes the same thing.
pub fn reference_kmeans(
    points: &[f32],
    mut centroids: Vec<[f32; DIM]>,
    passes: usize,
) -> (Vec<[f32; DIM]>, f64) {
    let mut sse = f64::INFINITY;
    for _ in 0..passes {
        let mut sums = vec![[0.0f64; DIM]; centroids.len()];
        let mut counts = vec![0u64; centroids.len()];
        sse = 0.0;
        for p in points.chunks_exact(DIM) {
            let (best, best_d) = centroids
                .iter()
                .enumerate()
                .map(|(i, c)| (i, dist_sq(p, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one centroid");
            for d in 0..DIM {
                sums[best][d] += p[d] as f64;
            }
            counts[best] += 1;
            sse += best_d as f64;
        }
        for (i, c) in centroids.iter_mut().enumerate() {
            if counts[i] > 0 {
                *c = std::array::from_fn(|d| (sums[i][d] / counts[i] as f64) as f32);
            }
        }
    }
    (centroids, sse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::MB;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
    use fg_middleware::Executor;

    fn small_dataset() -> Dataset {
        generate("km-test", 4.0, 0.01, 42, 4)
    }

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    fn all_points(ds: &Dataset) -> Vec<f32> {
        ds.chunks.iter().flat_map(|c| codec::decode_f32s(&c.payload)).collect()
    }

    #[test]
    fn generator_hits_requested_size() {
        let ds = small_dataset();
        let expect = physical_elements(4.0, 0.01, BYTES_PER_POINT);
        assert_eq!(ds.elements(), expect);
        assert!(ds.num_chunks() >= 16);
        // Logical size is the nominal 4 MB within rounding.
        let logical = ds.logical_bytes() as f64;
        assert!((logical - 4.0 * MB).abs() / (4.0 * MB) < 0.01, "{logical}");
    }

    #[test]
    fn middleware_matches_sequential_reference() {
        let ds = small_dataset();
        let app = KMeans { k: 4, passes: 5, seed: 7 };
        let run = Executor::new(deployment(2, 4)).run(&app, &ds);
        let (ref_centroids, ref_sse) =
            reference_kmeans(&all_points(&ds), app.initial_state().centroids, 5);
        // Same pass count means same assignment sequence; centroids agree
        // up to f32/f64 accumulation-order noise.
        for (a, b) in run.final_state.centroids.iter().zip(ref_centroids.iter()) {
            for d in 0..DIM {
                assert!((a[d] - b[d]).abs() < 1e-2, "{:?} vs {:?}", a, b);
            }
        }
        let rel = (run.final_state.sse - ref_sse).abs() / ref_sse;
        assert!(rel < 1e-5, "sse {} vs {}", run.final_state.sse, ref_sse);
    }

    #[test]
    fn result_is_configuration_independent() {
        let ds = small_dataset();
        let app = KMeans { k: 4, passes: 5, seed: 7 };
        let base = Executor::new(deployment(1, 1)).run(&app, &ds);
        for (n, c) in [(2, 2), (4, 8), (8, 16)] {
            let run = Executor::new(deployment(n, c)).run(&app, &ds);
            for (a, b) in run.final_state.centroids.iter().zip(base.final_state.centroids.iter()) {
                for d in 0..DIM {
                    assert!((a[d] - b[d]).abs() < 1e-2, "config {n}-{c}");
                }
            }
        }
    }

    #[test]
    fn recovers_planted_centers() {
        let ds = generate("km-plant", 4.0, 0.02, 99, 3);
        // Random initialization can stall in a local optimum; the test
        // scans a few seeds and requires that at least one recovers all
        // planted blobs (deterministically — seeds are fixed).
        let run = (0..8u64)
            .map(|seed| {
                let app = KMeans { k: 3, passes: 15, seed };
                Executor::new(deployment(1, 2)).run(&app, &ds)
            })
            .min_by(|a, b| a.final_state.sse.total_cmp(&b.final_state.sse))
            .unwrap();
        // Every fitted centroid should sit near one of the planted blobs:
        // regenerate the centers the generator used.
        let mut rng = stream_rng(99, "kmeans-data");
        let planted: Vec<[f32; DIM]> =
            (0..3).map(|_| std::array::from_fn(|_| rng.gen_range(10.0..90.0))).collect();
        for c in &run.final_state.centroids {
            let nearest =
                planted.iter().map(|p| dist_sq(c, p).sqrt()).fold(f32::INFINITY, f32::min);
            assert!(nearest < 12.0, "centroid {:?} far from any planted center", c);
        }
    }

    #[test]
    fn sse_decreases_over_passes() {
        let ds = small_dataset();
        let pts = all_points(&ds);
        let app = KMeans { k: 4, passes: 1, seed: 7 };
        let mut prev = f64::INFINITY;
        for passes in [2usize, 4, 8] {
            let (_, sse) = reference_kmeans(&pts, app.initial_state().centroids, passes);
            assert!(sse <= prev * (1.0 + 1e-9), "sse rose: {sse} > {prev}");
            prev = sse;
        }
    }

    #[test]
    fn object_size_is_constant_class() {
        let app = KMeans { k: 8, passes: 1, seed: 1 };
        let st = app.initial_state();
        let o = app.new_object(&st);
        assert_eq!(o.size().data, 0, "k-means is the constant object-size class");
        assert!(o.size().fixed > 0);
    }

    #[test]
    fn runs_expected_pass_count() {
        let ds = small_dataset();
        let app = KMeans { k: 2, passes: 3, seed: 1 };
        let run = Executor::new(deployment(1, 1)).run(&app, &ds);
        assert_eq!(run.report.num_passes(), 3);
        assert_eq!(run.final_state.pass, 3);
    }

    #[test]
    fn empty_cluster_keeps_its_center() {
        // Place k=2 with a far-away initial center that captures nothing.
        let vals = vec![1.0f32; DIM * 10];
        let mut b = DatasetBuilder::new("d", "t", 1.0);
        b.push_chunk(codec::encode_f32s(&vals), 10, None);
        let ds = b.build();
        let app = KMeans { k: 2, passes: 1, seed: 5 };
        let mut state = app.initial_state();
        state.centroids = vec![[1.0; DIM], [1000.0; DIM]];
        let mut obj = app.new_object(&state);
        let mut meter = WorkMeter::new();
        app.local_reduce(&state, &ds.chunks[0], &mut obj, &mut meter);
        match app.global_finalize(&state, obj, &mut meter) {
            PassOutcome::Finished(s) | PassOutcome::NextPass(s) => {
                assert_eq!(s.centroids[1], [1000.0; DIM]);
                assert_eq!(s.centroids[0], [1.0; DIM]);
            }
        }
    }
}
