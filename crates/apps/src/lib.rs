//! # fg-apps — the FREERIDE-G application suite
//!
//! The five applications of the paper's evaluation (§4), implemented
//! against the generalized-reduction API with seeded synthetic dataset
//! generators, plus apriori association mining (named in §2.2) as an
//! extension:
//!
//! | module | application | reduction-object class | global-reduction class | passes |
//! |--------|-------------|------------------------|------------------------|--------|
//! | [`kmeans`] | k-means clustering | constant | linear-constant | fixed iterations |
//! | [`em`] | expectation-maximization clustering | linear (diagnostic buffer ∝ data) | constant-linear | 2 per EM iteration |
//! | [`knn`] | k-nearest-neighbor search | constant | linear-constant | 1 |
//! | [`vortex`] | CFD vortex detection | linear (feature lists ∝ data) | constant-linear | 1 |
//! | [`defect`] | molecular defect detection + categorization | linear | constant-linear | 2 |
//! | [`apriori`] | association mining (extension) | constant | linear-constant | ≥ 2 |
//! | [`ann`] | neural-network training (extension) | constant | linear-constant | epochs |
//!
//! Every module carries a synthetic generator with *planted structure*
//! (mixtures, vortices, lattice defects) so the kernels do real,
//! data-dependent work, a sequential reference implementation, and tests
//! that the middleware run recovers the planted answer on any
//! configuration.

#![warn(missing_docs)]
// The kernels walk several fixed-DIM arrays in lockstep; plain index
// loops keep that math readable where zipped iterators would not.
#![allow(clippy::needless_range_loop)]

pub mod ann;
pub mod apriori;
pub mod common;
pub mod defect;
pub mod em;
pub mod kmeans;
pub mod knn;
pub mod vortex;
