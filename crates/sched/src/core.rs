//! The extracted scheduling decision core.
//!
//! [`crate::sched::Scheduler::run`] used to own the whole event loop as
//! one batch function: locals for the queue, the running set, the
//! bandwidth estimators, and the fluid clock, consumed in a single
//! pass over a complete job list. A long-running service cannot drive
//! that shape — jobs arrive one request at a time, prediction queries
//! interleave with submissions, and concurrent readers need a coherent
//! view of scheduler state without a lock on the hot path. This module
//! splits the batch function into:
//!
//! * [`SchedCore`] — the same event loop as an incremental state
//!   machine. [`SchedCore::submit`] feeds one job and advances the sim
//!   clock exactly to its arrival; [`SchedCore::finish`] drains the
//!   grid and produces the [`SchedResult`]. `Scheduler::run` is now a
//!   thin wrapper (load everything, drain), so the sim loop, `fg-serve`,
//!   and the test suites all drive *this* code — and a submission
//!   stream replayed through the incremental API is bit-identical to
//!   the batch run, because arrivals are integration horizons in both.
//! * [`SchedSnapshot`] — an immutable, cheaply-cloned view of the
//!   decision state (bandwidth estimates, free slices, backlog).
//!   Every query method takes `&self`: ranking placements and quoting
//!   admission estimates against a snapshot needs no mutable access
//!   and therefore no lock, which is what lets `fg-serve` answer
//!   prediction queries from a worker pool while the core thread owns
//!   the clock.
//!
//! The incremental/batch equivalence is structural, not approximate:
//! the batch loop never integrates the fluid network model past the
//! next arrival (arrivals bound the horizon), so stopping the machine
//! at each arrival instant splits no integration step that the batch
//! run would have taken whole. Equal-arrival submissions join the same
//! arrival batch mid-iteration, exactly as the batch arrival loop
//! consumed them. `tests/serve_differential.rs` pins the equivalence
//! bit-for-bit across workload shapes.

use crate::grid::GridSpec;
use crate::ledger::AccuracySample;
use crate::placement::{
    uncached_best_placement, uncached_standalone_placement, FreeSlices, Placement, PlacementEngine,
};
use crate::policy::Policy;
use crate::sched::{
    Degradation, JobOutcome, MigrationEvent, PlacementInfo, PreemptionEvent, SchedResult,
    Scheduler, TenantQuota,
};
use crate::telemetry::{TelemetryReport, TelemetrySnapshot, TelemetryState};
use crate::workload::JobSpec;
use fg_cluster::{Configuration, DeploymentRef};
use fg_predict::bandwidth::{BandwidthEstimator, Ewma};
use fg_predict::{decide_migration, InterconnectParams, Observation, Prediction, Predictor};
use fg_sim::{FairShareSim, Flow, ResourceId, SimTime};
use fg_trace::{Counter, Gauge, Histogram, SpanKind, Trace, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Clock comparison slop, seconds.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// A job waiting in the scheduler queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedJob {
    /// The submitted job.
    pub(crate) spec: JobSpec,
    /// Standalone predicted execution time.
    pub(crate) standalone: f64,
    /// Deadline instant, when one applies.
    pub(crate) deadline: Option<f64>,
}

/// An `f64` ordered by `total_cmp` so it can key a [`BTreeSet`]. The
/// ordering matches the comparator the per-pass policy sort used, so
/// the maintained index visits jobs in exactly the order the sort
/// produced.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderKey(f64);

impl Eq for OrderKey {}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The scheduler queue, indexed for the hot loop.
///
/// The original `Vec<QueuedJob>` forced three O(queue) rescans per
/// scheduling pass — the policy sort, the fair-share demand tally, and
/// the admission backlog sum — which goes quadratic on long traces
/// once the grid saturates and a backlog accumulates. Every policy's
/// ordering key is fixed at enqueue time (arrival, standalone
/// prediction, or deadline), so all three can be maintained
/// incrementally instead:
///
/// * `jobs` — by submission id. Arrivals enqueue in id order, so
///   iteration yields the same sequence the old `Vec` did (pushes at
///   the tail, order-preserving removals).
/// * `order` — `(policy key, id, tenant)` triples; iteration is the
///   policy order the per-pass sort produced, bit-identically (ids
///   are unique, so the trailing tenant never influences the order —
///   it rides along so walks can skip jobs without a `jobs` lookup).
/// * `by_tenant` — the same entries split per tenant, so the round-1
///   quota walk can merge only the under-quota tenants' jobs in
///   global policy order instead of scanning every queued job to
///   skip the capped ones (the dominant cost on saturated traces:
///   ~Q skipped entries per start).
/// * `backlog_slot_secs` — running Σ standalone·min_slots for the
///   submission-time completion estimate. An incremental float sum
///   can differ from the old front-to-back resum in the last bits
///   after dequeues, which only nudges the *reported* admission
///   estimate; placement decisions never read it.
#[derive(Debug)]
pub(crate) struct PolicyQueue {
    policy: Policy,
    jobs: BTreeMap<usize, QueuedJob>,
    order: BTreeSet<(OrderKey, usize, usize)>,
    by_tenant: Vec<BTreeSet<(OrderKey, usize)>>,
    backlog_slot_secs: f64,
    min_slots: usize,
}

impl PolicyQueue {
    fn new(policy: Policy, min_slots: usize) -> PolicyQueue {
        PolicyQueue {
            policy,
            jobs: BTreeMap::new(),
            order: BTreeSet::new(),
            by_tenant: Vec::new(),
            backlog_slot_secs: 0.0,
            min_slots,
        }
    }

    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queued jobs in submission-id order (the old `Vec` order).
    fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.values()
    }

    fn queued_for(&self, tenant: usize) -> usize {
        self.by_tenant.get(tenant).map_or(0, |s| s.len())
    }

    fn push(&mut self, job: QueuedJob) {
        let (metric, id) = self.policy.key(&job);
        if job.spec.tenant >= self.by_tenant.len() {
            self.by_tenant.resize(job.spec.tenant + 1, BTreeSet::new());
        }
        self.by_tenant[job.spec.tenant].insert((OrderKey(metric), id));
        self.backlog_slot_secs += job.standalone * self.min_slots as f64;
        self.order.insert((OrderKey(metric), id, job.spec.tenant));
        let prev = self.jobs.insert(id, job);
        assert!(prev.is_none(), "job {id} queued twice");
    }

    fn remove(&mut self, id: usize) -> QueuedJob {
        let job = self.jobs.remove(&id).expect("removed job is queued");
        let (metric, _) = self.policy.key(&job);
        self.order.remove(&(OrderKey(metric), id, job.spec.tenant));
        self.by_tenant[job.spec.tenant].remove(&(OrderKey(metric), id));
        self.backlog_slot_secs -= job.standalone * self.min_slots as f64;
        job
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Disk {
        until: f64,
    },
    Network,
    /// Checkpoint-and-switch pause of a mid-run migration; the transfer
    /// resumes (on the new repository) when `until` passes.
    Migrating {
        until: f64,
    },
    Compute {
        until: f64,
    },
}

#[derive(Debug, Clone)]
struct Running {
    /// Index into the outcomes vector (== JobSpec id position).
    slot: usize,
    tenant: usize,
    repo: usize,
    site: usize,
    config: Configuration,
    predicted: Prediction,
    placed_at: f64,
    phase: Phase,
    bytes: f64,
    net_started: f64,
    net_remaining: f64,
    net_cap: f64,
    /// The per-stream WAN bandwidth the placement prediction used;
    /// the baseline for converting an observed stretch back into an
    /// equivalent bandwidth sample.
    placed_bw: f64,
    disk_end: Option<f64>,
    network_end: Option<f64>,
    /// Bytes the fluid model expected this transfer to have moved
    /// under fair-share contention with *undegraded* rate caps — the
    /// migration trigger's baseline (accumulated only when migration
    /// is enabled).
    net_expected: f64,
    /// Deadline instant, for preemption ordering.
    deadline: Option<f64>,
    /// Reduction-object bytes a checkpoint of this job would move.
    max_obj_bytes: u64,
    /// Suppress the bandwidth-feedback sample: a preempted or migrated
    /// transfer's elapsed time is not a clean observation.
    no_feedback: bool,
}

/// What was left of a preempted job's current phase.
#[derive(Debug, Clone, Copy)]
enum RemainingPhase {
    Disk(f64),
    Network(f64),
    Compute(f64),
}

/// A checkpointed job waiting to re-occupy its nodes.
#[derive(Debug, Clone)]
struct Suspended {
    job: Running,
    remaining: RemainingPhase,
}

/// How a job got its nodes in a scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StartKind {
    /// Round 1: the tenant was under its fair-share quota.
    UnderQuota,
    /// Round 2: past quota, but the nodes were otherwise idle.
    Backfill,
    /// The start was enabled by checkpointing a looser-deadline job
    /// off its nodes; deadline urgency overrides fair shares.
    Preempt,
}

/// The rate multiplier degradations impose on `repo`'s transfers at
/// instant `now` (1.0 when none applies).
fn degrade_factor(degradations: &[Degradation], repo: usize, now: f64) -> f64 {
    degradations
        .iter()
        .filter(|d| d.repo == repo && now >= d.start - TIME_EPS)
        .map(|d| d.factor)
        .fold(1.0, f64::min)
}

/// Why [`SchedCore::submit`] refused a job. The incremental API is a
/// live protocol surface, so malformed submissions get typed errors
/// instead of the batch entry point's panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// A job with this id was already submitted.
    Duplicate {
        /// The repeated submission id.
        id: usize,
    },
    /// Submissions must arrive in nondecreasing `(arrival, id)` order:
    /// the sim clock has already integrated past this instant.
    OutOfOrder {
        /// The offending submission id.
        id: usize,
        /// Its arrival instant.
        arrival: f64,
        /// The latest `(arrival, id)` already accepted.
        last: (f64, usize),
    },
    /// The arrival instant is NaN, infinite, or negative — the sim
    /// clock cannot order it.
    BadArrival {
        /// The offending submission id.
        id: usize,
        /// The unusable arrival value.
        arrival: f64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Duplicate { id } => write!(f, "job id {id} already submitted"),
            SubmitError::OutOfOrder { id, arrival, last } => write!(
                f,
                "job {id} arrives at {arrival} behind the accepted stream (last arrival {} id {})",
                last.0, last.1
            ),
            SubmitError::BadArrival { id, arrival } => {
                write!(f, "job {id} has unusable arrival {arrival}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// What admission decided about one submission, returned synchronously
/// by [`SchedCore::submit`] (the wire protocol's submit response).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitOutcome {
    /// The submission id.
    pub id: usize,
    /// Whether the job entered the queue.
    pub admitted: bool,
    /// Why it was rejected, when it was.
    pub reject_reason: Option<String>,
    /// Standalone predicted execution time (empty-grid baseline).
    pub standalone: Option<f64>,
    /// Deadline instant derived from the slack.
    pub deadline: Option<f64>,
    /// Predicted completion instant at submission.
    pub admission_estimate: Option<f64>,
}

/// A coarse live view of the core's progress (the wire protocol's
/// stats response).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Sim-clock instant the machine has advanced to.
    pub now: f64,
    /// Last completion instant so far.
    pub makespan: f64,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Jobs rejected at submission.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently occupying grid nodes.
    pub running: usize,
    /// Jobs checkpointed off their nodes awaiting resume.
    pub suspended: usize,
}

/// One scheduling decision, emitted in decision order when the event
/// log is enabled ([`SchedCore::with_event_log`]). `fg-serve` streams
/// these to subscribed clients as they happen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoreEvent {
    /// A submission was admitted or rejected.
    Submitted {
        /// Submission id.
        id: usize,
        /// Tenant index.
        tenant: usize,
        /// Whether the job entered the queue.
        admitted: bool,
        /// Rejection reason, when rejected.
        reject_reason: Option<String>,
        /// Predicted completion instant, when one was computed.
        estimate: Option<f64>,
    },
    /// A queued job occupied its nodes.
    Placed {
        /// Submission id.
        id: usize,
        /// Sim-clock instant.
        at: f64,
        /// Repository name.
        repo: String,
        /// Site name.
        site: String,
        /// Configuration label.
        config: String,
        /// Predicted execution time of the chosen placement.
        predicted: f64,
    },
    /// A running job finished.
    Completed {
        /// Submission id.
        id: usize,
        /// Completion instant.
        at: f64,
        /// Whether the deadline was met, when one applied.
        met_deadline: Option<bool>,
    },
    /// A running job was checkpointed off its nodes.
    Preempted {
        /// Submission id.
        id: usize,
        /// Eviction instant.
        at: f64,
    },
    /// A suspended job re-occupied nodes.
    Resumed {
        /// Submission id.
        id: usize,
        /// Resume instant.
        at: f64,
    },
    /// A running transfer switched repositories.
    Migrated {
        /// Submission id.
        id: usize,
        /// Switch instant.
        at: f64,
        /// Repository the job was fetching from.
        from_repo: String,
        /// Repository it fetches from afterwards.
        to_repo: String,
    },
    /// The accuracy ledger detected predictor drift (only emitted when
    /// telemetry is armed; see [`Scheduler::with_telemetry`]).
    ///
    /// [`Scheduler::with_telemetry`]: crate::sched::Scheduler::with_telemetry
    DriftAlarm {
        /// The alarm the tripping completion raised.
        alarm: crate::ledger::DriftAlarm,
    },
}

/// The scheduler's per-run metric instruments, registered once at
/// construction in the exact order the batch loop registered them (the
/// golden traces pin the registry contents).
struct Instruments {
    submitted: Counter,
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    misses: Counter,
    backfill: Counter,
    depth: Gauge,
    depth_max: Gauge,
    wait: Histogram,
    slow: Histogram,
    quota_rej: Option<Counter>,
    quota_vio: Option<Counter>,
    preempt: Option<Counter>,
    migrate: Option<Counter>,
    ckpt: Option<Counter>,
}

/// The incremental scheduling state machine — the decision core
/// extracted from `Scheduler::run`.
///
/// Construction takes the scheduler *configuration* (grid, policy,
/// feature opt-ins); jobs are fed either one at a time through
/// [`submit`](SchedCore::submit) (the service path; arrivals must be
/// nondecreasing) or wholesale through `Scheduler::run` (the batch
/// path, which sorts internally). Both paths execute the identical
/// event loop and produce bit-identical [`SchedResult`]s for the same
/// job stream.
pub struct SchedCore {
    cfg: Scheduler,
    grid: Arc<GridSpec>,
    nrepo: usize,
    total_slots: usize,
    min_slots: usize,
    net: FairShareSim,
    free: FreeSlices,
    full: FreeSlices,
    bw: Vec<f64>,
    engine: PlacementEngine,
    estimators: Vec<Ewma>,
    used_slots: Vec<usize>,
    buckets: Vec<(TenantQuota, f64, f64)>,
    suspended: Vec<Suspended>,
    tracer: Option<Tracer>,
    inst: Instruments,
    jobs: Vec<JobSpec>,
    outcomes: Vec<Option<JobOutcome>>,
    slot_map: HashMap<usize, usize>,
    /// Slots sorted by `(arrival, id)`; `next` is the consumption
    /// cursor — exactly the batch loop's `order`/`next` pair.
    order: Vec<usize>,
    next: usize,
    queue: PolicyQueue,
    running: Vec<Running>,
    violations: Vec<String>,
    now: f64,
    makespan: f64,
    depth_max: usize,
    iterations: usize,
    /// True between an iteration's arrival batch and its tail
    /// (transitions, pass, integration): the machine parks here
    /// between incremental submissions so equal-arrival jobs join the
    /// same batch, exactly as the batch arrival loop consumed them.
    tail_pending: bool,
    events: Option<Vec<CoreEvent>>,
    telemetry: Option<TelemetryState>,
}

impl SchedCore {
    /// A fresh decision core for `scheduler`'s configuration, at sim
    /// time zero with an idle grid.
    pub fn new(scheduler: Scheduler) -> SchedCore {
        let grid = &scheduler.grid;
        assert!(
            !grid.repos.is_empty() && !grid.sites.is_empty() && !grid.configs.is_empty(),
            "grid must have repositories, sites, and configurations"
        );
        let nrepo = grid.repos.len();
        let total_slots = grid.total_compute_slots();
        let min_slots = grid.min_config_slots();
        let capacities: Vec<f64> = grid
            .repos
            .iter()
            .map(|r| r.wan_capacity)
            .chain(grid.sites.iter().map(|s| s.ingress_capacity))
            .collect();
        let net = FairShareSim::new(capacities);
        let max_data: Vec<usize> = grid.repos.iter().map(|r| r.site.max_nodes).collect();
        let max_cmp: Vec<usize> = grid.sites.iter().map(|s| s.site.max_nodes).collect();
        let free = FreeSlices::new(max_data.clone(), max_cmp.clone());
        // The whole-grid slices admission estimates are computed
        // against (a job's corrected prediction assumes it eventually
        // gets its best placement, not the currently free one).
        let full = FreeSlices::new(max_data, max_cmp);
        let bw: Vec<f64> = grid.repos.iter().map(|r| r.wan.stream_bw).collect();
        let mut engine = PlacementEngine::new(grid);
        if scheduler.parallel_scoring {
            engine = engine.with_parallel();
        }
        if scheduler.naive_placement {
            engine = engine.with_naive();
        }
        let estimators: Vec<Ewma> = (0..nrepo).map(|_| Ewma::new(scheduler.ewma_alpha)).collect();
        // Token buckets start full; refill lazily at each arrival.
        let buckets: Vec<(TenantQuota, f64, f64)> = scheduler
            .quotas
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .map(|&q| (q, q.capacity, 0.0))
            .collect();

        let tracer = Tracer::new();
        let inst = Instruments {
            submitted: tracer.metrics.counter("sched_jobs_submitted"),
            admitted: tracer.metrics.counter("sched_jobs_admitted"),
            rejected: tracer.metrics.counter("sched_jobs_rejected"),
            completed: tracer.metrics.counter("sched_jobs_completed"),
            misses: tracer.metrics.counter("sched_deadline_misses"),
            backfill: tracer.metrics.counter("sched_backfill_starts"),
            depth: tracer.metrics.gauge("sched_queue_depth"),
            depth_max: tracer.metrics.gauge("sched_queue_depth_max"),
            wait: tracer
                .metrics
                .histogram("sched_wait_seconds", &[1.0, 5.0, 15.0, 60.0, 300.0, 1800.0]),
            slow: tracer
                .metrics
                .histogram("sched_slowdown", &[1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0]),
            // Feature counters exist only when the feature is on, so a
            // default-configured run's metrics snapshot (and its golden
            // traces) are unchanged.
            quota_rej: scheduler
                .quotas
                .as_ref()
                .map(|_| tracer.metrics.counter("sched_quota_rejections")),
            quota_vio: scheduler
                .quotas
                .as_ref()
                .map(|_| tracer.metrics.counter("sched_quota_violations")),
            preempt: scheduler.preemption.map(|_| tracer.metrics.counter("sched_preemptions")),
            migrate: scheduler.migration.map(|_| tracer.metrics.counter("sched_migrations")),
            ckpt: (scheduler.preemption.is_some() || scheduler.migration.is_some())
                .then(|| tracer.metrics.counter("sched_checkpoints")),
        };

        let queue = PolicyQueue::new(scheduler.policy, min_slots);
        let grid_arc = Arc::new(scheduler.grid.clone());
        let telemetry = scheduler.telemetry.clone().map(TelemetryState::new);
        SchedCore {
            cfg: scheduler,
            grid: grid_arc,
            nrepo,
            total_slots,
            min_slots,
            net,
            free,
            full,
            bw,
            engine,
            estimators,
            used_slots: Vec::new(),
            buckets,
            suspended: Vec::new(),
            tracer: Some(tracer),
            inst,
            jobs: Vec::new(),
            outcomes: Vec::new(),
            slot_map: HashMap::new(),
            order: Vec::new(),
            next: 0,
            queue,
            running: Vec::new(),
            violations: Vec::new(),
            now: 0.0,
            makespan: 0.0,
            depth_max: 0,
            iterations: 0,
            tail_pending: false,
            events: None,
            telemetry,
        }
    }

    /// Record a [`CoreEvent`] per scheduling decision, drained with
    /// [`take_events`](SchedCore::take_events). Off by default: the
    /// batch path never pays for the log.
    pub fn with_event_log(mut self) -> SchedCore {
        self.events = Some(Vec::new());
        self
    }

    /// The sim-clock instant the machine has advanced to.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The policy this core applies.
    pub fn policy(&self) -> Policy {
        self.cfg.policy
    }

    /// The grid this core schedules over.
    pub fn grid(&self) -> &Arc<GridSpec> {
        &self.grid
    }

    fn emit(&mut self, event: CoreEvent) {
        if let Some(log) = &mut self.events {
            log.push(event);
        }
    }

    /// Drain the decision events recorded since the last call (empty
    /// unless [`with_event_log`](SchedCore::with_event_log) was used).
    pub fn take_events(&mut self) -> Vec<CoreEvent> {
        self.events.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Freeze the telemetry plane at the current instant (`None` when
    /// telemetry is off). `&mut` because reading the sliding windows
    /// rotates expired buckets out; the decision state is untouched.
    pub fn telemetry_snapshot(&mut self) -> Option<TelemetrySnapshot> {
        let now = self.now;
        self.telemetry.as_mut().map(|t| t.snapshot(now))
    }

    /// The telemetry change counter — bumps on every completion, so a
    /// publisher can skip snapshots that cannot have changed. Always 0
    /// when telemetry is off.
    pub fn telemetry_epoch(&self) -> u64 {
        self.telemetry.as_ref().map_or(0, TelemetryState::epoch)
    }

    /// The accuracy ledger's newest `n` retained samples, in ingestion
    /// order (empty when telemetry is off) — the flight recorder's
    /// ledger tail.
    pub fn ledger_tail(&self, n: usize) -> Vec<AccuracySample> {
        self.telemetry.as_ref().map_or_else(Vec::new, |t| t.ledger().tail(n))
    }

    /// Submit one job and advance the machine to its arrival instant.
    /// Returns the admission decision (the job's outcome so far).
    ///
    /// The incremental path requires nondecreasing `(arrival, id)`
    /// submission order — the clock cannot run backwards — and rejects
    /// duplicates and unusable arrivals with typed errors instead of
    /// the batch path's panics.
    pub fn submit(&mut self, job: JobSpec) -> Result<SubmitOutcome, SubmitError> {
        if !job.arrival.is_finite() || job.arrival < 0.0 {
            return Err(SubmitError::BadArrival { id: job.id, arrival: job.arrival });
        }
        if self.slot_map.contains_key(&job.id) {
            return Err(SubmitError::Duplicate { id: job.id });
        }
        if let Some(&last_slot) = self.order.last() {
            let last = &self.jobs[last_slot];
            let cmp = last.arrival.total_cmp(&job.arrival).then(last.id.cmp(&job.id));
            if cmp == std::cmp::Ordering::Greater {
                return Err(SubmitError::OutOfOrder {
                    id: job.id,
                    arrival: job.arrival,
                    last: (last.arrival, last.id),
                });
            }
        }
        let id = job.id;
        let slot = self.jobs.len();
        self.slot_map.insert(id, slot);
        self.jobs.push(job);
        self.outcomes.push(None);
        self.order.push(slot);
        self.pump(false);
        let o = self.outcomes[slot].as_ref().expect("pump processed the arrival");
        Ok(SubmitOutcome {
            id,
            admitted: o.admitted,
            reject_reason: o.reject_reason.clone(),
            standalone: o.standalone,
            deadline: o.deadline,
            admission_estimate: o.admission_estimate,
        })
    }

    /// Load a whole job list the way the batch entry point did: slots
    /// in input order, arrivals sorted by `(arrival, id)`, duplicate
    /// ids a panic. The machine is not advanced; [`finish`] drains it.
    pub(crate) fn submit_all(&mut self, jobs: &[JobSpec]) {
        assert!(
            self.jobs.is_empty() && self.next == 0,
            "submit_all loads a fresh core; use submit for incremental streams"
        );
        self.jobs = jobs.to_vec();
        self.outcomes = vec![None; jobs.len()];
        self.slot_map.reserve(jobs.len());
        for (i, j) in jobs.iter().enumerate() {
            let prev = self.slot_map.insert(j.id, i);
            assert!(prev.is_none(), "duplicate job id {}", j.id);
        }
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a].arrival.total_cmp(&jobs[b].arrival).then(jobs[a].id.cmp(&jobs[b].id))
        });
        self.order = order;
    }

    /// A coarse live view of progress.
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            now: self.now,
            makespan: self.makespan,
            submitted: self.inst.submitted.get(),
            admitted: self.inst.admitted.get(),
            rejected: self.inst.rejected.get(),
            completed: self.inst.completed.get(),
            queued: self.queue.len(),
            running: self.running.len(),
            suspended: self.suspended.len(),
        }
    }

    /// An immutable view of the decision state at this instant, for
    /// lock-free `&self` prediction queries. Cloning the snapshot is
    /// cheap (an [`Arc`] for the grid plus a few small vectors), so a
    /// server can publish one per clock step and let a worker pool
    /// answer queries against it concurrently.
    pub fn snapshot(&self) -> SchedSnapshot {
        // The same backlog arithmetic the arrival block uses for
        // admission estimates: remaining predicted slot-seconds of the
        // running set, in running order, plus the queue's running sum.
        let backlog: f64 = self
            .running
            .iter()
            .map(|r| {
                (r.placed_at + r.predicted.total() - self.now).max(0.0)
                    * r.config.compute_nodes as f64
            })
            .sum::<f64>()
            + self.queue.backlog_slot_secs;
        SchedSnapshot {
            grid: Arc::clone(&self.grid),
            policy: self.cfg.policy,
            predictor: Arc::clone(&self.cfg.predictor),
            now: self.now,
            bw: self.bw.clone(),
            free_data: self.free.data().to_vec(),
            free_cmp: self.free.cmp().to_vec(),
            backlog_slot_secs: backlog,
            total_slots: self.total_slots,
            queue_depth: self.queue.len(),
            running: self.running.len(),
        }
    }

    /// Drain the grid — run the event loop until nothing is queued,
    /// running, suspended, or arriving — and produce the same
    /// [`SchedResult`] the batch entry point returns.
    pub fn finish(self) -> SchedResult {
        self.finish_with_events().0
    }

    /// [`finish`](SchedCore::finish), also returning the scheduling
    /// events the final drain produced (empty unless the event log is
    /// on) so a streaming server can flush them before the result.
    pub fn finish_with_events(mut self) -> (SchedResult, Vec<CoreEvent>) {
        self.pump(true);
        let events = self.take_events();
        let tracer = self.tracer.take().expect("finish consumes the tracer");
        if self.cfg.workload_metrics {
            // Shape-of-traffic instruments over the submitted stream,
            // computed at drain time (they describe the input, not the
            // schedule). Registering them last preserves the batch
            // registry order: standard, feature, workload.
            let mut by_arrival: Vec<&JobSpec> = self.jobs.iter().collect();
            by_arrival.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
            let sorted: Vec<JobSpec> = by_arrival.into_iter().cloned().collect();
            let stats = crate::replay::stats_of(&sorted);
            tracer.metrics.gauge("workload_burst_depth_max").set(stats.burst_depth_max as f64);
            tracer.metrics.gauge("workload_tail_mass_top1").set(stats.tail_mass_top1);
            tracer.metrics.gauge("workload_p99_dataset_mb").set(stats.p99_bytes as f64 / 1e6);
            tracer.metrics.gauge("workload_mean_gap_secs").set(stats.mean_gap);
            let size_h = tracer
                .metrics
                .histogram("workload_dataset_mb", &[16.0, 64.0, 256.0, 1024.0, 4096.0]);
            for j in &sorted {
                size_h.observe(j.dataset_bytes as f64 / 1e6);
            }
        }
        self.inst.depth_max.set(self.depth_max as f64);
        self.inst.depth.set(self.queue.len() as f64);
        let outcomes: Vec<JobOutcome> = self
            .outcomes
            .into_iter()
            .map(|o| o.expect("every submitted job gets an outcome"))
            .collect();
        let trace = build_trace(tracer, &outcomes, self.makespan);
        let telemetry = self.telemetry.take().map(|mut t| {
            let snapshot = t.snapshot(self.now);
            TelemetryReport { snapshot, ledger: t.ledger().clone() }
        });
        (
            SchedResult {
                outcomes,
                trace,
                makespan: self.makespan,
                violations: self.violations,
                telemetry,
            },
            events,
        )
    }

    /// Advance the event loop. With `drain` false, the machine stops
    /// once every known arrival is consumed, parked mid-iteration
    /// *before* the scheduling pass so later equal-arrival submissions
    /// join the same arrival batch (the batch loop's arrival while-loop
    /// consumed all due arrivals before the pass ran). With `drain`
    /// true it runs to quiescence, recording stuck-forever violations
    /// exactly as the batch loop did.
    fn pump(&mut self, drain: bool) {
        loop {
            if !self.tail_pending {
                self.iterations += 1;
                let budget = 10_000 + 200 * self.jobs.len();
                assert!(self.iterations <= budget, "scheduler event loop failed to make progress");
                self.tail_pending = true;
            }
            // --- arrivals due at `now` ---
            self.process_due_arrivals();
            if !drain && self.next >= self.order.len() {
                // Every known arrival is consumed; the next event may
                // be preceded by a future submission, so park here —
                // mid-iteration — without integrating past `now`.
                return;
            }
            self.tail_pending = false;
            // --- phase transitions and completions due at `now` ---
            self.phase_transitions();
            // --- mid-run migration check ---
            self.migration_check();
            // --- scheduling pass ---
            self.schedule_pass();
            self.inst.depth.set(self.queue.len() as f64);
            // --- horizon: next arrival, fixed-phase end, or drain ---
            let mut horizon = f64::INFINITY;
            if self.next < self.order.len() {
                horizon = self.jobs[self.order[self.next]].arrival;
            }
            for r in &self.running {
                match r.phase {
                    Phase::Disk { until }
                    | Phase::Migrating { until }
                    | Phase::Compute { until } => horizon = horizon.min(until),
                    Phase::Network => {}
                }
            }
            // A degradation onset changes the fluid rates, so the step
            // must not integrate across it.
            for d in &self.cfg.degradations {
                if d.start > self.now + TIME_EPS {
                    horizon = horizon.min(d.start);
                }
            }
            // With migration on, wake periodically while an eligible
            // transfer is in flight: the trigger compares achieved
            // against expected bandwidth, and nothing else schedules an
            // event between a transfer's start and its completion.
            if let Some(mc) = self.cfg.migration {
                let eligible = self.running.iter().any(|r| {
                    r.phase == Phase::Network
                        && self.outcomes[r.slot].as_ref().is_some_and(|o| o.migration.is_none())
                });
                if eligible {
                    horizon = horizon.min(self.now + mc.min_elapsed_secs.max(TIME_EPS));
                }
            }
            let netidx: Vec<usize> = self
                .running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.phase == Phase::Network)
                .map(|(i, _)| i)
                .collect();
            let rates: Vec<f64> = if netidx.is_empty() {
                Vec::new()
            } else {
                let flows: Vec<Flow> = netidx
                    .iter()
                    .map(|&i| Flow {
                        arrival: SimTime::ZERO,
                        demand: self.running[i].net_remaining.max(1e-9),
                        rate_cap: self.running[i].net_cap
                            * degrade_factor(
                                &self.cfg.degradations,
                                self.running[i].repo,
                                self.now,
                            ),
                        resources: vec![
                            ResourceId(self.running[i].repo),
                            ResourceId(self.nrepo + self.running[i].site),
                        ],
                    })
                    .collect();
                let active: Vec<usize> = (0..flows.len()).collect();
                self.net.instantaneous_rates(&flows, &active)
            };
            for (k, &i) in netidx.iter().enumerate() {
                assert!(rates[k] > 0.0, "max-min allocation starved an active transfer");
                horizon = horizon.min(self.now + self.running[i].net_remaining / rates[k]);
            }
            if horizon.is_infinite() {
                // Nothing running and nothing arriving. Draining, any
                // queued or suspended job left is permanently stuck —
                // record and stop. Incrementally, a future submission
                // may still unstick things, so just stop.
                if drain {
                    for q in self.queue.iter() {
                        self.violations.push(format!(
                            "job {} queued forever: no placement ever fits",
                            q.spec.id
                        ));
                    }
                    for s in &self.suspended {
                        self.violations.push(format!(
                            "job {} suspended forever: its nodes never freed",
                            self.jobs[s.job.slot].id
                        ));
                    }
                }
                return;
            }
            let dt = (horizon - self.now).max(0.0);
            // The migration trigger's baseline: what each transfer
            // would have moved this step under the same fair-share
            // contention with undegraded rate caps.
            if self.cfg.migration.is_some() && !netidx.is_empty() && dt > 0.0 {
                let exp_flows: Vec<Flow> = netidx
                    .iter()
                    .map(|&i| Flow {
                        arrival: SimTime::ZERO,
                        demand: self.running[i].net_remaining.max(1e-9),
                        rate_cap: self.running[i].net_cap,
                        resources: vec![
                            ResourceId(self.running[i].repo),
                            ResourceId(self.nrepo + self.running[i].site),
                        ],
                    })
                    .collect();
                let active: Vec<usize> = (0..exp_flows.len()).collect();
                let exp_rates = self.net.instantaneous_rates(&exp_flows, &active);
                for (k, &i) in netidx.iter().enumerate() {
                    self.running[i].net_expected += exp_rates[k] * dt;
                }
            }
            for (k, &i) in netidx.iter().enumerate() {
                self.running[i].net_remaining -= rates[k] * dt;
            }
            self.now = horizon;
        }
    }

    /// The batch loop's arrival block: admit or reject every pending
    /// job whose arrival is due at `now`.
    fn process_due_arrivals(&mut self) {
        while self.next < self.order.len()
            && self.jobs[self.order[self.next]].arrival <= self.now + TIME_EPS
        {
            let slot = self.order[self.next];
            let spec = self.jobs[slot].clone();
            self.next += 1;
            self.inst.submitted.inc();
            if spec.tenant >= self.used_slots.len() {
                // Batch sized this vector to the global tenant count up
                // front; growing it lazily is decision-neutral because
                // trailing zero-demand tenants never change a
                // water-filled allocation.
                self.used_slots.resize(spec.tenant + 1, 0);
            }
            let standalone = self
                .engine
                .standalone_placement(
                    self.cfg.predictor.as_ref(),
                    &self.cfg.grid,
                    &spec.app,
                    spec.dataset_bytes,
                )
                .map(|p| p.predicted.total());
            let mut outcome = JobOutcome {
                id: spec.id,
                tenant: spec.tenant,
                app: spec.app.clone(),
                arrival: spec.arrival,
                dataset_bytes: spec.dataset_bytes,
                admitted: false,
                reject_reason: None,
                standalone,
                deadline: standalone.map(|s| spec.arrival + spec.deadline_slack * s),
                admission_estimate: None,
                placement: None,
                placed_at: None,
                predicted: None,
                disk_end: None,
                network_end: None,
                finish: None,
                preemptions: Vec::new(),
                migration: None,
            };
            // Token-bucket gate: refill lazily, spend one token per
            // submission, reject (never queue) on an empty bucket.
            if let Some((q, tokens, last)) = self.buckets.get_mut(spec.tenant) {
                *tokens = (*tokens + q.refill_per_sec * (self.now - *last)).min(q.capacity);
                *last = self.now;
                if *tokens + TIME_EPS < 1.0 {
                    outcome.reject_reason = Some(format!(
                        "quota: tenant {} bucket has {:.2} tokens, a submission needs 1",
                        spec.tenant, *tokens
                    ));
                    self.inst.rejected.inc();
                    if let Some(c) = &self.inst.quota_rej {
                        c.inc();
                    }
                    self.finish_arrival(slot, outcome);
                    continue;
                }
                *tokens -= 1.0;
                if *tokens < -TIME_EPS {
                    // Structurally unreachable: the gate above
                    // rejects before the bucket can go negative.
                    if let Some(c) = &self.inst.quota_vio {
                        c.inc();
                    }
                }
            }
            let Some(standalone) = standalone else {
                outcome.reject_reason = Some(if self.cfg.grid.app(&spec.app).is_none() {
                    format!("unknown app {:?}", spec.app)
                } else {
                    "no feasible placement on an empty grid".to_string()
                });
                self.inst.rejected.inc();
                self.finish_arrival(slot, outcome);
                continue;
            };
            // Submission-time completion estimate: fluid backlog of
            // predicted slot-seconds over the total slots, plus the
            // load-corrected execution prediction.
            let backlog: f64 = self
                .running
                .iter()
                .map(|r| {
                    (r.placed_at + r.predicted.total() - self.now).max(0.0)
                        * r.config.compute_nodes as f64
                })
                .sum::<f64>()
                + self.queue.backlog_slot_secs;
            let corrected = self
                .engine
                .best_placement(
                    self.cfg.predictor.as_ref(),
                    &self.cfg.grid,
                    &spec.app,
                    spec.dataset_bytes,
                    &self.full,
                    &self.bw,
                    None,
                )
                .map(|p| p.predicted.total())
                .unwrap_or(standalone);
            let estimate = self.now + backlog / self.total_slots as f64 + corrected;
            outcome.admission_estimate = Some(estimate);
            if self.cfg.policy.admits() {
                let deadline = outcome.deadline.expect("deadline follows standalone");
                if estimate > deadline + TIME_EPS {
                    outcome.reject_reason = Some(format!(
                        "admission: predicted completion {estimate:.1}s past deadline {deadline:.1}s"
                    ));
                    self.inst.rejected.inc();
                    self.finish_arrival(slot, outcome);
                    continue;
                }
            }
            outcome.admitted = true;
            self.inst.admitted.inc();
            let deadline = outcome.deadline;
            self.finish_arrival(slot, outcome);
            self.queue.push(QueuedJob { spec, standalone, deadline });
            self.depth_max = self.depth_max.max(self.queue.len());
            self.inst.depth.set(self.queue.len() as f64);
        }
    }

    /// Store an arrival's outcome and emit its decision event.
    fn finish_arrival(&mut self, slot: usize, outcome: JobOutcome) {
        if self.events.is_some() {
            self.emit(CoreEvent::Submitted {
                id: outcome.id,
                tenant: outcome.tenant,
                admitted: outcome.admitted,
                reject_reason: outcome.reject_reason.clone(),
                estimate: outcome.admission_estimate,
            });
        }
        self.outcomes[slot] = Some(outcome);
    }

    /// The batch loop's transition block: advance phases due at `now`
    /// and finalize completions.
    fn phase_transitions(&mut self) {
        let mut finished: Vec<usize> = Vec::new();
        for (ri, r) in self.running.iter_mut().enumerate() {
            match r.phase {
                Phase::Disk { until } if until <= self.now + TIME_EPS => {
                    r.disk_end = Some(self.now);
                    if r.predicted.t_network > TIME_EPS && r.bytes > 0.0 {
                        r.phase = Phase::Network;
                        r.net_started = self.now;
                        r.net_remaining = r.bytes;
                        r.net_cap = r.bytes / r.predicted.t_network;
                    } else {
                        r.network_end = Some(self.now);
                        r.phase =
                            Phase::Compute { until: self.now + r.predicted.t_compute.max(0.0) };
                    }
                }
                Phase::Network if r.net_remaining <= 1e-6 * r.bytes.max(1.0) => {
                    // Convert the observed stretch into an equivalent
                    // per-stream WAN bandwidth: the model's T̂_network
                    // scales as 1/b, so a transfer predicted at
                    // bandwidth b that took `elapsed` instead of `t̂_n`
                    // behaved like bandwidth `b * t̂_n / elapsed`.
                    // Uncontended transfers reproduce their prediction
                    // exactly and leave the estimate unchanged.
                    let elapsed = self.now - r.net_started;
                    if !r.no_feedback && elapsed > TIME_EPS && r.predicted.t_network > TIME_EPS {
                        let b_eff = r.placed_bw * r.predicted.t_network / elapsed;
                        self.estimators[r.repo].observe(b_eff);
                        self.bw[r.repo] = self.estimators[r.repo].estimate();
                    }
                    r.network_end = Some(self.now);
                    r.phase = Phase::Compute { until: self.now + r.predicted.t_compute.max(0.0) };
                }
                Phase::Migrating { until } if until <= self.now + TIME_EPS => {
                    r.phase = Phase::Network;
                }
                Phase::Compute { until } if until <= self.now + TIME_EPS => {
                    finished.push(ri);
                }
                _ => {}
            }
        }
        // Completions: release nodes, finalize outcomes.
        for &ri in finished.iter().rev() {
            let r = self.running.remove(ri);
            self.free.release(r.repo, r.site, &r.config);
            self.used_slots[r.tenant] -= r.config.compute_nodes;
            self.inst.completed.inc();
            self.makespan = self.makespan.max(self.now);
            let o = self.outcomes[r.slot].as_mut().expect("placed job has an outcome");
            o.disk_end = r.disk_end;
            o.network_end = r.network_end;
            o.finish = Some(self.now);
            if let Some(w) = o.wait() {
                self.inst.wait.observe(w);
            }
            if let Some(s) = o.slowdown() {
                self.inst.slow.observe(s);
            }
            if o.met_deadline() == Some(false) {
                self.inst.misses.inc();
            }
            if self.events.is_some() {
                let (id, at, met) = (o.id, self.now, o.met_deadline());
                self.emit(CoreEvent::Completed { id, at, met_deadline: met });
            }
            if self.cfg.predictor.wants_observations() {
                // Feed the active predictor the same clean completions
                // the accuracy ledger samples, independent of whether
                // telemetry is armed. The predictor may retrain and
                // bump its epoch here; the placement cache notices on
                // the next query.
                let o = self.outcomes[r.slot].as_ref().expect("placed job has an outcome");
                let clean = o.preemptions.is_empty() && o.migration.is_none() && !r.no_feedback;
                if let (Some(p), Some(de), Some(ne)) = (&o.placement, r.disk_end, r.network_end) {
                    if clean {
                        self.cfg.predictor.observe(&Observation {
                            app: o.app.clone(),
                            repo: p.repo_name.clone(),
                            data_nodes: r.config.data_nodes,
                            compute_nodes: r.config.compute_nodes,
                            wan_bw: r.placed_bw,
                            dataset_bytes: o.dataset_bytes,
                            predicted: [
                                r.predicted.t_disk,
                                r.predicted.t_network,
                                r.predicted.t_compute,
                            ],
                            observed: [de - r.placed_at, ne - de, self.now - ne],
                        });
                    }
                }
            }
            if let Some(tel) = self.telemetry.as_mut() {
                let o = self.outcomes[r.slot].as_ref().expect("placed job has an outcome");
                // Only clean observations feed the accuracy ledger: a
                // preempted or migrated run's phase boundaries are not
                // a fair test of the placement-time prediction.
                let clean = o.preemptions.is_empty() && o.migration.is_none() && !r.no_feedback;
                let sample = match (&o.placement, r.disk_end, r.network_end) {
                    (Some(p), Some(de), Some(ne)) if clean => Some(AccuracySample {
                        seq: 0, // assigned by the ledger
                        id: o.id,
                        tenant: o.tenant,
                        app: o.app.clone(),
                        repo: p.repo_name.clone(),
                        config: p.config.clone(),
                        dataset_bytes: o.dataset_bytes,
                        predicted: [
                            r.predicted.t_disk,
                            r.predicted.t_network,
                            r.predicted.t_compute,
                        ],
                        observed: [de - r.placed_at, ne - de, self.now - ne],
                        placed_at: r.placed_at,
                        finish: self.now,
                    }),
                    _ => None,
                };
                let alarms = tel.on_completion(o, sample);
                for alarm in alarms {
                    self.emit(CoreEvent::DriftAlarm { alarm });
                }
            }
        }
    }

    /// The batch loop's migration block: a transfer achieving well
    /// under its uncontended rate checkpoints its reduction object and
    /// switches replicas when `fg-predict`'s cost/benefit model favors
    /// the move (at most once per job).
    fn migration_check(&mut self) {
        let Some(mc) = self.cfg.migration else { return };
        let grid = &self.cfg.grid;
        let mut moved_events: Vec<CoreEvent> = Vec::new();
        for r in self.running.iter_mut() {
            if r.phase != Phase::Network {
                continue;
            }
            let o = self.outcomes[r.slot].as_ref().expect("placed job has an outcome");
            if o.migration.is_some() {
                continue;
            }
            let elapsed = self.now - r.net_started;
            if elapsed < mc.min_elapsed_secs {
                continue;
            }
            let moved = r.bytes - r.net_remaining;
            if moved <= TIME_EPS || r.net_remaining <= 1e-6 * r.bytes.max(1.0) {
                continue;
            }
            let achieved = moved / elapsed;
            if r.net_expected <= TIME_EPS || moved >= (1.0 - mc.deviation) * r.net_expected {
                continue;
            }
            let Some(model) = grid.app(&o.app) else { continue };
            let dataset_bytes = o.dataset_bytes;
            // Best alternative repository with free data nodes,
            // priced at its current bandwidth estimate.
            let mut best: Option<(usize, Prediction)> = None;
            for (ci, repo) in grid.repos.iter().enumerate() {
                if ci == r.repo || self.free.data()[ci] < r.config.data_nodes {
                    continue;
                }
                let candidate = DeploymentRef {
                    repository: &repo.site,
                    compute: &grid.sites[r.site].site,
                    stream_bw: self.bw[ci],
                    config: r.config,
                    cache: None,
                };
                let Ok(pred) = self.cfg.predictor.predict_deployment(
                    &model.profile,
                    model.classes,
                    candidate,
                    dataset_bytes,
                    &grid.factors,
                ) else {
                    continue;
                };
                if best.as_ref().is_none_or(|(_, b)| pred.total() < b.total()) {
                    best = Some((ci, pred));
                }
            }
            let Some((to, pred)) = best else { continue };
            // Remaining fraction of the transfer; the unstarted
            // compute scales by the same f on both sides so the
            // comparison hinges on the network remainder plus
            // the checkpoint move and restart retrieval.
            let f_rem = (r.net_remaining / r.bytes.max(1.0)).clamp(0.0, 1.0);
            let stay = r.net_remaining / achieved + f_rem * r.predicted.t_compute.max(0.0);
            let link = InterconnectParams::of_site(&grid.sites[r.site].site);
            let decision = decide_migration(stay, &pred, f_rem, r.max_obj_bytes, &link);
            if !decision.worthwhile(mc.margin) {
                continue;
            }
            // Commit: swap repositories, pause for the checkpoint
            // move, then resume the remaining bytes at the candidate's
            // uncontended rate.
            self.free.release_data(r.repo, r.config.data_nodes);
            self.free.alloc_data(to, r.config.data_nodes);
            let from_repo = grid.repos[r.repo].site.name.clone();
            let to_repo = grid.repos[to].site.name.clone();
            r.repo = to;
            r.placed_bw = self.bw[to];
            r.net_cap =
                if pred.t_network > TIME_EPS { r.bytes / pred.t_network } else { f64::INFINITY };
            r.no_feedback = true;
            r.phase = Phase::Migrating { until: self.now + mc.overhead_secs };
            let o = self.outcomes[r.slot].as_mut().expect("placed job has an outcome");
            o.migration = Some(MigrationEvent {
                at: self.now,
                until: self.now + mc.overhead_secs,
                from_repo: from_repo.clone(),
                to_repo: to_repo.clone(),
            });
            if let Some(c) = &self.inst.migrate {
                c.inc();
            }
            if let Some(c) = &self.inst.ckpt {
                c.inc();
            }
            if self.events.is_some() {
                moved_events.push(CoreEvent::Migrated {
                    id: o.id,
                    at: self.now,
                    from_repo,
                    to_repo,
                });
            }
        }
        for e in moved_events {
            self.emit(e);
        }
    }

    /// The batch loop's scheduling pass: start every job the policy
    /// and fair shares allow, cheapest placement first within the
    /// policy order. Checkpointed jobs resume first; with preemption
    /// enabled, a head-of-queue job with a tighter deadline may evict
    /// a looser-deadline running job.
    fn schedule_pass(&mut self) {
        loop {
            // Resume checkpointed jobs first: they already hold an
            // admission, so their nodes have priority over new starts.
            // The restore pause is charged up front.
            let mut si = 0;
            while si < self.suspended.len() {
                let fits = self.suspended[si].job.config.data_nodes
                    <= self.free.data()[self.suspended[si].job.repo]
                    && self.suspended[si].job.config.compute_nodes
                        <= self.free.cmp()[self.suspended[si].job.site];
                if !fits {
                    si += 1;
                    continue;
                }
                let Suspended { mut job, remaining } = self.suspended.remove(si);
                let overhead = self.cfg.preemption.unwrap_or(0.0);
                self.free.alloc(job.repo, job.site, &job.config);
                self.used_slots[job.tenant] += job.config.compute_nodes;
                job.no_feedback = true;
                job.phase = match remaining {
                    RemainingPhase::Disk(rem) => Phase::Disk { until: self.now + overhead + rem },
                    RemainingPhase::Network(remb) => {
                        // Restore pause, then the transfer continues
                        // with its remaining bytes.
                        job.net_remaining = remb;
                        Phase::Migrating { until: self.now + overhead }
                    }
                    RemainingPhase::Compute(rem) => {
                        Phase::Compute { until: self.now + overhead + rem }
                    }
                };
                let o = self.outcomes[job.slot].as_mut().expect("suspended job has an outcome");
                o.preemptions
                    .last_mut()
                    .expect("suspended job recorded its preemption")
                    .resumed_at = Some(self.now);
                if self.events.is_some() {
                    let (id, at) = (o.id, self.now);
                    self.emit(CoreEvent::Resumed { id, at });
                }
                self.running.push(job);
            }
            if self.queue.is_empty() {
                return;
            }
            let grid = &self.cfg.grid;
            // Saturation early-out: when no configuration in the menu
            // fits the largest free data slice *and* the largest free
            // compute slice, every placement query below would return
            // `None` (any site may pair with any repository, so the
            // maxima bound every candidate), and the quota
            // computation, the policy order walk, and both rounds are
            // pure overhead — skip them. Preemption is the one path
            // that can start a job without free nodes (it evicts a
            // victim first), so the shortcut only applies when
            // preemption is off. Decision-neutral by construction: it
            // suppresses only work that provably finds no start.
            if self.cfg.preemption.is_none()
                && !grid.configs.iter().any(|c| {
                    c.data_nodes <= self.free.max_data() && c.compute_nodes <= self.free.max_cmp()
                })
            {
                return;
            }
            // Max-min fair slot quotas over the tenants that want
            // slots. A queued job demands what it could use when placed
            // unconstrained — the largest configuration — so a tenant
            // alone on an idle grid is never capped below the best
            // placement by its own conservative demand. A suspended job
            // still demands the slots it will re-occupy.
            let ntenant = self.used_slots.len();
            let max_slots = grid.max_config_slots();
            let mut demands = vec![0usize; ntenant];
            for r in self.running.iter() {
                demands[r.tenant] += r.config.compute_nodes;
            }
            for s in self.suspended.iter() {
                demands[s.job.tenant] += s.job.config.compute_nodes;
            }
            for (t, d) in demands.iter_mut().enumerate() {
                *d += self.queue.queued_for(t) * max_slots;
            }
            let quota = fair_quota(self.total_slots, &demands);

            // Round 1: jobs whose tenant is under quota, capped so the
            // start cannot push the tenant past its quota. The original
            // loop scanned the whole policy order, skipping every job of
            // a capped tenant — on a saturated trace that is ~Q skips
            // per start. Instead, merge only the under-quota tenants'
            // per-tenant order sets: repeatedly taking the smallest
            // (key, id) across their cursors visits exactly the
            // eligible jobs, in exactly the global policy order, so the
            // sequence of placement queries (and therefore every
            // decision) is identical to the full scan.
            let mut start: Option<(usize, Placement, StartKind)> = None;
            if self.cfg.policy.head_blocking() {
                // Only the global queue head may start; later jobs wait.
                let &(_, id, tenant) = self.queue.order.iter().next().expect("queue is non-empty");
                let headroom = quota[tenant].saturating_sub(self.used_slots[tenant]);
                if headroom >= self.min_slots {
                    let q = &self.queue.jobs[&id];
                    if let Some(p) = self.engine.best_placement(
                        self.cfg.predictor.as_ref(),
                        grid,
                        &q.spec.app,
                        q.spec.dataset_bytes,
                        &self.free,
                        &self.bw,
                        Some(headroom),
                    ) {
                        start = Some((id, p, StartKind::UnderQuota));
                    }
                }
            } else {
                let mut cursors: Vec<(usize, std::iter::Peekable<_>)> = (0..ntenant)
                    .filter_map(|t| {
                        let headroom = quota[t].saturating_sub(self.used_slots[t]);
                        (headroom >= self.min_slots && self.queue.queued_for(t) > 0)
                            .then(|| (headroom, self.queue.by_tenant[t].iter().peekable()))
                    })
                    .collect();
                loop {
                    let mut head: Option<(usize, (OrderKey, usize))> = None;
                    for (ci, (_, cursor)) in cursors.iter_mut().enumerate() {
                        if let Some(&&entry) = cursor.peek() {
                            if head.is_none_or(|(_, h)| entry < h) {
                                head = Some((ci, entry));
                            }
                        }
                    }
                    let Some((ci, (_, id))) = head else { break };
                    let q = &self.queue.jobs[&id];
                    if let Some(p) = self.engine.best_placement(
                        self.cfg.predictor.as_ref(),
                        grid,
                        &q.spec.app,
                        q.spec.dataset_bytes,
                        &self.free,
                        &self.bw,
                        Some(cursors[ci].0),
                    ) {
                        start = Some((id, p, StartKind::UnderQuota));
                        break;
                    }
                    cursors[ci].1.next();
                }
            }
            // Round 2: only when no under-quota start exists may a
            // backfilling policy start a job past its tenant's quota —
            // fairness must not cost work conservation.
            if start.is_none() && !self.cfg.policy.head_blocking() {
                for &(_, id, _) in self.queue.order.iter() {
                    let q = &self.queue.jobs[&id];
                    if let Some(p) = self.engine.best_placement(
                        self.cfg.predictor.as_ref(),
                        grid,
                        &q.spec.app,
                        q.spec.dataset_bytes,
                        &self.free,
                        &self.bw,
                        None,
                    ) {
                        start = Some((id, p, StartKind::Backfill));
                        break;
                    }
                }
            }
            // Preemption: when nothing can start, the head job by
            // policy order may evict a running job with a strictly
            // looser deadline. The victim (loosest deadline first) is
            // checkpointed off its nodes and the head job starts on
            // them in the same pass — deadline urgency overrides the
            // fair-share quota, so the start is exempt from the
            // fairness checks below.
            if start.is_none() && self.cfg.preemption.is_some() && !self.queue.is_empty() {
                let &(_, head_id, _) = self.queue.order.iter().next().expect("queue is non-empty");
                let hq = &self.queue.jobs[&head_id];
                if let (Some(qd), true) = (hq.deadline, grid.app(&hq.spec.app).is_some()) {
                    let mut victims: Vec<usize> = (0..self.running.len())
                        .filter(|&i| self.running[i].deadline.is_some_and(|d| d > qd + TIME_EPS))
                        .collect();
                    victims.sort_by(|&a, &b| {
                        let (da, db) =
                            (self.running[a].deadline.unwrap(), self.running[b].deadline.unwrap());
                        db.total_cmp(&da).then(self.running[a].slot.cmp(&self.running[b].slot))
                    });
                    for vi in victims {
                        let v = &self.running[vi];
                        // Hypothetical slices: the victim's nodes
                        // returned, nothing committed yet.
                        let mut hyp = self.free.clone();
                        hyp.release(v.repo, v.site, &v.config);
                        let Some(p) = self.engine.best_placement(
                            self.cfg.predictor.as_ref(),
                            grid,
                            &hq.spec.app,
                            hq.spec.dataset_bytes,
                            &hyp,
                            &self.bw,
                            None,
                        ) else {
                            continue;
                        };
                        let v = self.running.remove(vi);
                        self.free.release(v.repo, v.site, &v.config);
                        self.used_slots[v.tenant] -= v.config.compute_nodes;
                        let remaining = match v.phase {
                            Phase::Disk { until } => {
                                RemainingPhase::Disk((until - self.now).max(0.0))
                            }
                            Phase::Network | Phase::Migrating { .. } => {
                                RemainingPhase::Network(v.net_remaining)
                            }
                            Phase::Compute { until } => {
                                RemainingPhase::Compute((until - self.now).max(0.0))
                            }
                        };
                        let o = self.outcomes[v.slot].as_mut().expect("placed job has an outcome");
                        o.preemptions
                            .push(PreemptionEvent { preempted_at: self.now, resumed_at: None });
                        if let Some(c) = &self.inst.preempt {
                            c.inc();
                        }
                        if let Some(c) = &self.inst.ckpt {
                            c.inc();
                        }
                        if let Some(evs) = self.events.as_mut() {
                            evs.push(CoreEvent::Preempted { id: o.id, at: self.now });
                        }
                        self.suspended.push(Suspended { job: v, remaining });
                        start = Some((head_id, p, StartKind::Preempt));
                        break;
                    }
                }
            }
            let Some((id, placement, kind)) = start else {
                // Redundant guard for the work-conservation invariant:
                // with a backfilling policy, no queued job may fit the
                // free nodes once the pass declares itself done. It
                // replays round 2 verbatim, which just proved no start
                // exists, so it is pure double-checking — debug builds
                // only, where the test suite runs; a release sweep over
                // a long saturated backlog would re-scan the whole
                // queue after every pass.
                if cfg!(debug_assertions) && !self.cfg.policy.head_blocking() {
                    let mut caught: Vec<String> = Vec::new();
                    for q in self.queue.iter() {
                        if self
                            .engine
                            .best_placement(
                                self.cfg.predictor.as_ref(),
                                grid,
                                &q.spec.app,
                                q.spec.dataset_bytes,
                                &self.free,
                                &self.bw,
                                None,
                            )
                            .is_some()
                        {
                            caught.push(format!(
                                "work conservation: job {} fits free nodes but was not started at t={:.3}",
                                q.spec.id, self.now
                            ));
                        }
                    }
                    self.violations.extend(caught);
                }
                return;
            };

            let q = self.queue.remove(id);
            let tenant = q.spec.tenant;
            match kind {
                StartKind::Backfill => {
                    self.inst.backfill.inc();
                    if quota[tenant].saturating_sub(self.used_slots[tenant]) >= self.min_slots {
                        self.violations.push(format!(
                            "fair share: job {} backfilled past quota although tenant {tenant} had headroom at t={:.3}",
                            q.spec.id, self.now
                        ));
                    }
                }
                StartKind::UnderQuota
                    if self.used_slots[tenant] + placement.cfg.compute_nodes > quota[tenant] =>
                {
                    self.violations.push(format!(
                        "fair share: job {} pushed tenant {tenant} past its quota at t={:.3}",
                        q.spec.id, self.now
                    ));
                }
                StartKind::UnderQuota | StartKind::Preempt => {}
            }
            self.free.alloc(placement.repo, placement.site, &placement.cfg);
            self.used_slots[tenant] += placement.cfg.compute_nodes;
            let slot = *self.slot_map.get(&q.spec.id).expect("job id present");
            let repo_name = self.cfg.grid.repos[placement.repo].site.name.clone();
            let site_name = self.cfg.grid.sites[placement.site].site.name.clone();
            let o = self.outcomes[slot].as_mut().expect("queued job has an outcome");
            o.placed_at = Some(self.now);
            o.predicted = Some(placement.predicted.total());
            o.placement = Some(PlacementInfo {
                repo: placement.repo,
                site: placement.site,
                repo_name: repo_name.clone(),
                site_name: site_name.clone(),
                config: placement.cfg.label(),
                data_nodes: placement.cfg.data_nodes,
                compute_nodes: placement.cfg.compute_nodes,
            });
            if self.events.is_some() {
                self.emit(CoreEvent::Placed {
                    id: q.spec.id,
                    at: self.now,
                    repo: repo_name,
                    site: site_name,
                    config: placement.cfg.label(),
                    predicted: placement.predicted.total(),
                });
            }
            self.running.push(Running {
                slot,
                tenant,
                repo: placement.repo,
                site: placement.site,
                config: placement.cfg,
                predicted: placement.predicted,
                placed_at: self.now,
                phase: Phase::Disk { until: self.now + placement.predicted.t_disk.max(0.0) },
                bytes: q.spec.dataset_bytes as f64,
                net_started: self.now,
                net_remaining: 0.0,
                placed_bw: self.bw[placement.repo],
                net_cap: f64::INFINITY,
                disk_end: None,
                network_end: None,
                net_expected: 0.0,
                deadline: q.deadline,
                max_obj_bytes: self
                    .cfg
                    .grid
                    .app(&q.spec.app)
                    .map(|m| m.profile.max_obj_bytes)
                    .unwrap_or(0),
                no_feedback: false,
            });
        }
    }
}

/// An admission estimate quoted against a [`SchedSnapshot`] — the
/// answer to "if a job with this app and dataset arrived right now,
/// what would the scheduler predict?". For a job actually submitted at
/// the snapshot's instant, the quote reproduces the admission
/// estimate bit-for-bit (`tests/serve_differential.rs` pins this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionQuote {
    /// Standalone predicted execution time (empty grid, nominal
    /// bandwidth) — the deadline/slowdown baseline.
    pub standalone: f64,
    /// Load-corrected execution prediction (best placement on the
    /// whole grid at current bandwidth estimates).
    pub corrected: f64,
    /// Predicted completion instant: snapshot time plus fluid backlog
    /// plus the corrected prediction.
    pub estimate: f64,
    /// Whether an admitting policy would accept the job at the given
    /// deadline slack (`None` when the policy never rejects).
    pub would_admit: Option<bool>,
}

/// An immutable view of the scheduler's decision state, detached from
/// the event loop. All query methods take `&self`: a server can hand
/// clones to a pool of worker threads and answer prediction queries
/// concurrently, without locking the live core.
#[derive(Debug, Clone)]
pub struct SchedSnapshot {
    grid: Arc<GridSpec>,
    policy: Policy,
    predictor: Arc<dyn Predictor>,
    now: f64,
    bw: Vec<f64>,
    free_data: Vec<usize>,
    free_cmp: Vec<usize>,
    backlog_slot_secs: f64,
    total_slots: usize,
    queue_depth: usize,
    running: usize,
}

impl SchedSnapshot {
    /// The sim-clock instant the snapshot was taken at.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The policy the core applies.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Current per-repository bandwidth estimates (EWMA-corrected).
    pub fn bandwidth(&self) -> &[f64] {
        &self.bw
    }

    /// Free data-node slices per repository.
    pub fn free_data(&self) -> &[usize] {
        &self.free_data
    }

    /// Free compute-node slices per site.
    pub fn free_cmp(&self) -> &[usize] {
        &self.free_cmp
    }

    /// Jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Jobs occupying grid nodes.
    pub fn running(&self) -> usize {
        self.running
    }

    /// Best placement for `app` on an *empty* grid at nominal
    /// bandwidth — the standalone baseline. Pure: prices every
    /// candidate fresh, bit-identical to the engine's cached path.
    pub fn standalone(&self, app: &str, dataset_bytes: u64) -> Option<Placement> {
        uncached_standalone_placement(self.predictor.as_ref(), &self.grid, app, dataset_bytes)
    }

    /// Cheapest placement that fits the snapshot's *free* slices at
    /// current bandwidth estimates.
    pub fn best_placement(&self, app: &str, dataset_bytes: u64) -> Option<Placement> {
        uncached_best_placement(
            self.predictor.as_ref(),
            &self.grid,
            app,
            dataset_bytes,
            &self.free_data,
            &self.free_cmp,
            &self.bw,
            None,
        )
    }

    /// Quote the admission estimate a job with this app and dataset
    /// would receive if it arrived at the snapshot instant, with an
    /// admit/reject verdict at `deadline_slack` when the policy
    /// rejects. `None` when the app is unknown or nothing places even
    /// on an empty grid (the scheduler would reject such a job).
    pub fn quote(
        &self,
        app: &str,
        dataset_bytes: u64,
        deadline_slack: f64,
    ) -> Option<PredictionQuote> {
        let standalone = self.standalone(app, dataset_bytes)?.predicted.total();
        // Mirror the arrival block's arithmetic exactly: corrected
        // prediction against the whole grid, fluid backlog over total
        // slots, estimate from the snapshot instant.
        let full_data: Vec<usize> = self.grid.repos.iter().map(|r| r.site.max_nodes).collect();
        let full_cmp: Vec<usize> = self.grid.sites.iter().map(|s| s.site.max_nodes).collect();
        let corrected = uncached_best_placement(
            self.predictor.as_ref(),
            &self.grid,
            app,
            dataset_bytes,
            &full_data,
            &full_cmp,
            &self.bw,
            None,
        )
        .map(|p| p.predicted.total())
        .unwrap_or(standalone);
        let estimate = self.now + self.backlog_slot_secs / self.total_slots as f64 + corrected;
        let would_admit = self.policy.admits().then(|| {
            let deadline = self.now + deadline_slack * standalone;
            estimate <= deadline + TIME_EPS
        });
        Some(PredictionQuote { standalone, corrected, estimate, would_admit })
    }
}

/// Integer max-min water-filling, computed in bulk. The reference
/// formulation hands out one slot at a time to the tenant with the
/// smallest allocation still under its demand (ties: lowest index) —
/// `O(total × tenants)`, which a scheduling pass pays on every
/// iteration. This closed form finds the water level directly: the
/// largest `L` with `Σ min(demand, L) <= total` satisfies everyone
/// below the level, and the leftover slots go one each to the
/// lowest-indexed tenants still above it — exactly where the
/// round-robin loop would have stopped, so the result is bit-identical
/// (`fair_quota_matches_the_slot_by_slot_reference` pins this).
pub(crate) fn fair_quota(total: usize, demands: &[usize]) -> Vec<usize> {
    let want: usize = demands.iter().sum();
    if want <= total {
        return demands.to_vec();
    }
    // want > total implies demands is non-empty and the loop below
    // always finds a level before running out of sorted demands.
    let mut sorted = demands.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut satisfied = 0usize; // slots consumed by demands under the level
    let mut level = 0usize;
    let mut remainder = 0usize;
    for (k, &d) in sorted.iter().enumerate() {
        if satisfied + (n - k) * d <= total {
            satisfied += d;
        } else {
            level = (total - satisfied) / (n - k);
            remainder = (total - satisfied) % (n - k);
            break;
        }
    }
    let mut alloc: Vec<usize> = demands.iter().map(|&d| d.min(level)).collect();
    if remainder > 0 {
        for (i, &d) in demands.iter().enumerate() {
            if d > level {
                alloc[i] += 1;
                remainder -= 1;
                if remainder == 0 {
                    break;
                }
            }
        }
    }
    alloc
}

/// Post-hoc span tree: one `Run` root, one `Job` span per submission in
/// arrival order with `JobQueued` and phase children, integer attrs for
/// the figures and exporters.
pub(crate) fn build_trace(mut tracer: Tracer, outcomes: &[JobOutcome], makespan: f64) -> Trace {
    let t = SimTime::from_secs_f64;
    let end_time = outcomes.iter().map(|o| o.finish.unwrap_or(o.arrival)).fold(makespan, f64::max);
    let run = tracer.begin(SpanKind::Run, None, SimTime::ZERO);
    let mut order: Vec<usize> = (0..outcomes.len()).collect();
    order.sort_by(|&a, &b| {
        outcomes[a]
            .arrival
            .total_cmp(&outcomes[b].arrival)
            .then(outcomes[a].id.cmp(&outcomes[b].id))
    });
    for &i in &order {
        let o = &outcomes[i];
        let job = tracer.begin(SpanKind::Job, None, t(o.arrival));
        tracer.attr(job, "job_id", o.id as u64);
        tracer.attr(job, "tenant", o.tenant as u64);
        tracer.attr(job, "dataset_bytes", o.dataset_bytes);
        tracer.attr(job, "admitted", u64::from(o.admitted));
        if let Some(s) = o.standalone {
            tracer.attr(job, "standalone_ms", (s * 1e3).round() as u64);
        }
        if let Some(p) = o.predicted {
            tracer.attr(job, "predicted_ms", (p * 1e3).round() as u64);
        }
        if let Some(met) = o.met_deadline() {
            tracer.attr(job, "met_deadline", u64::from(met));
        }
        match (o.placed_at, o.disk_end, o.network_end, o.finish) {
            (Some(placed), Some(disk), Some(netw), Some(finish)) => {
                let queued = tracer.record(SpanKind::JobQueued, None, t(o.arrival), t(placed));
                let _ = queued;
                tracer.record(SpanKind::Retrieval, None, t(placed), t(disk));
                if netw > disk {
                    tracer.record(SpanKind::Network, None, t(disk), t(netw));
                }
                tracer.record(SpanKind::Compute, None, t(netw), t(finish));
                // Disruption history: a zero-length `Checkpoint` marker
                // at each eviction or migration instant, plus the
                // off-grid / switching window it opened.
                for p in &o.preemptions {
                    let at = t(p.preempted_at);
                    tracer.record(SpanKind::Checkpoint, None, at, at);
                    tracer.record(SpanKind::Preempted, None, at, t(p.resumed_at.unwrap_or(finish)));
                }
                if let Some(m) = &o.migration {
                    tracer.record(SpanKind::Checkpoint, None, t(m.at), t(m.at));
                    tracer.record(SpanKind::Migrate, None, t(m.at), t(m.until));
                }
                tracer.end(job, t(finish));
            }
            _ => {
                // Rejected (or stuck) jobs: zero-length span at arrival.
                tracer.end(job, t(o.arrival));
            }
        }
    }
    tracer.end(run, t(end_time));
    tracer.finish(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fair_quota_water_fills() {
        assert_eq!(fair_quota(10, &[4, 4, 4]), vec![4, 3, 3]);
        assert_eq!(fair_quota(12, &[2, 8, 8]), vec![2, 5, 5]);
        assert_eq!(fair_quota(12, &[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(fair_quota(3, &[5, 5, 5]), vec![1, 1, 1]);
        assert_eq!(fair_quota(0, &[5, 5]), vec![0, 0]);
        assert_eq!(fair_quota(7, &[0, 9, 3]), vec![0, 4, 3]);
        assert_eq!(fair_quota(10, &[2, 8, 8]), vec![2, 4, 4]);
        assert_eq!(fair_quota(24, &[2, 2, 2]), vec![2, 2, 2]);
        assert_eq!(fair_quota(0, &[5]), vec![0]);
        assert_eq!(fair_quota(5, &[]), Vec::<usize>::new());
        assert_eq!(fair_quota(7, &[0, 3, 0, 9]), vec![0, 3, 0, 4]);
        assert_eq!(fair_quota(3, &[5, 5, 5, 5]), vec![1, 1, 1, 0]);
    }

    /// The slot-by-slot reference the closed form replaces.
    fn fair_quota_reference(total: usize, demands: &[usize]) -> Vec<usize> {
        let mut alloc = vec![0usize; demands.len()];
        let mut left = total;
        while left > 0 {
            let candidate = (0..demands.len())
                .filter(|&i| alloc[i] < demands[i])
                .min_by_key(|&i| (alloc[i], i));
            match candidate {
                Some(i) => {
                    alloc[i] += 1;
                    left -= 1;
                }
                None => break,
            }
        }
        alloc
    }

    proptest! {
        #[test]
        fn fair_quota_matches_the_slot_by_slot_reference(
            total in 0usize..64,
            demands in proptest::collection::vec(0usize..16, 0..8),
        ) {
            prop_assert_eq!(fair_quota(total, &demands), fair_quota_reference(total, &demands));
        }

        /// Growing the tenant vector with trailing zero demands never
        /// changes a real tenant's allocation — the property that lets
        /// the incremental core size `used_slots` lazily.
        #[test]
        fn trailing_zero_demands_are_neutral(
            total in 0usize..64,
            demands in proptest::collection::vec(0usize..16, 0..8),
            extra in 0usize..4,
        ) {
            let mut grown = demands.clone();
            grown.resize(demands.len() + extra, 0);
            let base = fair_quota(total, &demands);
            let wide = fair_quota(total, &grown);
            prop_assert_eq!(&wide[..demands.len()], &base[..]);
            prop_assert!(wide[demands.len()..].iter().all(|&a| a == 0));
        }
    }
}
