//! The placement hot path: cached incremental ranking with dominance
//! pruning over a free-slice index.
//!
//! A scheduling pass asks "cheapest feasible (repository, site,
//! configuration) triple" once per queued job, every pass. The naive
//! scan re-predicts every triple each time — `O(repos × sites ×
//! configs)` full model evaluations — although the predictions only
//! change when a repository's EWMA bandwidth estimate moves, which
//! happens once per completed transfer, not once per query.
//!
//! [`PlacementEngine`] memoizes per-repository candidate rankings keyed
//! by `(application, dataset size)` and invalidates each repository's
//! ranking only when the bandwidth it was priced at changes
//! (bit-compared, so EWMA noise below the representable threshold never
//! forces work). Queries then walk the cost-sorted rankings with
//! dominance pruning — a repository whose cheapest candidate cannot
//! beat the incumbent is skipped outright, and a walk stops at the
//! first candidate that cannot improve — against a [`FreeSlices`] index
//! whose maintained maxima give an O(1) "nothing can fit" early-out.
//!
//! The fast path is bit-identical to [`naive_best_placement`] by
//! construction: both price candidates through the same
//! [`fg_predict::Predictor`] (the analytical impl delegates to
//! [`fg_predict::try_predict_deployment`]), and the ranking order
//! (total, then site, then configuration index) reproduces the naive
//! scan's first-strictly-better tie-break exactly. The differential
//! property suite (`tests/placement_differential.rs`) pins the
//! equivalence under random grids, quota caps, and bandwidth drift.
//!
//! Every query is generic over the [`Predictor`] pricing it. Stateful
//! predictors (fg-learn) invalidate cached rankings through their
//! [`Predictor::epoch`]: a ranking is stale when *either* the
//! bandwidth it was priced at or the predictor epoch it was priced
//! under has changed. The analytical predictor's epoch is constant, so
//! the default path's cache behavior (and hit rate) is untouched.

use crate::grid::{AppModel, GridSpec};
use fg_cluster::{Configuration, DeploymentRef};
use fg_predict::{Prediction, Predictor};
use rayon::prelude::*;
use std::collections::HashMap;

/// The winning candidate of a placement query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Repository index in the grid.
    pub repo: usize,
    /// Compute-site index in the grid.
    pub site: usize,
    /// The chosen configuration.
    pub cfg: Configuration,
    /// Its predicted execution time components.
    pub predicted: Prediction,
}

/// Free node slices with maintained maxima: the scheduler's view of
/// which data and compute nodes are unoccupied, indexed so a feasibility
/// pre-check never rescans the per-repository and per-site vectors.
///
/// `max_data()`/`max_cmp()` are kept current across `alloc_*` and
/// `release_*` in O(1) amortized (a release only raises the maximum; an
/// allocation recomputes it only when it shrank the argmax).
#[derive(Debug, Clone)]
pub struct FreeSlices {
    data: Vec<usize>,
    cmp: Vec<usize>,
    max_data: usize,
    max_cmp: usize,
}

impl FreeSlices {
    /// An index over free data nodes per repository and free compute
    /// nodes per site.
    pub fn new(data: Vec<usize>, cmp: Vec<usize>) -> FreeSlices {
        let max_data = data.iter().copied().max().unwrap_or(0);
        let max_cmp = cmp.iter().copied().max().unwrap_or(0);
        FreeSlices { data, cmp, max_data, max_cmp }
    }

    /// Free data nodes per repository.
    pub fn data(&self) -> &[usize] {
        &self.data
    }

    /// Free compute nodes per site.
    pub fn cmp(&self) -> &[usize] {
        &self.cmp
    }

    /// The largest free data slice across repositories.
    pub fn max_data(&self) -> usize {
        self.max_data
    }

    /// The largest free compute slice across sites.
    pub fn max_cmp(&self) -> usize {
        self.max_cmp
    }

    /// Occupy `n` data nodes at `repo`. Panics on underflow, like the
    /// raw vector arithmetic it replaces.
    pub fn alloc_data(&mut self, repo: usize, n: usize) {
        let was = self.data[repo];
        self.data[repo] -= n;
        if was == self.max_data && n > 0 {
            self.max_data = self.data.iter().copied().max().unwrap_or(0);
        }
    }

    /// Return `n` data nodes to `repo`.
    pub fn release_data(&mut self, repo: usize, n: usize) {
        self.data[repo] += n;
        self.max_data = self.max_data.max(self.data[repo]);
    }

    /// Occupy `n` compute nodes at `site`.
    pub fn alloc_cmp(&mut self, site: usize, n: usize) {
        let was = self.cmp[site];
        self.cmp[site] -= n;
        if was == self.max_cmp && n > 0 {
            self.max_cmp = self.cmp.iter().copied().max().unwrap_or(0);
        }
    }

    /// Return `n` compute nodes to `site`.
    pub fn release_cmp(&mut self, site: usize, n: usize) {
        self.cmp[site] += n;
        self.max_cmp = self.max_cmp.max(self.cmp[site]);
    }

    /// Occupy a configuration's nodes at `(repo, site)`.
    pub fn alloc(&mut self, repo: usize, site: usize, cfg: &Configuration) {
        self.alloc_data(repo, cfg.data_nodes);
        self.alloc_cmp(site, cfg.compute_nodes);
    }

    /// Return a configuration's nodes to `(repo, site)`.
    pub fn release(&mut self, repo: usize, site: usize, cfg: &Configuration) {
        self.release_data(repo, cfg.data_nodes);
        self.release_cmp(site, cfg.compute_nodes);
    }
}

/// One priced candidate in a repository's ranking.
#[derive(Debug, Clone, Copy)]
struct Ranked {
    site: usize,
    cfg: usize,
    data_nodes: usize,
    compute_nodes: usize,
    total: f64,
    predicted: Prediction,
}

/// A repository's candidates priced at one bandwidth under one
/// predictor epoch, cheapest first (ties broken by site then
/// configuration index, matching the naive scan's iteration order).
#[derive(Debug, Clone)]
struct RepoRanking {
    /// Bit pattern of the bandwidth the ranking was priced at. The
    /// stale sentinel is a NaN pattern: a real (finite, positive) EWMA
    /// estimate can never bit-match it, and a NaN bandwidth makes every
    /// candidate unpredictable in both paths anyway.
    bw_bits: u64,
    /// The [`Predictor::epoch`] the ranking was priced under. A
    /// stateful predictor bumps its epoch when training changes its
    /// predictions, invalidating every cached ranking even though the
    /// bandwidths are unchanged. The analytical predictor's constant
    /// epoch makes this test free on the default path.
    epoch: u64,
    ranked: Vec<Ranked>,
}

const STALE: u64 = u64::MAX;

impl RepoRanking {
    fn stale() -> RepoRanking {
        RepoRanking { bw_bits: STALE, epoch: 0, ranked: Vec::new() }
    }
}

/// Cached rankings for one `(application, dataset size)` key.
#[derive(Debug, Clone)]
struct Entry {
    repos: Vec<RepoRanking>,
}

/// Counters describing what a [`PlacementEngine`] did — cache hits are
/// `queries - rebuilds / repos`-shaped, and the benchmark harness
/// reports both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Placement queries answered (standalone queries excluded).
    pub queries: u64,
    /// Per-repository ranking rebuilds (cache misses or bandwidth
    /// invalidations).
    pub rebuilds: u64,
}

/// The cached placement engine. One per scheduler run; queries borrow
/// the grid so the engine itself owns nothing but its cache.
#[derive(Debug)]
pub struct PlacementEngine {
    entries: HashMap<(usize, u64), Entry>,
    capacity: usize,
    parallel: bool,
    naive: bool,
    stats: PlacementStats,
}

/// Keys cached before the engine drops the whole map and starts over.
/// Entries are only useful while their job sits in the queue; a bounded
/// cache with wholesale eviction keeps memory flat over million-job
/// traces without any bookkeeping on the hot path.
const DEFAULT_CAPACITY: usize = 16_384;

impl PlacementEngine {
    /// An engine with an empty cache. The grid is accepted (and
    /// ignored) so a future engine can precompute per-grid indices
    /// without touching every caller.
    pub fn new(_grid: &GridSpec) -> PlacementEngine {
        PlacementEngine {
            entries: HashMap::new(),
            capacity: DEFAULT_CAPACITY,
            parallel: false,
            naive: false,
            stats: PlacementStats::default(),
        }
    }

    /// Rebuild stale rankings through rayon's parallel iterator. The
    /// reduce is determinism-preserving: rebuilt rankings are installed
    /// back in repository-index order, so the cache state (and every
    /// later query) is bit-identical to the sequential rebuild.
    pub fn with_parallel(mut self) -> PlacementEngine {
        self.parallel = true;
        self
    }

    /// Bypass the cache entirely and answer every query with
    /// [`naive_best_placement`] — the differential-testing reference.
    #[doc(hidden)]
    pub fn with_naive(mut self) -> PlacementEngine {
        self.naive = true;
        self
    }

    /// What the engine has done so far.
    pub fn stats(&self) -> PlacementStats {
        self.stats
    }

    /// Cheapest feasible placement for `app` moving `dataset_bytes`,
    /// priced through `pred`, given the free slices, per-repository
    /// bandwidths, and an optional fair-share cap on the
    /// configuration's compute nodes. Bit-identical to
    /// [`naive_best_placement_with`] over the same inputs and
    /// predictor.
    #[allow(clippy::too_many_arguments)]
    pub fn best_placement<P: Predictor + ?Sized>(
        &mut self,
        pred: &P,
        grid: &GridSpec,
        app: &str,
        dataset_bytes: u64,
        free: &FreeSlices,
        bw: &[f64],
        quota_cap: Option<usize>,
    ) -> Option<Placement> {
        let app_idx = grid.apps.iter().position(|(n, _)| n == app)?;
        let model = &grid.apps[app_idx].1;
        if self.naive {
            return naive_best_placement_with(
                pred,
                grid,
                model,
                dataset_bytes,
                free.data(),
                free.cmp(),
                bw,
                quota_cap,
            );
        }
        self.stats.queries += 1;
        // Infeasibility early-out off the slice index: a candidate is
        // feasible only when its configuration fits the *largest* free
        // data slice, the largest free compute slice, and the quota
        // cap — so when no configuration in the menu passes all three
        // bounds, every candidate everywhere is infeasible. Exact, not
        // heuristic: the walk's per-repo/per-site feasibility tests
        // compare against slices these maxima bound from above, and
        // any site may pair with any repository.
        if !grid.configs.iter().any(|c| {
            c.data_nodes <= free.max_data()
                && c.compute_nodes <= free.max_cmp()
                && quota_cap.is_none_or(|cap| c.compute_nodes <= cap)
        }) {
            return None;
        }
        let key = (app_idx, dataset_bytes);
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            self.entries.clear();
        }
        let nrepo = grid.repos.len();
        let epoch = pred.epoch();
        let entry = self
            .entries
            .entry(key)
            .or_insert_with(|| Entry { repos: vec![RepoRanking::stale(); nrepo] });
        let stale: Vec<usize> = (0..nrepo)
            .filter(|&ri| {
                entry.repos[ri].bw_bits != bw[ri].to_bits() || entry.repos[ri].epoch != epoch
            })
            .collect();
        self.stats.rebuilds += stale.len() as u64;
        if self.parallel && stale.len() > 1 {
            let rebuilt: Vec<RepoRanking> = stale
                .par_iter()
                .map(|&ri| {
                    build_ranking(pred, epoch, grid, model, &grid.repos[ri], dataset_bytes, bw[ri])
                })
                .collect();
            for (&ri, ranking) in stale.iter().zip(rebuilt) {
                entry.repos[ri] = ranking;
            }
        } else {
            for &ri in &stale {
                entry.repos[ri] =
                    build_ranking(pred, epoch, grid, model, &grid.repos[ri], dataset_bytes, bw[ri]);
            }
        }
        walk(&entry.repos, free.data(), free.cmp(), quota_cap)
            .map(|(ri, c)| to_placement(grid, ri, &c))
    }

    /// Best placement on an *empty* grid at each repository's nominal
    /// bandwidth — the standalone prediction behind deadlines and
    /// slowdowns. Priced fresh each call: the nominal bandwidths never
    /// change, but dataset sizes are effectively unique per job, so a
    /// memo here would only grow, and routing the query through the
    /// live-bandwidth cache would thrash it (arrival computes both a
    /// nominal and a corrected estimate for the same key). Takes
    /// `&self` — the query touches no cache state, so concurrent
    /// readers (a snapshot-serving worker pool) need no lock.
    pub fn standalone_placement<P: Predictor + ?Sized>(
        &self,
        pred: &P,
        grid: &GridSpec,
        app: &str,
        dataset_bytes: u64,
    ) -> Option<Placement> {
        let app_idx = grid.apps.iter().position(|(n, _)| n == app)?;
        let model = &grid.apps[app_idx].1;
        let max_data: Vec<usize> = grid.repos.iter().map(|r| r.site.max_nodes).collect();
        let max_cmp: Vec<usize> = grid.sites.iter().map(|s| s.site.max_nodes).collect();
        if self.naive {
            let nominal: Vec<f64> = grid.repos.iter().map(|r| r.wan.stream_bw).collect();
            return naive_best_placement_with(
                pred,
                grid,
                model,
                dataset_bytes,
                &max_data,
                &max_cmp,
                &nominal,
                None,
            );
        }
        let epoch = pred.epoch();
        let rankings: Vec<RepoRanking> = if self.parallel && grid.repos.len() > 1 {
            grid.repos
                .par_iter()
                .map(|r| build_ranking(pred, epoch, grid, model, r, dataset_bytes, r.wan.stream_bw))
                .collect()
        } else {
            grid.repos
                .iter()
                .map(|r| build_ranking(pred, epoch, grid, model, r, dataset_bytes, r.wan.stream_bw))
                .collect()
        };
        walk(&rankings, &max_data, &max_cmp, None).map(|(ri, c)| to_placement(grid, ri, &c))
    }
}

fn to_placement(grid: &GridSpec, repo: usize, c: &Ranked) -> Placement {
    Placement { repo, site: c.site, cfg: grid.configs[c.cfg], predicted: c.predicted }
}

/// The cached engine's query, priced fresh with no cache: build every
/// repository's ranking at the given bandwidths and walk it against
/// the free slices. Bit-identical to [`PlacementEngine::best_placement`]
/// over the same inputs (same `build_ranking`, same `walk`), which is
/// what lets an immutable snapshot answer placement queries from
/// `&self` without sharing the engine's mutable cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn uncached_best_placement<P: Predictor + ?Sized>(
    pred: &P,
    grid: &GridSpec,
    app: &str,
    dataset_bytes: u64,
    free_data: &[usize],
    free_cmp: &[usize],
    bw: &[f64],
    quota_cap: Option<usize>,
) -> Option<Placement> {
    let app_idx = grid.apps.iter().position(|(n, _)| n == app)?;
    let model = &grid.apps[app_idx].1;
    let epoch = pred.epoch();
    let rankings: Vec<RepoRanking> = grid
        .repos
        .iter()
        .enumerate()
        .map(|(ri, r)| build_ranking(pred, epoch, grid, model, r, dataset_bytes, bw[ri]))
        .collect();
    walk(&rankings, free_data, free_cmp, quota_cap).map(|(ri, c)| to_placement(grid, ri, &c))
}

/// The standalone query without an engine: best placement on an empty
/// grid at nominal bandwidths. Bit-identical to
/// [`PlacementEngine::standalone_placement`].
pub(crate) fn uncached_standalone_placement<P: Predictor + ?Sized>(
    pred: &P,
    grid: &GridSpec,
    app: &str,
    dataset_bytes: u64,
) -> Option<Placement> {
    let app_idx = grid.apps.iter().position(|(n, _)| n == app)?;
    let model = &grid.apps[app_idx].1;
    let max_data: Vec<usize> = grid.repos.iter().map(|r| r.site.max_nodes).collect();
    let max_cmp: Vec<usize> = grid.sites.iter().map(|s| s.site.max_nodes).collect();
    let epoch = pred.epoch();
    let rankings: Vec<RepoRanking> = grid
        .repos
        .iter()
        .map(|r| build_ranking(pred, epoch, grid, model, r, dataset_bytes, r.wan.stream_bw))
        .collect();
    walk(&rankings, &max_data, &max_cmp, None).map(|(ri, c)| to_placement(grid, ri, &c))
}

/// Price every (site, configuration) candidate of one repository at
/// bandwidth `bw` through `pred` and sort cheapest first. Candidates
/// the predictor rejects are dropped, exactly as the naive scan skips
/// them. Nothing here allocates an owned `Deployment`: the borrow-based
/// [`Predictor::predict_deployment`] entry point prices each candidate
/// from references into the grid. `epoch` is sampled once by the
/// caller so one query's rebuilds all carry the same version even if
/// a concurrent observer bumps the predictor mid-query.
fn build_ranking<P: Predictor + ?Sized>(
    pred: &P,
    epoch: u64,
    grid: &GridSpec,
    model: &AppModel,
    repo: &crate::grid::RepoSpec,
    dataset_bytes: u64,
    bw: f64,
) -> RepoRanking {
    let mut ranked = Vec::with_capacity(grid.sites.len() * grid.configs.len());
    for (si, site) in grid.sites.iter().enumerate() {
        for (ci, cfg) in grid.configs.iter().enumerate() {
            let candidate = DeploymentRef {
                repository: &repo.site,
                compute: &site.site,
                stream_bw: bw,
                config: *cfg,
                cache: None,
            };
            let Ok(predicted) = pred.predict_deployment(
                &model.profile,
                model.classes,
                candidate,
                dataset_bytes,
                &grid.factors,
            ) else {
                continue;
            };
            ranked.push(Ranked {
                site: si,
                cfg: ci,
                data_nodes: cfg.data_nodes,
                compute_nodes: cfg.compute_nodes,
                total: predicted.total(),
                predicted,
            });
        }
    }
    // Cheapest first; ties by (site, configuration) index so the walk's
    // first feasible hit is the naive scan's first-strictly-better one.
    ranked.sort_by(|a, b| {
        a.total.total_cmp(&b.total).then(a.site.cmp(&b.site)).then(a.cfg.cmp(&b.cfg))
    });
    RepoRanking { bw_bits: bw.to_bits(), epoch, ranked }
}

/// Walk cost-sorted rankings against the free slices with dominance
/// pruning. Returns the winning repository index and candidate.
fn walk(
    repos: &[RepoRanking],
    free_data: &[usize],
    free_cmp: &[usize],
    quota_cap: Option<usize>,
) -> Option<(usize, Ranked)> {
    let mut best: Option<(usize, Ranked)> = None;
    for (ri, ranking) in repos.iter().enumerate() {
        let fd = free_data[ri];
        for c in &ranking.ranked {
            // Dominance prune: the ranking is sorted by total, so once
            // a candidate cannot strictly beat the incumbent, nothing
            // later in this repository can either. `>=` keeps the
            // earlier (repository, site, configuration) on ties — the
            // naive scan's first-strictly-better rule.
            if let Some((_, b)) = &best {
                if c.total >= b.total {
                    break;
                }
            }
            if c.data_nodes <= fd
                && c.compute_nodes <= free_cmp[c.site]
                && quota_cap.is_none_or(|cap| c.compute_nodes <= cap)
            {
                best = Some((ri, *c));
                break;
            }
        }
    }
    best
}

/// The reference implementation: exhaustively re-predict every
/// (repository, site, configuration) triple and keep the first
/// strictly-cheapest feasible one. This is the scan the cached engine
/// replaces; it is kept as the oracle for the differential property
/// suite and reachable in production via
/// `Scheduler::with_naive_placement`. Prices through the analytical
/// model; [`naive_best_placement_with`] is the same scan generalized
/// over the predictor.
pub fn naive_best_placement(
    grid: &GridSpec,
    model: &AppModel,
    dataset_bytes: u64,
    free_data: &[usize],
    free_cmp: &[usize],
    bw: &[f64],
    quota_cap: Option<usize>,
) -> Option<Placement> {
    naive_best_placement_with(
        &fg_predict::AnalyticalPredictor,
        grid,
        model,
        dataset_bytes,
        free_data,
        free_cmp,
        bw,
        quota_cap,
    )
}

/// [`naive_best_placement`] generalized over the pricing model: the
/// same exhaustive first-strictly-better scan, with every triple
/// priced through `pred`. This is the oracle the cached engine is
/// differentially tested against under *stateful* predictors, where
/// the engine's correctness additionally depends on epoch-based cache
/// invalidation.
#[allow(clippy::too_many_arguments)]
pub fn naive_best_placement_with<P: Predictor + ?Sized>(
    pred: &P,
    grid: &GridSpec,
    model: &AppModel,
    dataset_bytes: u64,
    free_data: &[usize],
    free_cmp: &[usize],
    bw: &[f64],
    quota_cap: Option<usize>,
) -> Option<Placement> {
    let mut best: Option<Placement> = None;
    for (ri, repo) in grid.repos.iter().enumerate() {
        for (si, site) in grid.sites.iter().enumerate() {
            for cfg in grid.configs.iter() {
                if cfg.data_nodes > free_data[ri] || cfg.compute_nodes > free_cmp[si] {
                    continue;
                }
                if let Some(cap) = quota_cap {
                    if cfg.compute_nodes > cap {
                        continue;
                    }
                }
                let candidate = DeploymentRef {
                    repository: &repo.site,
                    compute: &site.site,
                    stream_bw: bw[ri],
                    config: *cfg,
                    cache: None,
                };
                let predicted = match pred.predict_deployment(
                    &model.profile,
                    model.classes,
                    candidate,
                    dataset_bytes,
                    &grid.factors,
                ) {
                    Ok(predicted) => predicted,
                    Err(_) => continue,
                };
                let better = match &best {
                    None => true,
                    Some(b) => predicted.total() < b.predicted.total(),
                };
                if better {
                    best = Some(Placement { repo: ri, site: si, cfg: *cfg, predicted });
                }
            }
        }
    }
    best
}
