//! JSONL workload traces: dump and replay.
//!
//! A [`Workload`] is a fully materialized job stream plus the context
//! a scheduler run needs (tenant names, the app mix, the seed it came
//! from). [`Workload::dump_jsonl`] writes it as a self-describing JSONL
//! text trace — one header line, then one line per job — and
//! [`Workload::replay`] reads such a trace back, whether we wrote it
//! or an external system did. Replay funnels everything through the
//! same semantic validation, so recorded and synthetic traffic are
//! interchangeable scheduler inputs.
//!
//! The round trip is bit-exact: the vendored JSON layer prints floats
//! with shortest-roundtrip formatting, so `dump → replay → dump`
//! reproduces the identical byte stream. Non-finite floats *survive*
//! JSON encoding here (as sentinel strings), which is exactly why
//! validation rejects them semantically rather than trusting the
//! parser to.
//!
//! ## Trace schema (version 1)
//!
//! ```text
//! {"schema":1,"kind":"fg-workload","seed":42,"apps":[...],"tenants":[...],"jobs":N}
//! {"id":0,"tenant":2,"app":"kmeans","dataset_bytes":...,"arrival":...,"deadline_slack":...}
//! ...                                          (exactly N job lines)
//! ```
//!
//! Job lines must be sorted by arrival with contiguous ids `0..N`, and
//! every declared tenant must submit at least one job (a silent tenant
//! is almost always a truncated trace).

use crate::workload::{JobSpec, WorkloadError, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Trace schema version this module writes and accepts.
const SCHEMA: u32 = 1;

/// Magic `kind` tag distinguishing workload traces from the span and
/// checkpoint JSONL files the repo also produces.
const KIND: &str = "fg-workload";

/// Why a JSONL trace cannot be replayed. Every variant pins the line
/// (1-based, counting the header) or tenant it refutes, mirroring the
/// checkpoint corrupt-input errors in `fg-middleware`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The header line is missing, malformed, the wrong `kind`, or an
    /// unsupported schema version.
    Header(String),
    /// A job line failed to parse as JSON or is missing fields.
    Line {
        /// 1-based line number in the trace text.
        line: usize,
        /// The parse failure.
        reason: String,
    },
    /// The trace ended before the header's declared job count.
    Truncated {
        /// Jobs the header promised.
        expected: usize,
        /// Job lines actually present.
        got: usize,
    },
    /// Non-empty content after the declared job count.
    TrailingData {
        /// 1-based line number of the first extra line.
        line: usize,
    },
    /// A job arrived earlier than its predecessor.
    OutOfOrder {
        /// 1-based line number of the offending job.
        line: usize,
    },
    /// Job ids are not the contiguous sequence `0..jobs`.
    BadId {
        /// 1-based line number of the offending job.
        line: usize,
        /// The id the sequence required.
        expected: usize,
        /// The id found.
        got: usize,
    },
    /// A job's fields are semantically invalid (non-finite arrival,
    /// zero-byte dataset, slack below 1, unknown tenant or app).
    BadJob {
        /// 1-based line number of the offending job.
        line: usize,
        /// Which constraint failed.
        reason: &'static str,
    },
    /// A declared tenant submits no jobs — almost always a truncated
    /// or mis-spliced trace (the generator-side twin is
    /// [`WorkloadError::NoJobs`]).
    SilentTenant {
        /// The jobless tenant's name.
        tenant: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Header(reason) => write!(f, "bad trace header: {reason}"),
            ReplayError::Line { line, reason } => {
                write!(f, "line {line}: unparseable job: {reason}")
            }
            ReplayError::Truncated { expected, got } => {
                write!(f, "trace truncated: header declares {expected} jobs, found {got}")
            }
            ReplayError::TrailingData { line } => {
                write!(f, "line {line}: data past the declared job count")
            }
            ReplayError::OutOfOrder { line } => {
                write!(f, "line {line}: job arrives before its predecessor")
            }
            ReplayError::BadId { line, expected, got } => {
                write!(f, "line {line}: job id {got} where {expected} was required")
            }
            ReplayError::BadJob { line, reason } => write!(f, "line {line}: {reason}"),
            ReplayError::SilentTenant { tenant } => {
                write!(f, "tenant {tenant:?} submits no jobs; the trace is likely truncated")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// The trace header line, serialized before the job lines.
#[derive(Serialize, Deserialize)]
struct Header {
    schema: u32,
    kind: String,
    seed: u64,
    apps: Vec<String>,
    tenants: Vec<String>,
    jobs: usize,
}

/// Shape statistics of a job stream — the quantities the workload
/// metrics and the `ext-workload` figure report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Sum of dataset sizes, bytes.
    pub total_bytes: u64,
    /// Largest single dataset, bytes.
    pub max_bytes: u64,
    /// 99th-percentile dataset size (nearest-rank), bytes.
    pub p99_bytes: u64,
    /// Fraction of all bytes contributed by the single largest job —
    /// the tail-mass signature of heavy-tailed traffic (≈ 1/n under
    /// uniform sizes, order 10⁻¹ under a Pareto tail).
    pub tail_mass_top1: f64,
    /// Maximum number of arrivals inside any sliding 60-second window
    /// — burst sessions drive this far above a Poisson stream's.
    pub burst_depth_max: usize,
    /// Mean gap between consecutive arrivals, seconds (0 for fewer
    /// than two jobs).
    pub mean_gap: f64,
}

/// Arrivals within any window of this many seconds count toward
/// [`WorkloadStats::burst_depth_max`].
const BURST_WINDOW_SECS: f64 = 60.0;

/// Compute [`WorkloadStats`] over a job stream (assumed sorted by
/// arrival, as every validated stream is).
pub fn stats_of(jobs: &[JobSpec]) -> WorkloadStats {
    let total_bytes: u64 = jobs.iter().map(|j| j.dataset_bytes).sum();
    let max_bytes = jobs.iter().map(|j| j.dataset_bytes).max().unwrap_or(0);
    let p99_bytes = if jobs.is_empty() {
        0
    } else {
        let mut sizes: Vec<u64> = jobs.iter().map(|j| j.dataset_bytes).collect();
        sizes.sort_unstable();
        // Nearest-rank p99: the smallest size with at least 99% of
        // samples at or below it.
        let rank = ((sizes.len() as f64 * 0.99).ceil() as usize).clamp(1, sizes.len());
        sizes[rank - 1]
    };
    let mut burst_depth_max = 0usize;
    let mut lo = 0usize;
    for hi in 0..jobs.len() {
        while jobs[hi].arrival - jobs[lo].arrival > BURST_WINDOW_SECS {
            lo += 1;
        }
        burst_depth_max = burst_depth_max.max(hi - lo + 1);
    }
    let mean_gap = if jobs.len() > 1 {
        (jobs[jobs.len() - 1].arrival - jobs[0].arrival) / (jobs.len() - 1) as f64
    } else {
        0.0
    };
    WorkloadStats {
        jobs: jobs.len(),
        total_bytes,
        max_bytes,
        p99_bytes,
        tail_mass_top1: if total_bytes > 0 { max_bytes as f64 / total_bytes as f64 } else { 0.0 },
        burst_depth_max,
        mean_gap,
    }
}

/// A materialized workload: the generated (or replayed) job stream
/// plus the context needed to audit it — tenant names, the app mix,
/// and the seed it was generated from (0 for external traces that
/// don't record one).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Tenant names; a job's `tenant` field indexes this list.
    pub tenants: Vec<String>,
    /// App names jobs may reference.
    pub apps: Vec<String>,
    /// The generator seed (informational on replay).
    pub seed: u64,
    /// The job stream, sorted by arrival with contiguous ids.
    pub jobs: Vec<JobSpec>,
}

impl Workload {
    /// Materialize a [`WorkloadSpec`]: generate its job stream and
    /// carry the tenant/app names along. Invalid specs report the same
    /// typed [`WorkloadError`] as [`WorkloadSpec::try_generate`].
    pub fn from_spec(spec: &WorkloadSpec) -> Result<Workload, WorkloadError> {
        let jobs = spec.try_generate()?;
        Ok(Workload {
            tenants: spec.tenants.iter().map(|t| t.name.clone()).collect(),
            apps: spec.apps.clone(),
            seed: spec.seed,
            jobs,
        })
    }

    /// Serialize as a JSONL trace: one header line, one line per job.
    /// The output replays to a bit-identical [`Workload`], and dumping
    /// that replay reproduces the identical text.
    pub fn dump_jsonl(&self) -> String {
        let header = Header {
            schema: SCHEMA,
            kind: KIND.to_string(),
            seed: self.seed,
            apps: self.apps.clone(),
            tenants: self.tenants.clone(),
            jobs: self.jobs.len(),
        };
        let mut out = serde_json::to_string(&header).expect("serialize trace header");
        out.push('\n');
        for job in &self.jobs {
            out.push_str(&serde_json::to_string(job).expect("serialize job line"));
            out.push('\n');
        }
        out
    }

    /// Parse and validate a JSONL trace. Every malformed input —
    /// bad header, unparseable line, truncation, trailing data,
    /// out-of-order or mis-numbered jobs, semantically invalid fields,
    /// silent tenants — is a typed [`ReplayError`] naming the line.
    pub fn replay(text: &str) -> Result<Workload, ReplayError> {
        let mut lines = text.lines().enumerate();
        let header_line = lines
            .next()
            .map(|(_, l)| l)
            .filter(|l| !l.trim().is_empty())
            .ok_or_else(|| ReplayError::Header("empty trace".into()))?;
        let header: Header =
            serde_json::from_str(header_line).map_err(|e| ReplayError::Header(e.to_string()))?;
        if header.kind != KIND {
            return Err(ReplayError::Header(format!("kind {:?} is not {KIND:?}", header.kind)));
        }
        if header.schema != SCHEMA {
            return Err(ReplayError::Header(format!(
                "schema {} unsupported (want {SCHEMA})",
                header.schema
            )));
        }

        let mut jobs: Vec<JobSpec> = Vec::with_capacity(header.jobs);
        for (idx, line) in lines {
            let lineno = idx + 1; // enumerate is 0-based
            if line.trim().is_empty() {
                // A single trailing newline is the normal dump shape;
                // blank lines elsewhere count as trailing garbage.
                continue;
            }
            if jobs.len() == header.jobs {
                return Err(ReplayError::TrailingData { line: lineno });
            }
            let job: JobSpec = serde_json::from_str(line)
                .map_err(|e| ReplayError::Line { line: lineno, reason: e.to_string() })?;
            if job.id != jobs.len() {
                return Err(ReplayError::BadId { line: lineno, expected: jobs.len(), got: job.id });
            }
            let bad = |reason: &'static str| ReplayError::BadJob { line: lineno, reason };
            if !job.arrival.is_finite() || job.arrival < 0.0 {
                return Err(bad("arrival must be finite and >= 0"));
            }
            if let Some(prev) = jobs.last() {
                if job.arrival < prev.arrival {
                    return Err(ReplayError::OutOfOrder { line: lineno });
                }
            }
            if job.dataset_bytes == 0 {
                return Err(bad("dataset must be non-empty"));
            }
            if !job.deadline_slack.is_finite() || job.deadline_slack < 1.0 {
                return Err(bad("deadline slack must be finite and >= 1"));
            }
            if job.tenant >= header.tenants.len() {
                return Err(bad("tenant index out of range"));
            }
            if !header.apps.contains(&job.app) {
                return Err(bad("app not in the trace's app mix"));
            }
            jobs.push(job);
        }
        if jobs.len() < header.jobs {
            return Err(ReplayError::Truncated { expected: header.jobs, got: jobs.len() });
        }
        for (ti, tenant) in header.tenants.iter().enumerate() {
            if !jobs.iter().any(|j| j.tenant == ti) {
                return Err(ReplayError::SilentTenant { tenant: tenant.clone() });
            }
        }
        Ok(Workload { tenants: header.tenants, apps: header.apps, seed: header.seed, jobs })
    }

    /// Shape statistics of this workload's job stream.
    pub fn stats(&self) -> WorkloadStats {
        stats_of(&self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{LoadLevel, WorkloadShape};

    fn workload() -> Workload {
        let spec =
            WorkloadSpec::shaped(WorkloadShape::Bursty, LoadLevel::Medium, &["kmeans", "em"], 7);
        Workload::from_spec(&spec).expect("valid spec")
    }

    #[test]
    fn dump_then_replay_is_bit_identical() {
        let w = workload();
        let text = w.dump_jsonl();
        let r = Workload::replay(&text).expect("replay own dump");
        assert_eq!(w, r);
        // And the replayed workload dumps to the identical bytes — the
        // trace text is a fixpoint.
        assert_eq!(text, r.dump_jsonl());
    }

    #[test]
    fn replay_rejects_a_missing_or_foreign_header() {
        assert!(matches!(Workload::replay(""), Err(ReplayError::Header(_))));
        assert!(matches!(Workload::replay("not json\n"), Err(ReplayError::Header(_))));
        let wrong_kind =
            r#"{"schema":1,"kind":"fg-span","seed":0,"apps":[],"tenants":[],"jobs":0}"#;
        assert!(matches!(Workload::replay(wrong_kind), Err(ReplayError::Header(_))));
        let wrong_schema =
            r#"{"schema":9,"kind":"fg-workload","seed":0,"apps":[],"tenants":[],"jobs":0}"#;
        assert!(matches!(Workload::replay(wrong_schema), Err(ReplayError::Header(_))));
    }

    #[test]
    fn replay_pins_truncation_and_trailing_data() {
        let text = workload().dump_jsonl();
        let mut lines: Vec<&str> = text.lines().collect();
        let dropped = lines.pop().unwrap();
        let truncated = lines.join("\n");
        match Workload::replay(&truncated) {
            Err(ReplayError::Truncated { expected, got }) => assert_eq!(expected, got + 1),
            other => panic!("expected Truncated, got {other:?}"),
        }
        let trailing = format!("{text}{dropped}\n");
        assert!(matches!(Workload::replay(&trailing), Err(ReplayError::TrailingData { .. })));
    }

    #[test]
    fn replay_rejects_out_of_order_and_misnumbered_jobs() {
        let w = workload();
        let mut swapped = w.clone();
        swapped.jobs.swap(3, 4);
        // Swapping arrivals breaks ordering before ids are checked…
        let mut by_arrival = swapped.clone();
        by_arrival.jobs[3].id = 3;
        by_arrival.jobs[4].id = 4;
        assert!(matches!(
            Workload::replay(&by_arrival.dump_jsonl()),
            Err(ReplayError::OutOfOrder { .. })
        ));
        // …while a pure renumbering (arrivals intact) trips BadId.
        let mut renumbered = w.clone();
        renumbered.jobs[5].id = 17;
        assert!(matches!(
            Workload::replay(&renumbered.dump_jsonl()),
            Err(ReplayError::BadId { expected: 5, got: 17, .. })
        ));
    }

    #[test]
    fn replay_rejects_semantically_bad_fields_the_parser_accepts() {
        // The JSON layer round-trips NaN as a sentinel, so the parser
        // cannot be trusted to reject it — validation must.
        let mut w = workload();
        w.jobs[2].arrival = f64::NAN;
        w.jobs[2].id = 2;
        let err = Workload::replay(&w.dump_jsonl()).unwrap_err();
        assert!(
            matches!(err, ReplayError::BadJob { reason, .. } if reason.contains("arrival")),
            "{err}"
        );

        let mut w = workload();
        w.jobs[0].dataset_bytes = 0;
        assert!(matches!(
            Workload::replay(&w.dump_jsonl()),
            Err(ReplayError::BadJob { reason: "dataset must be non-empty", .. })
        ));

        let mut w = workload();
        w.jobs[0].deadline_slack = 0.5;
        assert!(matches!(
            Workload::replay(&w.dump_jsonl()),
            Err(ReplayError::BadJob { reason, .. }) if reason.contains("slack")
        ));

        let mut w = workload();
        w.jobs[0].tenant = 99;
        assert!(matches!(
            Workload::replay(&w.dump_jsonl()),
            Err(ReplayError::BadJob { reason, .. }) if reason.contains("tenant")
        ));

        let mut w = workload();
        w.jobs[0].app = "not-an-app".into();
        assert!(matches!(
            Workload::replay(&w.dump_jsonl()),
            Err(ReplayError::BadJob { reason, .. }) if reason.contains("app")
        ));
    }

    #[test]
    fn replay_rejects_unparseable_job_lines_by_number() {
        let text = workload().dump_jsonl();
        let mut lines: Vec<String> = text.lines().map(|s| s.to_string()).collect();
        lines[3] = "{\"id\": garbage".into();
        match Workload::replay(&lines.join("\n")) {
            Err(ReplayError::Line { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected Line, got {other:?}"),
        }
    }

    #[test]
    fn replay_names_silent_tenants() {
        let mut w = workload();
        w.tenants.push("tenant-ghost".into());
        assert_eq!(
            Workload::replay(&w.dump_jsonl()).unwrap_err(),
            ReplayError::SilentTenant { tenant: "tenant-ghost".into() }
        );
    }

    #[test]
    fn stats_capture_tail_mass_and_burst_depth() {
        let mk = |arrival: f64, bytes: u64, id: usize| JobSpec {
            id,
            tenant: 0,
            app: "kmeans".into(),
            dataset_bytes: bytes,
            arrival,
            deadline_slack: 2.0,
        };
        // Nine small jobs in one burst plus a giant straggler.
        let mut jobs: Vec<JobSpec> = (0..9).map(|i| mk(10.0 + i as f64, 1_000_000, i)).collect();
        jobs.push(mk(500.0, 91_000_000, 9));
        let s = stats_of(&jobs);
        assert_eq!(s.jobs, 10);
        assert_eq!(s.total_bytes, 100_000_000);
        assert_eq!(s.max_bytes, 91_000_000);
        assert!((s.tail_mass_top1 - 0.91).abs() < 1e-12);
        assert_eq!(s.burst_depth_max, 9);
        assert_eq!(s.p99_bytes, 91_000_000);
        let empty = stats_of(&[]);
        assert_eq!(empty.jobs, 0);
        assert_eq!(empty.burst_depth_max, 0);
        assert_eq!(empty.tail_mass_top1, 0.0);
    }

    #[test]
    fn every_preset_round_trips_through_the_trace_format() {
        for shape in WorkloadShape::ALL {
            for load in LoadLevel::ALL {
                let spec = WorkloadSpec::shaped(shape, load, &["kmeans", "em", "apriori"], 42);
                let w = Workload::from_spec(&spec).expect("valid spec");
                let r = Workload::replay(&w.dump_jsonl()).expect("replay");
                assert_eq!(w, r, "{} {}", shape.name(), load.name());
            }
        }
    }
}
