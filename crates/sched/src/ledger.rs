//! The predictor-accuracy ledger: the live record of how well
//! `T_exec = T_disk + T_net + T_comp` predictions are tracking
//! reality, and the drift detector built on top of it.
//!
//! Every cleanly completed job (no preemption, no mid-run migration —
//! those muddy the observation) appends an [`AccuracySample`] pairing
//! the target tuple `(app, repository, dataset_bytes, configuration)`
//! with the predicted and observed per-component breakdowns. Samples
//! are kept in a bounded ring per `(app, repository)` key; alongside
//! the ring, each key maintains online EWMA mean/variance of the
//! *normalized residual* per component,
//!
//! ```text
//! residual = (observed − predicted) / max(predicted, ε)
//! ```
//!
//! so a transfer that took 10× its prediction reads as ≈ 9 regardless
//! of dataset size. A [`DriftAlarm`] fires when a sample's z-score
//! against the key's prior EWMA statistics exceeds the configured
//! threshold *and* the residual itself is large in absolute terms —
//! the second gate keeps ordinary contention jitter (tiny residuals
//! over a tiny learned variance, which the bandwidth feedback loop
//! absorbs) from tripping the detector on fault-free runs.
//!
//! The ledger dumps as versioned JSONL — a header line naming the
//! format and configuration, then one line per retained sample, then
//! one per alarm — which doubles as the labelled
//! `(target, predicted, observed)` training corpus the ROADMAP's
//! `fg-learn` item needs. [`AccuracyLedger::replay_jsonl`] rebuilds a
//! ledger by re-ingesting the dumped corpus in order; when the dump
//! retains the full history (capacity ≥ samples ingested), the
//! rebuilt ledger is **bit-identical** to the live-accumulated one,
//! EWMA state included (`tests/ledger_determinism.rs` pins this by
//! property).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Format version written in the dump header.
pub const LEDGER_VERSION: u32 = 1;

/// Guard against division by a vanishing prediction when normalizing
/// residuals.
const PRED_EPS: f64 = 1e-9;

/// Variance floor when standardizing: a key whose residuals have been
/// essentially constant would otherwise turn any jitter into an
/// unbounded z-score.
const VAR_FLOOR: f64 = 1e-4;

/// One predicted component of the paper's additive model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Component {
    /// `T_disk` — data-node retrieval.
    Disk,
    /// `T_net` — the WAN transfer.
    Net,
    /// `T_comp` — compute-node processing.
    Comp,
}

impl Component {
    /// All three, in model order.
    pub const ALL: [Component; 3] = [Component::Disk, Component::Net, Component::Comp];

    /// Lowercase name, as used in dump lines and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Component::Disk => "disk",
            Component::Net => "net",
            Component::Comp => "comp",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::Disk => 0,
            Component::Net => 1,
            Component::Comp => 2,
        }
    }
}

/// Drift-detector tuning. The defaults are calibrated on the demo
/// grid so that fault-free runs of every [`WorkloadShape`] stay
/// silent while a sustained WAN degradation of 10× or worse trips
/// within a handful of completions (`ext-obs` pins both properties).
///
/// [`WorkloadShape`]: crate::workload::WorkloadShape
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// EWMA smoothing factor for the residual mean/variance.
    pub alpha: f64,
    /// Samples a key must accumulate before its alarms arm.
    pub min_samples: u64,
    /// |z| a sample must reach against the key's prior statistics.
    pub z_threshold: f64,
    /// |normalized residual| the tripping sample must reach — the
    /// absolute gate that keeps small-variance jitter (a ±10% wobble
    /// over a near-zero learned variance can z-score high) quiet.
    pub residual_threshold: f64,
    /// Retained samples per `(app, repository)` ring.
    pub capacity: usize,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            alpha: 0.25,
            min_samples: 8,
            z_threshold: 4.0,
            residual_threshold: 3.0,
            capacity: 256,
        }
    }
}

/// One completed job's labelled observation: the prediction target,
/// the predicted breakdown, and what actually happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracySample {
    /// Global ingestion sequence number, assigned by the ledger (the
    /// caller's value is overwritten). Dump order == `seq` order ==
    /// the exact order the live ledger folded samples into its EWMA
    /// state, which is what makes replay bit-identical.
    pub seq: u64,
    /// Submission id.
    pub id: usize,
    /// Tenant index.
    pub tenant: usize,
    /// Application name (half of the ledger key).
    pub app: String,
    /// Repository name (the other half).
    pub repo: String,
    /// Configuration label the job ran under.
    pub config: String,
    /// Dataset size in bytes.
    pub dataset_bytes: u64,
    /// Predicted `(disk, net, comp)` durations, seconds.
    pub predicted: [f64; 3],
    /// Observed `(disk, net, comp)` durations, seconds.
    pub observed: [f64; 3],
    /// Placement instant (sim clock).
    pub placed_at: f64,
    /// Completion instant (sim clock).
    pub finish: f64,
}

impl AccuracySample {
    /// The normalized residual of one component.
    pub fn residual(&self, c: Component) -> f64 {
        let i = c.index();
        (self.observed[i] - self.predicted[i]) / self.predicted[i].max(PRED_EPS)
    }
}

/// A drift detection: one component of one `(app, repository)` key
/// left its learned residual band. Raised through the [`CoreEvent`]
/// log when the event log is on, and always recorded in the ledger.
///
/// [`CoreEvent`]: crate::core::CoreEvent
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftAlarm {
    /// Application name.
    pub app: String,
    /// Repository name.
    pub repo: String,
    /// Which predicted component drifted.
    pub component: Component,
    /// Sim-clock instant (the tripping sample's completion).
    pub at: f64,
    /// Submission id of the tripping sample.
    pub job_id: usize,
    /// The tripping sample's normalized residual.
    pub residual: f64,
    /// Its z-score against the key's prior EWMA statistics.
    pub z: f64,
    /// The key's EWMA residual mean after folding the sample in.
    pub mean: f64,
    /// Samples the key had seen, including this one.
    pub samples: u64,
}

/// Online EWMA mean/variance of one component's residual stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResidualStat {
    /// Samples folded in.
    pub count: u64,
    /// EWMA mean of the normalized residual.
    pub mean: f64,
    /// EWMA variance of the normalized residual.
    pub var: f64,
}

impl ResidualStat {
    /// Fold `x` in; returns the z-score of `x` against the *prior*
    /// statistics (0 for the first sample — there is no prior).
    fn observe(&mut self, x: f64, alpha: f64) -> f64 {
        if self.count == 0 {
            self.count = 1;
            self.mean = x;
            self.var = 0.0;
            return 0.0;
        }
        let z = (x - self.mean) / self.var.max(VAR_FLOOR).sqrt();
        let d = x - self.mean;
        let incr = alpha * d;
        self.mean += incr;
        self.var = (1.0 - alpha) * (self.var + d * incr);
        self.count += 1;
        z
    }
}

/// One `(app, repository)` key's state: the bounded sample ring and
/// the per-component residual statistics over the key's *full*
/// history (statistics never forget; only the ring is bounded).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyLedger {
    /// Application name.
    pub app: String,
    /// Repository name.
    pub repo: String,
    /// The retained samples, oldest first (bounded by
    /// [`DriftConfig::capacity`]).
    pub samples: VecDeque<AccuracySample>,
    /// Samples ever ingested for this key (≥ `samples.len()`).
    pub total: u64,
    /// Per-component residual statistics, in [`Component::ALL`] order.
    pub stats: [ResidualStat; 3],
}

/// A compact, serializable view of one key for telemetry snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyDrift {
    /// Application name.
    pub app: String,
    /// Repository name.
    pub repo: String,
    /// Samples ever ingested.
    pub total: u64,
    /// EWMA residual mean per component (`disk`, `net`, `comp`).
    pub mean: [f64; 3],
    /// EWMA residual variance per component.
    pub var: [f64; 3],
}

/// The predictor-accuracy ledger: bounded per-key sample rings, the
/// drift detector, and the alarm log.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyLedger {
    cfg: DriftConfig,
    /// Keys in first-seen order (deterministic, replay-stable).
    keys: Vec<KeyLedger>,
    alarms: Vec<DriftAlarm>,
    total: u64,
}

impl AccuracyLedger {
    /// An empty ledger under `cfg`.
    pub fn new(cfg: DriftConfig) -> AccuracyLedger {
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        assert!(cfg.capacity >= 1, "ledger capacity must be at least 1");
        assert!(
            cfg.z_threshold > 0.0 && cfg.residual_threshold >= 0.0,
            "drift thresholds must be positive"
        );
        AccuracyLedger { cfg, keys: Vec::new(), alarms: Vec::new(), total: 0 }
    }

    /// The detector configuration.
    pub fn config(&self) -> DriftConfig {
        self.cfg
    }

    /// Samples ever ingested, across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-key state, in first-seen order.
    pub fn keys(&self) -> &[KeyLedger] {
        &self.keys
    }

    /// Every alarm raised so far, in firing order.
    pub fn alarms(&self) -> &[DriftAlarm] {
        &self.alarms
    }

    /// The newest `n` retained samples across all keys, in ingestion
    /// order — the flight recorder's "ledger tail".
    pub fn tail(&self, n: usize) -> Vec<AccuracySample> {
        let mut all: Vec<&AccuracySample> =
            self.keys.iter().flat_map(|k| k.samples.iter()).collect();
        all.sort_by_key(|s| s.seq);
        let skip = all.len().saturating_sub(n);
        all.into_iter().skip(skip).cloned().collect()
    }

    /// Compact per-key drift summaries for telemetry snapshots.
    pub fn key_drift(&self) -> Vec<KeyDrift> {
        self.keys
            .iter()
            .map(|k| KeyDrift {
                app: k.app.clone(),
                repo: k.repo.clone(),
                total: k.total,
                mean: [k.stats[0].mean, k.stats[1].mean, k.stats[2].mean],
                var: [k.stats[0].var, k.stats[1].var, k.stats[2].var],
            })
            .collect()
    }

    /// Ingest one sample: append to its key's ring, update the EWMA
    /// statistics, and return any alarms this sample tripped (also
    /// recorded in [`alarms`](AccuracyLedger::alarms)).
    pub fn ingest(&mut self, mut sample: AccuracySample) -> Vec<DriftAlarm> {
        sample.seq = self.total;
        let ki = match self.keys.iter().position(|k| k.app == sample.app && k.repo == sample.repo) {
            Some(i) => i,
            None => {
                self.keys.push(KeyLedger {
                    app: sample.app.clone(),
                    repo: sample.repo.clone(),
                    samples: VecDeque::new(),
                    total: 0,
                    stats: [ResidualStat::default(); 3],
                });
                self.keys.len() - 1
            }
        };
        let cfg = self.cfg;
        let key = &mut self.keys[ki];
        key.total += 1;
        self.total += 1;
        let mut fired = Vec::new();
        for c in Component::ALL {
            let x = sample.residual(c);
            let st = &mut key.stats[c.index()];
            let prior_count = st.count;
            let z = st.observe(x, cfg.alpha);
            if prior_count >= cfg.min_samples
                && z.abs() >= cfg.z_threshold
                && x.abs() >= cfg.residual_threshold
            {
                fired.push(DriftAlarm {
                    app: key.app.clone(),
                    repo: key.repo.clone(),
                    component: c,
                    at: sample.finish,
                    job_id: sample.id,
                    residual: x,
                    z,
                    mean: st.mean,
                    samples: st.count,
                });
            }
        }
        key.samples.push_back(sample);
        while key.samples.len() > cfg.capacity {
            key.samples.pop_front();
        }
        self.alarms.extend(fired.iter().cloned());
        fired
    }

    /// Dump as versioned JSONL: a header line, one `sample` line per
    /// retained sample in ingestion order, one `alarm` line per alarm.
    pub fn dump_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct Header {
            kind: &'static str,
            version: u32,
            config: DriftConfig,
            total: u64,
        }
        let mut out = String::new();
        let header = Header {
            kind: "fg-accuracy-ledger",
            version: LEDGER_VERSION,
            config: self.cfg,
            total: self.total,
        };
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        // Retained samples in global ingestion order: every sample
        // carries (finish, id), and ingestion happens in nondecreasing
        // completion order, so the merge reproduces it.
        for s in self.tail(usize::MAX) {
            out.push_str(&serde_json::to_string(&DumpLine::Sample(s)).expect("sample serializes"));
            out.push('\n');
        }
        for a in &self.alarms {
            out.push_str(
                &serde_json::to_string(&DumpLine::Alarm(a.clone())).expect("alarm serializes"),
            );
            out.push('\n');
        }
        out
    }

    /// Rebuild a ledger by re-ingesting a dumped corpus, line by line,
    /// under the dump's own configuration. Alarm lines are checked
    /// against the alarms re-raised during ingestion — a corpus whose
    /// alarms cannot be reproduced is corrupt. When the dump retained
    /// the full history, the result is bit-identical to the live
    /// ledger that produced it.
    pub fn replay_jsonl(text: &str) -> Result<AccuracyLedger, String> {
        #[derive(Deserialize)]
        struct Header {
            kind: String,
            version: u32,
            config: DriftConfig,
        }
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty ledger dump")?;
        let header: Header =
            serde_json::from_str(first).map_err(|e| format!("line 1: bad header: {e}"))?;
        if header.kind != "fg-accuracy-ledger" {
            return Err(format!("line 1: not a ledger dump (kind {:?})", header.kind));
        }
        if header.version != LEDGER_VERSION {
            return Err(format!(
                "line 1: ledger version {} (this build reads {LEDGER_VERSION})",
                header.version
            ));
        }
        let mut ledger = AccuracyLedger::new(header.config);
        let mut dumped_alarms: Vec<DriftAlarm> = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let parsed: DumpLine =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            match parsed {
                DumpLine::Sample(s) => {
                    ledger.ingest(s);
                }
                DumpLine::Alarm(a) => dumped_alarms.push(a),
            }
        }
        if ledger.alarms != dumped_alarms {
            return Err(format!(
                "replayed corpus raised {} alarms but the dump recorded {}",
                ledger.alarms.len(),
                dumped_alarms.len()
            ));
        }
        Ok(ledger)
    }
}

/// One non-header dump line (externally tagged:
/// `{"Sample": {...}}` / `{"Alarm": {...}}`).
#[derive(Serialize, Deserialize)]
enum DumpLine {
    /// A retained sample.
    Sample(AccuracySample),
    /// A raised alarm.
    Alarm(DriftAlarm),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: usize, net_obs: f64) -> AccuracySample {
        AccuracySample {
            seq: 0, // assigned by ingest
            id,
            tenant: 0,
            app: "kmeans".into(),
            repo: "repo-a".into(),
            config: "4x4".into(),
            dataset_bytes: 1 << 28,
            predicted: [1.0, 10.0, 5.0],
            observed: [1.0, net_obs, 5.0],
            placed_at: id as f64 * 10.0,
            finish: id as f64 * 10.0 + 16.0,
        }
    }

    #[test]
    fn residuals_are_normalized_per_component() {
        let s = sample(0, 30.0);
        assert_eq!(s.residual(Component::Disk), 0.0);
        assert_eq!(s.residual(Component::Net), 2.0);
        assert_eq!(s.residual(Component::Comp), 0.0);
    }

    #[test]
    fn a_sustained_shift_trips_exactly_one_component() {
        let mut ledger = AccuracyLedger::new(DriftConfig::default());
        for i in 0..20 {
            // Mild jitter around the prediction: ±10%.
            let obs = 10.0 * if i % 2 == 0 { 1.1 } else { 0.9 };
            assert!(ledger.ingest(sample(i, obs)).is_empty(), "jitter must not alarm");
        }
        // The WAN collapses 10×: every later transfer takes ~100s.
        let mut tripped = None;
        for i in 20..40 {
            let fired = ledger.ingest(sample(i, 100.0));
            if let Some(a) = fired.first() {
                tripped = Some((i, a.clone()));
                break;
            }
        }
        let (at, alarm) = tripped.expect("a 10x degradation must trip the detector");
        assert!(at - 20 <= 5, "alarm came {} jobs after onset", at - 20);
        assert_eq!(alarm.component, Component::Net);
        assert!(alarm.residual > 5.0);
        assert_eq!(ledger.alarms().len(), 1);
    }

    #[test]
    fn alarms_stay_silent_below_min_samples() {
        let cfg = DriftConfig { min_samples: 50, ..DriftConfig::default() };
        let mut ledger = AccuracyLedger::new(cfg);
        for i in 0..40 {
            let obs = if i < 10 { 10.0 } else { 200.0 };
            assert!(ledger.ingest(sample(i, obs)).is_empty());
        }
    }

    #[test]
    fn the_ring_is_bounded_but_statistics_never_forget() {
        let cfg = DriftConfig { capacity: 4, ..DriftConfig::default() };
        let mut ledger = AccuracyLedger::new(cfg);
        for i in 0..100 {
            ledger.ingest(sample(i, 10.5));
        }
        let key = &ledger.keys()[0];
        assert_eq!(key.samples.len(), 4);
        assert_eq!(key.samples[0].id, 96, "oldest retained sample");
        assert_eq!(key.total, 100);
        assert_eq!(key.stats[Component::Net.index()].count, 100);
    }

    #[test]
    fn dump_replay_is_bit_identical_when_nothing_was_evicted() {
        let mut live = AccuracyLedger::new(DriftConfig::default());
        for i in 0..30 {
            let obs = 10.0 + (i % 7) as f64;
            live.ingest(sample(i, obs));
        }
        for i in 30..45 {
            live.ingest(sample(i, 120.0)); // trips at least one alarm
        }
        assert!(!live.alarms().is_empty());
        let dump = live.dump_jsonl();
        let rebuilt = AccuracyLedger::replay_jsonl(&dump).expect("dump replays");
        assert_eq!(live, rebuilt);
        // And the rebuild is a fixpoint.
        assert_eq!(rebuilt.dump_jsonl(), dump);
    }

    #[test]
    fn replay_rejects_wrong_kind_and_version() {
        assert!(AccuracyLedger::replay_jsonl("").is_err());
        assert!(AccuracyLedger::replay_jsonl(r#"{"kind":"other","version":1,"config":{"alpha":0.25,"min_samples":8,"z_threshold":4.0,"residual_threshold":3.0,"capacity":256},"total":0}"#).is_err());
        let bad_version = r#"{"kind":"fg-accuracy-ledger","version":99,"config":{"alpha":0.25,"min_samples":8,"z_threshold":4.0,"residual_threshold":3.0,"capacity":256},"total":0}"#;
        let err = AccuracyLedger::replay_jsonl(bad_version).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn tail_preserves_ingestion_order_across_keys() {
        let mut ledger = AccuracyLedger::new(DriftConfig::default());
        let mut other = sample(1, 10.0);
        other.app = "apriori".into();
        ledger.ingest(sample(0, 10.0));
        ledger.ingest(other);
        let tail = ledger.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].app, "kmeans");
        assert_eq!(tail[0].seq, 0);
        assert_eq!(tail[1].app, "apriori");
        assert_eq!(tail[1].seq, 1);
        let last = ledger.tail(1);
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].app, "apriori");
    }
}
