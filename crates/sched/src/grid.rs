//! The static grid a scheduler places jobs onto.
//!
//! A grid is a set of data repositories (each a replica holding every
//! dataset, with a capacitated WAN uplink), a set of compute sites
//! (each with a capacitated ingress link and a pool of compute nodes),
//! a menu of `(n, c)` configurations, and one prediction model per
//! application. The per-stream WAN bandwidth on each repository is the
//! *nominal* value the predictor sees for a first placement; the
//! aggregate capacities are what the contention model enforces when
//! concurrent transfer phases share a link.

use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};
use fg_predict::{AppClasses, Profile, ScalingFactors};
use std::collections::HashMap;

/// The prediction model for one application: its profile-run summary
/// plus the scaling classes the class-inference step assigned.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// The profile-run summary parameterizing every prediction.
    pub profile: Profile,
    /// Reduction-object size and global-reduction time classes.
    pub classes: AppClasses,
}

/// One data repository replica.
#[derive(Debug, Clone)]
pub struct RepoSpec {
    /// The repository site (machine type, node count, backplane).
    pub site: RepositorySite,
    /// Nominal per-stream WAN description used for prediction.
    pub wan: Wan,
    /// Aggregate uplink capacity (bytes/sec) shared by every concurrent
    /// transfer leaving this repository.
    pub wan_capacity: f64,
}

/// One compute site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// The compute site (machine type, node count, interconnect).
    pub site: ComputeSite,
    /// Aggregate ingress capacity (bytes/sec) shared by every
    /// concurrent transfer arriving at this site.
    pub ingress_capacity: f64,
}

/// The full grid description.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Repository replicas; every dataset is available at each.
    pub repos: Vec<RepoSpec>,
    /// Compute sites.
    pub sites: Vec<SiteSpec>,
    /// The `(n, c)` configuration menu placements choose from.
    pub configs: Vec<Configuration>,
    /// Per-application prediction models, sorted by app name.
    pub apps: Vec<(String, AppModel)>,
    /// Cross-cluster scaling factors, by compute machine type.
    pub factors: HashMap<String, ScalingFactors>,
}

impl GridSpec {
    /// A small homogeneous demo grid: two Pentium repositories (one
    /// fast, one slower replica) and two Pentium/Myrinet compute sites.
    ///
    /// Aggregate capacities are expressed in the model's *effective*
    /// transfer-rate units — a flow moving `s` bytes over the predicted
    /// `T̂_network` drains at `s / T̂_network = (ŝ·n·b)/(n̂·b̂·t̂_n)`,
    /// which the profile pins far below the raw link bandwidth. Each
    /// repository uplink is provisioned for exactly one maximal-
    /// configuration transfer of the heaviest app, so an uncontended
    /// job achieves its predicted transfer time exactly and contention
    /// appears precisely when transfers overlap.
    pub fn demo(apps: Vec<(String, AppModel)>) -> GridSpec {
        let max_streams = 4.0;
        let fast = 1e6;
        let slow = 8e5;
        // Effective per-stream rate at WAN bandwidth `bw`, maximized
        // over the app mix (falls back to the raw bandwidth when no
        // apps are registered, so capacities are never zero).
        let stream_rate = |bw: f64| -> f64 {
            let rate = apps
                .iter()
                .map(|(_, m)| {
                    m.profile.dataset_bytes as f64
                        / (m.profile.data_nodes as f64 * m.profile.t_network)
                        * (bw / m.profile.wan_bw)
                })
                .fold(0.0f64, f64::max);
            if rate > 0.0 {
                rate
            } else {
                bw
            }
        };
        let fast_cap = max_streams * stream_rate(fast);
        let slow_cap = max_streams * stream_rate(slow);
        GridSpec {
            repos: vec![
                RepoSpec {
                    site: RepositorySite::pentium_repository("repo-a", 8),
                    wan: Wan::per_stream(fast),
                    wan_capacity: fast_cap,
                },
                RepoSpec {
                    site: RepositorySite::pentium_repository("repo-b", 8),
                    wan: Wan::per_stream(slow),
                    wan_capacity: slow_cap,
                },
            ],
            sites: vec![
                SiteSpec {
                    site: ComputeSite::pentium_myrinet("site-a", 16),
                    ingress_capacity: 2.0 * fast_cap,
                },
                SiteSpec {
                    site: ComputeSite::pentium_myrinet("site-b", 8),
                    ingress_capacity: fast_cap,
                },
            ],
            configs: vec![
                Configuration::new(1, 1),
                Configuration::new(1, 2),
                Configuration::new(2, 4),
                Configuration::new(4, 8),
            ],
            apps: sorted_apps(apps),
            factors: HashMap::new(),
        }
    }

    /// Look up an application's prediction model.
    pub fn app(&self, name: &str) -> Option<&AppModel> {
        self.apps.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Total compute slots across every site.
    pub fn total_compute_slots(&self) -> usize {
        self.sites.iter().map(|s| s.site.max_nodes).sum()
    }

    /// The smallest configuration's compute-node count: the least a
    /// queued job could possibly occupy.
    pub fn min_config_slots(&self) -> usize {
        self.configs.iter().map(|c| c.compute_nodes).min().expect("grid has configurations")
    }

    /// The largest configuration's compute-node count: what a queued
    /// job would occupy if placed unconstrained (its slot *demand* for
    /// fair-share purposes).
    pub fn max_config_slots(&self) -> usize {
        self.configs.iter().map(|c| c.compute_nodes).max().expect("grid has configurations")
    }
}

fn sorted_apps(mut apps: Vec<(String, AppModel)>) -> Vec<(String, AppModel)> {
    apps.sort_by(|a, b| a.0.cmp(&b.0));
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AppModel {
        AppModel {
            profile: Profile {
                app: "kmeans".into(),
                data_nodes: 1,
                compute_nodes: 1,
                wan_bw: 1e6,
                dataset_bytes: 1_000_000,
                t_disk: 40.0,
                t_network: 20.0,
                t_compute: 100.0,
                t_ro: 0.0,
                t_g: 0.5,
                max_obj_bytes: 512,
                passes: 1,
                repo_machine: "pentium-700".into(),
                compute_machine: "pentium-700".into(),
            },
            classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
        }
    }

    #[test]
    fn demo_grid_is_well_formed() {
        let g = GridSpec::demo(vec![("kmeans".into(), model())]);
        assert_eq!(g.repos.len(), 2);
        assert_eq!(g.total_compute_slots(), 24);
        assert_eq!(g.min_config_slots(), 1);
        assert!(g.app("kmeans").is_some());
        assert!(g.app("nope").is_none());
        // Every configuration fits every repo and site of the demo.
        for cfg in &g.configs {
            for r in &g.repos {
                assert!(cfg.data_nodes <= r.site.max_nodes);
            }
            for s in &g.sites {
                assert!(cfg.compute_nodes <= s.site.max_nodes);
            }
        }
    }

    #[test]
    fn apps_are_sorted_by_name() {
        let g = GridSpec::demo(vec![("em".into(), model()), ("apriori".into(), model())]);
        assert_eq!(g.apps[0].0, "apriori");
        assert_eq!(g.apps[1].0, "em");
    }
}
