//! Pluggable queueing disciplines.
//!
//! A policy decides three things: the order in which queued jobs are
//! considered for placement, whether the queue head blocks later jobs
//! from starting ahead of it (no backfilling), and whether jobs face
//! predictor-based admission control at submission.

use crate::core::QueuedJob;

/// The queueing disciplines the scheduler implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First-come first-served, no backfilling: the oldest queued job
    /// blocks everything behind it until it can be placed.
    Fcfs,
    /// FCFS order, but when the head cannot start, later jobs that fit
    /// the free nodes may run ahead (conservative backfilling without
    /// reservations).
    FcfsBackfill,
    /// Shortest-predicted-job-first: jobs are considered in increasing
    /// order of their standalone predicted execution time; implies
    /// backfilling (a long head never blocks a short job).
    Spjf,
    /// Earliest-deadline-first with predictor-based admission control:
    /// jobs whose predicted completion (queue-backlog estimate plus
    /// load-corrected execution prediction) misses their deadline are
    /// rejected at submission; admitted jobs are served EDF without
    /// backfilling.
    EdfAdmit,
}

impl Policy {
    /// Every policy, in figure order.
    pub const ALL: [Policy; 4] =
        [Policy::Fcfs, Policy::FcfsBackfill, Policy::Spjf, Policy::EdfAdmit];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::FcfsBackfill => "fcfs-backfill",
            Policy::Spjf => "spjf",
            Policy::EdfAdmit => "edf-admit",
        }
    }

    /// Does the policy reject jobs at submission when their predicted
    /// completion misses the deadline?
    pub fn admits(self) -> bool {
        matches!(self, Policy::EdfAdmit)
    }

    /// Does an unplaceable queue head block the jobs behind it?
    pub fn head_blocking(self) -> bool {
        matches!(self, Policy::Fcfs | Policy::EdfAdmit)
    }

    /// The queue-ordering key: smaller sorts first; ties broken by
    /// submission id for determinism.
    pub(crate) fn key(self, job: &QueuedJob) -> (f64, usize) {
        let metric = match self {
            Policy::Fcfs | Policy::FcfsBackfill => job.spec.arrival,
            Policy::Spjf => job.standalone,
            Policy::EdfAdmit => job.deadline.unwrap_or(f64::INFINITY),
        };
        (metric, job.spec.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::JobSpec;

    fn queued(id: usize, arrival: f64, standalone: f64, deadline: Option<f64>) -> QueuedJob {
        QueuedJob {
            spec: JobSpec {
                id,
                tenant: 0,
                app: "kmeans".into(),
                dataset_bytes: 1,
                arrival,
                deadline_slack: 2.0,
            },
            standalone,
            deadline,
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["fcfs", "fcfs-backfill", "spjf", "edf-admit"]);
    }

    #[test]
    fn ordering_keys_follow_the_discipline() {
        let early_long = queued(0, 1.0, 50.0, Some(100.0));
        let late_short = queued(1, 2.0, 5.0, Some(20.0));
        assert!(Policy::Fcfs.key(&early_long) < Policy::Fcfs.key(&late_short));
        assert!(Policy::Spjf.key(&late_short) < Policy::Spjf.key(&early_long));
        assert!(Policy::EdfAdmit.key(&late_short) < Policy::EdfAdmit.key(&early_long));
    }

    #[test]
    fn flags_match_the_design() {
        assert!(Policy::Fcfs.head_blocking() && !Policy::Fcfs.admits());
        assert!(!Policy::FcfsBackfill.head_blocking());
        assert!(!Policy::Spjf.head_blocking());
        assert!(Policy::EdfAdmit.head_blocking() && Policy::EdfAdmit.admits());
    }
}
