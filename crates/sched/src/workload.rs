//! Seeded, deterministic multi-tenant job streams.
//!
//! Each tenant submits jobs with exponential inter-arrival times, a
//! log-uniform dataset-size distribution (grid workload studies find
//! heavy-tailed job sizes; log-uniform is the simplest deterministic
//! stand-in), and a uniform deadline-slack distribution. Every random
//! choice flows through [`fg_sim::rng::stream_rng`] keyed by the
//! workload seed and the tenant name, so adding a tenant never perturbs
//! the others and the same spec always generates the identical stream.

use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::Serialize;

/// One tenant's submission behaviour.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; also the RNG stream label.
    pub name: String,
    /// How many jobs the tenant submits.
    pub jobs: usize,
    /// Mean of the exponential inter-arrival distribution (seconds).
    pub mean_interarrival: f64,
    /// Dataset-size range in megabytes, sampled log-uniformly.
    pub dataset_mb: (f64, f64),
    /// Deadline slack range: the deadline is the arrival plus slack
    /// times the job's standalone predicted execution time. Sampled
    /// uniformly; values must be `>= 1`.
    pub deadline_slack: (f64, f64),
}

/// Workload intensity presets for the three-load-level experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLevel {
    /// Arrivals sparse enough that jobs rarely overlap.
    Light,
    /// Moderate overlap: queues form but drain.
    Medium,
    /// Arrival rate near (or past) the grid's service rate.
    Heavy,
}

impl LoadLevel {
    /// All levels, light to heavy.
    pub const ALL: [LoadLevel; 3] = [LoadLevel::Light, LoadLevel::Medium, LoadLevel::Heavy];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LoadLevel::Light => "light",
            LoadLevel::Medium => "medium",
            LoadLevel::Heavy => "heavy",
        }
    }

    /// Mean inter-arrival time per tenant at this level (seconds).
    fn mean_interarrival(self) -> f64 {
        match self {
            LoadLevel::Light => 400.0,
            LoadLevel::Medium => 100.0,
            LoadLevel::Heavy => 25.0,
        }
    }
}

/// A full workload description: tenants, app mix, and the seed.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The tenants submitting jobs.
    pub tenants: Vec<TenantSpec>,
    /// App mix: each job picks one of these names uniformly.
    pub apps: Vec<String>,
    /// Base seed for every stream.
    pub seed: u64,
}

/// One generated job, in global submission order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Submission-order id, `0..`.
    pub id: usize,
    /// Index of the submitting tenant in the workload's tenant list.
    pub tenant: usize,
    /// Application name (must have an `AppModel` in the grid).
    pub app: String,
    /// Logical dataset size in bytes.
    pub dataset_bytes: u64,
    /// Arrival instant (seconds of simulated time).
    pub arrival: f64,
    /// Deadline slack multiplier over the standalone predicted time.
    pub deadline_slack: f64,
}

/// Uniform sample over `[lo, hi)`, degenerating to `lo` when the range
/// is empty (the vendored RNG rejects empty ranges).
fn uniform(rng: &mut rand::rngs::StdRng, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

impl WorkloadSpec {
    /// The canonical three-tenant preset at a given load level: one
    /// high-rate small-job tenant, one medium tenant, and one tenant
    /// submitting fewer but larger jobs — loosely the shape grid-trace
    /// characterizations report (many small analyses, a tail of bulk
    /// jobs).
    pub fn preset(load: LoadLevel, apps: &[&str], seed: u64) -> WorkloadSpec {
        let base = load.mean_interarrival();
        WorkloadSpec {
            tenants: vec![
                TenantSpec {
                    name: "tenant-small".into(),
                    jobs: 10,
                    mean_interarrival: base * 0.6,
                    dataset_mb: (16.0, 64.0),
                    deadline_slack: (2.0, 4.0),
                },
                TenantSpec {
                    name: "tenant-mid".into(),
                    jobs: 8,
                    mean_interarrival: base,
                    dataset_mb: (32.0, 128.0),
                    deadline_slack: (2.0, 5.0),
                },
                TenantSpec {
                    name: "tenant-bulk".into(),
                    jobs: 5,
                    mean_interarrival: base * 1.8,
                    dataset_mb: (96.0, 384.0),
                    deadline_slack: (3.0, 8.0),
                },
            ],
            apps: apps.iter().map(|a| a.to_string()).collect(),
            seed,
        }
    }

    /// Generate the job stream: per-tenant streams merged and sorted by
    /// arrival (ties broken by tenant index, then per-tenant sequence),
    /// with ids assigned in that global order.
    pub fn generate(&self) -> Vec<JobSpec> {
        assert!(!self.apps.is_empty(), "workload needs at least one app");
        let mut jobs: Vec<(f64, usize, usize, JobSpec)> = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            assert!(
                tenant.mean_interarrival > 0.0
                    && tenant.dataset_mb.0 > 0.0
                    && tenant.dataset_mb.1 >= tenant.dataset_mb.0
                    && tenant.deadline_slack.0 >= 1.0
                    && tenant.deadline_slack.1 >= tenant.deadline_slack.0,
                "bad tenant spec {:?}",
                tenant.name
            );
            let mut rng = stream_rng(self.seed, &format!("workload-{}", tenant.name));
            let mut now = 0.0f64;
            for seq in 0..tenant.jobs {
                let u: f64 = rng.gen_range(0.0..1.0);
                now += -tenant.mean_interarrival * (1.0 - u).ln();
                let (lo, hi) = tenant.dataset_mb;
                let mb = uniform(&mut rng, lo.ln(), hi.ln()).exp();
                let slack = uniform(&mut rng, tenant.deadline_slack.0, tenant.deadline_slack.1);
                let app = self.apps[rng.gen_range(0..self.apps.len())].clone();
                jobs.push((
                    now,
                    ti,
                    seq,
                    JobSpec {
                        id: 0, // assigned after the global sort
                        tenant: ti,
                        app,
                        dataset_bytes: (mb * 1e6).round() as u64,
                        arrival: now,
                        deadline_slack: slack,
                    },
                ));
            }
        }
        jobs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        jobs.into_iter()
            .enumerate()
            .map(|(id, (_, _, _, mut j))| {
                j.id = id;
                j
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::preset(LoadLevel::Medium, &["kmeans", "em"], 7)
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut other = spec();
        other.seed = 8;
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn jobs_are_sorted_with_positional_ids() {
        let jobs = spec().generate();
        assert_eq!(jobs.len(), 23);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            if i > 0 {
                assert!(j.arrival >= jobs[i - 1].arrival);
            }
        }
    }

    #[test]
    fn samples_respect_the_spec_ranges() {
        let s = spec();
        for j in s.generate() {
            let t = &s.tenants[j.tenant];
            let mb = j.dataset_bytes as f64 / 1e6;
            assert!(mb >= t.dataset_mb.0 * 0.99 && mb <= t.dataset_mb.1 * 1.01, "size {mb}");
            assert!(
                j.deadline_slack >= t.deadline_slack.0 && j.deadline_slack <= t.deadline_slack.1
            );
            assert!(s.apps.contains(&j.app));
            assert!(j.arrival > 0.0);
        }
    }

    #[test]
    fn heavier_load_arrives_faster() {
        let light = WorkloadSpec::preset(LoadLevel::Light, &["kmeans"], 7).generate();
        let heavy = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 7).generate();
        let span = |jobs: &[JobSpec]| jobs.last().unwrap().arrival;
        assert!(span(&heavy) < span(&light));
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_existing_streams() {
        let base = spec().generate();
        let mut widened = spec();
        widened.tenants.push(TenantSpec {
            name: "tenant-extra".into(),
            jobs: 3,
            mean_interarrival: 100.0,
            dataset_mb: (4.0, 8.0),
            deadline_slack: (1.5, 2.0),
        });
        let wide = widened.generate();
        // Every original (tenant, arrival, bytes) triple survives.
        for j in &base {
            assert!(wide.iter().any(|w| w.tenant == j.tenant
                && w.arrival == j.arrival
                && w.dataset_bytes == j.dataset_bytes));
        }
    }
}
