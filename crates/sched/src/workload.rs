//! Seeded, deterministic multi-tenant job streams.
//!
//! Grid-trace characterizations (Guazzone et al., *Mining the Workload
//! of Real Grid Computing Systems*) report three dominant structures in
//! real grid traffic: heavy-tailed job sizes (lognormal bodies with
//! Pareto tails), diurnal/weekly arrival cycles, and bursty
//! bag-of-tasks sessions. This module composes all three from explicit
//! building blocks — [`SizeDist`] for dataset sizes,
//! [`ArrivalProcess`] (optionally modulated by a [`Sinusoid`]) for
//! arrivals — while keeping the original log-uniform/Poisson presets
//! available bit-identically through [`TenantSpec::legacy`] and
//! [`WorkloadSpec::preset`] so golden fixtures stay valid.
//!
//! Every random choice flows through [`fg_sim::rng::stream_rng`] keyed
//! by the workload seed and the tenant name, so adding a tenant never
//! perturbs the others and the same spec always generates the
//! identical stream.

use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Floor on sampled dataset sizes (megabytes): heavy-tail inversions
/// and lognormal draws are clamped here so no job degenerates to an
/// empty transfer.
const MIN_MB: f64 = 0.01;

/// Why a workload spec cannot generate a job stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The app mix is empty: no job could name an application.
    NoApps,
    /// A tenant submits zero jobs — almost always a forgotten field;
    /// a tenant meant to be silent should be removed from the spec.
    NoJobs {
        /// The offending tenant's name.
        tenant: String,
    },
    /// A tenant's distribution parameters are out of range.
    BadTenant {
        /// The offending tenant's name.
        tenant: String,
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoApps => write!(f, "workload needs at least one app in its mix"),
            WorkloadError::NoJobs { tenant } => {
                write!(f, "tenant {tenant:?} submits zero jobs; drop it from the spec instead")
            }
            WorkloadError::BadTenant { tenant, reason } => {
                write!(f, "tenant {tenant:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Dataset-size distribution for one tenant's jobs, in megabytes.
///
/// `LogUniform` is the original stand-in; the other variants are the
/// shapes grid-trace mining actually reports: lognormal bodies, Pareto
/// tails, and their mixture. All samples are clamped to
/// `[0.01, cap_mb]` so a wild tail draw cannot produce a dataset the
/// simulator would spend hours transferring.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// `exp(U(ln lo, ln hi))` — the legacy shape.
    LogUniform {
        /// Lower bound (MB), must be positive.
        lo_mb: f64,
        /// Upper bound (MB), must be `>= lo_mb`.
        hi_mb: f64,
    },
    /// `median · exp(σ·Z)` with `Z ~ N(0,1)` via Box-Muller.
    LogNormal {
        /// Median size (MB): `exp(μ)` of the underlying normal.
        median_mb: f64,
        /// Log-space standard deviation, `>= 0`.
        sigma: f64,
        /// Clamp ceiling (MB), `>= median_mb`.
        cap_mb: f64,
    },
    /// `min / (1-U)^(1/α)` — a pure power-law tail.
    Pareto {
        /// Scale: the smallest possible sample (MB).
        min_mb: f64,
        /// Tail index; smaller is heavier. Must be positive.
        alpha: f64,
        /// Clamp ceiling (MB), `>= min_mb`.
        cap_mb: f64,
    },
    /// Lognormal body with probability `1 - tail_weight`, Pareto tail
    /// with probability `tail_weight` — the mixture Guazzone fits to
    /// real grid job sizes.
    BodyTail {
        /// Body median (MB).
        median_mb: f64,
        /// Body log-space standard deviation, `>= 0`.
        sigma: f64,
        /// Probability a job is drawn from the tail, in `[0, 1]`.
        tail_weight: f64,
        /// Tail scale (MB): smallest tail sample.
        tail_min_mb: f64,
        /// Tail index; smaller is heavier. Must be positive.
        tail_alpha: f64,
        /// Clamp ceiling (MB) for both components.
        cap_mb: f64,
    },
}

impl SizeDist {
    /// Validate the parameters, reporting the first violated
    /// constraint. NaN fails every ordered comparison, so each bound
    /// rejects it along with the out-of-range values.
    fn validate(&self) -> Result<(), &'static str> {
        match *self {
            SizeDist::LogUniform { lo_mb, hi_mb } => {
                if lo_mb.is_nan() || lo_mb <= 0.0 {
                    return Err("dataset sizes must be positive");
                }
                if hi_mb.is_nan() || hi_mb < lo_mb {
                    return Err("dataset range must satisfy lo <= hi");
                }
            }
            SizeDist::LogNormal { median_mb, sigma, cap_mb } => {
                if median_mb.is_nan() || median_mb <= 0.0 {
                    return Err("lognormal median must be positive");
                }
                if sigma.is_nan() || sigma < 0.0 || sigma.is_infinite() {
                    return Err("lognormal sigma must be finite and >= 0");
                }
                if cap_mb.is_nan() || cap_mb < median_mb || cap_mb.is_infinite() {
                    return Err("size cap must be finite and >= the median");
                }
            }
            SizeDist::Pareto { min_mb, alpha, cap_mb } => {
                if min_mb.is_nan() || min_mb <= 0.0 {
                    return Err("pareto scale must be positive");
                }
                if alpha.is_nan() || alpha <= 0.0 || alpha.is_infinite() {
                    return Err("pareto tail index must be finite and positive");
                }
                if cap_mb.is_nan() || cap_mb < min_mb || cap_mb.is_infinite() {
                    return Err("size cap must be finite and >= the pareto scale");
                }
            }
            SizeDist::BodyTail {
                median_mb,
                sigma,
                tail_weight,
                tail_min_mb,
                tail_alpha,
                cap_mb,
            } => {
                if median_mb.is_nan() || median_mb <= 0.0 {
                    return Err("body median must be positive");
                }
                if sigma.is_nan() || sigma < 0.0 || sigma.is_infinite() {
                    return Err("body sigma must be finite and >= 0");
                }
                if tail_weight.is_nan() || !(0.0..=1.0).contains(&tail_weight) {
                    return Err("tail weight must be in [0, 1]");
                }
                if tail_min_mb.is_nan() || tail_min_mb <= 0.0 {
                    return Err("tail scale must be positive");
                }
                if tail_alpha.is_nan() || tail_alpha <= 0.0 || tail_alpha.is_infinite() {
                    return Err("tail index must be finite and positive");
                }
                if cap_mb.is_nan()
                    || cap_mb < median_mb
                    || cap_mb < tail_min_mb
                    || cap_mb.is_infinite()
                {
                    return Err("size cap must be finite and >= both component scales");
                }
            }
        }
        Ok(())
    }

    /// Draw one size in megabytes. The `LogUniform` path makes exactly
    /// the draws the legacy generator made (one `gen_range`, or none
    /// when the range is a point) so seeded legacy streams are
    /// bit-identical.
    fn sample_mb(&self, rng: &mut rand::rngs::StdRng) -> f64 {
        match *self {
            SizeDist::LogUniform { lo_mb, hi_mb } => uniform(rng, lo_mb.ln(), hi_mb.ln()).exp(),
            SizeDist::LogNormal { median_mb, sigma, cap_mb } => {
                (median_mb * (sigma * standard_normal(rng)).exp()).clamp(MIN_MB, cap_mb)
            }
            SizeDist::Pareto { min_mb, alpha, cap_mb } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                pareto_inv(min_mb, alpha, u).clamp(MIN_MB, cap_mb)
            }
            SizeDist::BodyTail {
                median_mb,
                sigma,
                tail_weight,
                tail_min_mb,
                tail_alpha,
                cap_mb,
            } => {
                let pick: f64 = rng.gen_range(0.0..1.0);
                let mb = if pick < tail_weight {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    pareto_inv(tail_min_mb, tail_alpha, u)
                } else {
                    median_mb * (sigma * standard_normal(rng)).exp()
                };
                mb.clamp(MIN_MB, cap_mb)
            }
        }
    }
}

/// Multiplicative sinusoidal arrival-rate modulation: daily and weekly
/// cycles with a shared phase. `factor(t)` scales the base rate, so
/// amplitude 0.6 means the peak-hour rate is 1.6× the base and the
/// trough 0.4×.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sinusoid {
    /// Daily-cycle amplitude, in `[0, 1)` so the rate never hits zero.
    pub daily: f64,
    /// Weekly-cycle amplitude, in `[0, 1)`.
    pub weekly: f64,
    /// Phase offset (radians) applied to both cycles, so tenants can
    /// peak at different hours.
    pub phase: f64,
}

/// Seconds per day and per week, the two modulation periods.
const DAY_SECS: f64 = 86_400.0;
const WEEK_SECS: f64 = 604_800.0;

impl Sinusoid {
    /// No modulation: a flat rate.
    pub const NONE: Sinusoid = Sinusoid { daily: 0.0, weekly: 0.0, phase: 0.0 };

    /// True when both amplitudes are zero — the generator then uses
    /// the single-draw inversion path, preserving legacy streams.
    fn is_none(&self) -> bool {
        self.daily == 0.0 && self.weekly == 0.0
    }

    /// Rate multiplier at instant `t`.
    pub fn factor(&self, t: f64) -> f64 {
        (1.0 + self.daily * (2.0 * std::f64::consts::PI * t / DAY_SECS + self.phase).sin())
            * (1.0 + self.weekly * (2.0 * std::f64::consts::PI * t / WEEK_SECS + self.phase).sin())
    }

    /// Upper bound on `factor`, the thinning envelope.
    fn max_factor(&self) -> f64 {
        (1.0 + self.daily) * (1.0 + self.weekly)
    }

    fn validate(&self) -> Result<(), &'static str> {
        if self.daily.is_nan() || !(0.0..1.0).contains(&self.daily) {
            return Err("daily modulation amplitude must be in [0, 1)");
        }
        if self.weekly.is_nan() || !(0.0..1.0).contains(&self.weekly) {
            return Err("weekly modulation amplitude must be in [0, 1)");
        }
        if !self.phase.is_finite() {
            return Err("modulation phase must be finite");
        }
        Ok(())
    }
}

/// How a tenant's job arrivals are spaced.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Independent exponential gaps — optionally a non-homogeneous
    /// Poisson process when `modulation` is set, realized by
    /// Lewis-Shedler thinning against the peak rate.
    Poisson {
        /// Mean gap at the base (unmodulated) rate, seconds.
        mean_gap: f64,
        /// Sinusoidal rate modulation; [`Sinusoid::NONE`] for a
        /// homogeneous process.
        modulation: Sinusoid,
    },
    /// Bag-of-tasks sessions: session starts follow a (possibly
    /// modulated) Poisson process; each session submits a
    /// geometrically-sized burst of jobs separated by short
    /// exponential gaps.
    Bursty {
        /// Mean gap between session starts, seconds.
        mean_session_gap: f64,
        /// Mean burst size (jobs per session), `>= 1`.
        burst_mean: f64,
        /// Mean gap between jobs inside a burst, seconds.
        mean_intra_gap: f64,
        /// Sinusoidal modulation of the session-start rate.
        modulation: Sinusoid,
    },
}

/// Per-tenant generator state threaded through [`ArrivalProcess::next`]:
/// how many jobs remain in the current burst.
#[derive(Debug, Clone, Copy, Default)]
struct ArrivalState {
    remaining_in_burst: usize,
}

impl ArrivalProcess {
    /// A homogeneous Poisson process with the given mean gap — the
    /// legacy arrival model.
    pub fn poisson(mean_gap: f64) -> ArrivalProcess {
        ArrivalProcess::Poisson { mean_gap, modulation: Sinusoid::NONE }
    }

    /// Mean seconds per *job* at the base rate: the per-job gap for
    /// Poisson, the session gap divided by the burst size for bursty
    /// tenants. Used by scaled presets to reason about aggregate rate.
    pub fn mean_gap_per_job(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap, .. } => mean_gap,
            ArrivalProcess::Bursty { mean_session_gap, burst_mean, .. } => {
                mean_session_gap / burst_mean
            }
        }
    }

    /// Scale all mean gaps by `factor` (slower when `factor > 1`) —
    /// how scaled presets keep the aggregate rate constant as the
    /// tenant count grows.
    pub fn scale_gaps(&self, factor: f64) -> ArrivalProcess {
        match *self {
            ArrivalProcess::Poisson { mean_gap, modulation } => {
                ArrivalProcess::Poisson { mean_gap: mean_gap * factor, modulation }
            }
            ArrivalProcess::Bursty { mean_session_gap, burst_mean, mean_intra_gap, modulation } => {
                ArrivalProcess::Bursty {
                    mean_session_gap: mean_session_gap * factor,
                    burst_mean,
                    mean_intra_gap,
                    modulation,
                }
            }
        }
    }

    fn validate(&self) -> Result<(), &'static str> {
        match *self {
            ArrivalProcess::Poisson { mean_gap, ref modulation } => {
                if mean_gap.is_nan() || mean_gap <= 0.0 || mean_gap.is_infinite() {
                    return Err("mean inter-arrival must be positive");
                }
                modulation.validate()
            }
            ArrivalProcess::Bursty {
                mean_session_gap,
                burst_mean,
                mean_intra_gap,
                ref modulation,
            } => {
                if mean_session_gap.is_nan()
                    || mean_session_gap <= 0.0
                    || mean_session_gap.is_infinite()
                {
                    return Err("mean session gap must be positive");
                }
                if burst_mean.is_nan() || burst_mean < 1.0 || burst_mean.is_infinite() {
                    return Err("mean burst size must be >= 1");
                }
                if mean_intra_gap.is_nan() || mean_intra_gap <= 0.0 || mean_intra_gap.is_infinite()
                {
                    return Err("mean intra-burst gap must be positive");
                }
                modulation.validate()
            }
        }
    }

    /// Advance `now` to the next arrival instant, drawing from `rng`.
    /// The unmodulated Poisson path draws exactly one uniform — the
    /// legacy draw sequence — so existing seeded streams never move.
    fn next(&self, state: &mut ArrivalState, rng: &mut rand::rngs::StdRng, now: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap, ref modulation } => {
                modulated_gap(rng, now, mean_gap, modulation)
            }
            ArrivalProcess::Bursty {
                mean_session_gap,
                burst_mean,
                mean_intra_gap,
                ref modulation,
            } => {
                if state.remaining_in_burst > 0 {
                    state.remaining_in_burst -= 1;
                    let u: f64 = rng.gen_range(0.0..1.0);
                    now + exp_interarrival(mean_intra_gap, u)
                } else {
                    let t = modulated_gap(rng, now, mean_session_gap, modulation);
                    let u: f64 = rng.gen_range(0.0..1.0);
                    state.remaining_in_burst = geometric_extra(burst_mean, u);
                    t
                }
            }
        }
    }
}

/// Uniform sample over `[lo, hi)`, degenerating to `lo` when the range
/// is empty (the vendored RNG rejects empty ranges).
fn uniform(rng: &mut rand::rngs::StdRng, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

/// Exponential inter-arrival gap from a uniform draw `u ∈ [0, 1)` via
/// inversion, `-mean · ln(1 - u)`. The closed left endpoint is a real
/// hazard: `gen_range(0.0..1.0)` can return exactly 0.0, where the
/// inversion collapses to a zero gap and two "independent" arrivals
/// land on the same instant. Remap that single point to
/// `f64::EPSILON` — the smallest draw for which `1 - u` rounds away
/// from 1.0 — so the gap stays strictly positive while every other
/// draw (and thus every existing seeded stream) is untouched.
fn exp_interarrival(mean: f64, u: f64) -> f64 {
    let u = if u == 0.0 { f64::EPSILON } else { u };
    -mean * (1.0 - u).ln()
}

/// Standard normal via Box-Muller (two uniform draws). The first draw
/// gets the same zero-endpoint remap as [`exp_interarrival`] so
/// `ln(u)` stays finite.
fn standard_normal(rng: &mut rand::rngs::StdRng) -> f64 {
    let u1: f64 = rng.gen_range(0.0..1.0);
    let u1 = if u1 == 0.0 { f64::EPSILON } else { u1 };
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pareto inversion `min / (1-u)^(1/alpha)`; `u ∈ [0, 1)` keeps the
/// denominator positive.
fn pareto_inv(min: f64, alpha: f64, u: f64) -> f64 {
    min / (1.0 - u).powf(1.0 / alpha)
}

/// Extra jobs beyond the first in a geometric burst with mean size
/// `burst_mean` (so support starts at 0): inversion of
/// `Geom(p = 1/burst_mean)`.
fn geometric_extra(burst_mean: f64, u: f64) -> usize {
    if burst_mean <= 1.0 {
        return 0;
    }
    // P(size > k) = (1-p)^k with p = 1/mean; invert the survival
    // function. u = 0 maps to 0 extras (ln(1) = 0).
    let p = 1.0 / burst_mean;
    let extras = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    // A draw pathologically close to 1.0 could ask for an absurd
    // burst; 64× the mean is beyond any plausible tail draw.
    extras.min(64.0 * burst_mean) as usize
}

/// One gap of a (possibly modulated) Poisson process starting at
/// `now`, returning the arrival instant. Zero-amplitude modulation
/// takes the single-draw inversion path — bit-identical to the legacy
/// generator. Otherwise Lewis-Shedler thinning: propose candidates at
/// the peak rate, accept each with probability `factor(t) / max`.
fn modulated_gap(
    rng: &mut rand::rngs::StdRng,
    now: f64,
    mean_gap: f64,
    modulation: &Sinusoid,
) -> f64 {
    if modulation.is_none() {
        let u: f64 = rng.gen_range(0.0..1.0);
        return now + exp_interarrival(mean_gap, u);
    }
    let max = modulation.max_factor();
    let mut t = now;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        t += exp_interarrival(mean_gap / max, u);
        let accept: f64 = rng.gen_range(0.0..1.0);
        if accept * max <= modulation.factor(t) {
            return t;
        }
    }
}

/// One tenant's submission behaviour: an arrival process, a size
/// distribution, and a deadline-slack range.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; also the RNG stream label.
    pub name: String,
    /// How many jobs the tenant submits.
    pub jobs: usize,
    /// How arrivals are spaced.
    pub arrival: ArrivalProcess,
    /// How dataset sizes are drawn.
    pub size: SizeDist,
    /// Deadline slack range: the deadline is the arrival plus slack
    /// times the job's standalone predicted execution time. Sampled
    /// uniformly; values must be `>= 1`.
    pub deadline_slack: (f64, f64),
}

impl TenantSpec {
    /// The original tenant shape — homogeneous Poisson arrivals and a
    /// log-uniform size range — kept as a compat constructor so every
    /// pre-existing preset (and the golden fixtures generated from
    /// them) stays bit-identical.
    pub fn legacy(
        name: &str,
        jobs: usize,
        mean_interarrival: f64,
        dataset_mb: (f64, f64),
        deadline_slack: (f64, f64),
    ) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            jobs,
            arrival: ArrivalProcess::poisson(mean_interarrival),
            size: SizeDist::LogUniform { lo_mb: dataset_mb.0, hi_mb: dataset_mb.1 },
            deadline_slack,
        }
    }
}

/// Workload intensity presets for the three-load-level experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLevel {
    /// Arrivals sparse enough that jobs rarely overlap.
    Light,
    /// Moderate overlap: queues form but drain.
    Medium,
    /// Arrival rate near (or past) the grid's service rate.
    Heavy,
}

impl LoadLevel {
    /// All levels, light to heavy.
    pub const ALL: [LoadLevel; 3] = [LoadLevel::Light, LoadLevel::Medium, LoadLevel::Heavy];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LoadLevel::Light => "light",
            LoadLevel::Medium => "medium",
            LoadLevel::Heavy => "heavy",
        }
    }

    /// Mean inter-arrival time per tenant at this level (seconds).
    fn mean_interarrival(self) -> f64 {
        match self {
            LoadLevel::Light => 400.0,
            LoadLevel::Medium => 100.0,
            LoadLevel::Heavy => 25.0,
        }
    }
}

/// Which traffic shape a preset generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// The legacy log-uniform/Poisson preset (compat shape).
    Uniform,
    /// Lognormal/Pareto size mixtures under diurnal modulation.
    HeavyTail,
    /// Bag-of-tasks burst sessions with heavy-tailed sizes.
    Bursty,
}

impl WorkloadShape {
    /// All shapes, tamest first.
    pub const ALL: [WorkloadShape; 3] =
        [WorkloadShape::Uniform, WorkloadShape::HeavyTail, WorkloadShape::Bursty];

    /// The trace-shaped presets (everything but the legacy compat
    /// shape) — what the re-verification suites parameterize over.
    pub const TRACE_SHAPED: [WorkloadShape; 2] = [WorkloadShape::HeavyTail, WorkloadShape::Bursty];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadShape::Uniform => "uniform",
            WorkloadShape::HeavyTail => "heavy-tail",
            WorkloadShape::Bursty => "bursty",
        }
    }
}

/// A full workload description: tenants, app mix, and the seed.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The tenants submitting jobs.
    pub tenants: Vec<TenantSpec>,
    /// App mix: each job picks one of these names uniformly.
    pub apps: Vec<String>,
    /// Base seed for every stream.
    pub seed: u64,
}

/// One generated job, in global submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submission-order id, `0..`.
    pub id: usize,
    /// Index of the submitting tenant in the workload's tenant list.
    pub tenant: usize,
    /// Application name (must have an `AppModel` in the grid).
    pub app: String,
    /// Logical dataset size in bytes.
    pub dataset_bytes: u64,
    /// Arrival instant (seconds of simulated time).
    pub arrival: f64,
    /// Deadline slack multiplier over the standalone predicted time.
    pub deadline_slack: f64,
}

impl WorkloadSpec {
    /// The canonical three-tenant preset at a given load level: one
    /// high-rate small-job tenant, one medium tenant, and one tenant
    /// submitting fewer but larger jobs — loosely the shape grid-trace
    /// characterizations report (many small analyses, a tail of bulk
    /// jobs). This is the legacy compat preset: its streams are
    /// bit-identical to every earlier release, which the golden
    /// fixtures depend on.
    pub fn preset(load: LoadLevel, apps: &[&str], seed: u64) -> WorkloadSpec {
        let base = load.mean_interarrival();
        WorkloadSpec {
            tenants: vec![
                TenantSpec::legacy("tenant-small", 10, base * 0.6, (16.0, 64.0), (2.0, 4.0)),
                TenantSpec::legacy("tenant-mid", 8, base, (32.0, 128.0), (2.0, 5.0)),
                TenantSpec::legacy("tenant-bulk", 5, base * 1.8, (96.0, 384.0), (3.0, 8.0)),
            ],
            apps: apps.iter().map(|a| a.to_string()).collect(),
            seed,
        }
    }

    /// A trace-shaped three-tenant preset: the same aggregate base
    /// rate as [`WorkloadSpec::preset`], but with the traffic
    /// structures real grid traces exhibit.
    ///
    /// - [`WorkloadShape::Uniform`] delegates to the legacy preset.
    /// - [`WorkloadShape::HeavyTail`] draws sizes from lognormal and
    ///   lognormal+Pareto mixtures under diurnal (and one weekly)
    ///   sinusoidal arrival modulation, with tenants peaking at
    ///   different hours.
    /// - [`WorkloadShape::Bursty`] adds bag-of-tasks sessions: two
    ///   tenants submit in geometric bursts, one stays diurnal.
    pub fn shaped(shape: WorkloadShape, load: LoadLevel, apps: &[&str], seed: u64) -> WorkloadSpec {
        let base = load.mean_interarrival();
        let tenants = match shape {
            WorkloadShape::Uniform => return WorkloadSpec::preset(load, apps, seed),
            WorkloadShape::HeavyTail => vec![
                TenantSpec {
                    name: "ht-interactive".into(),
                    jobs: 10,
                    arrival: ArrivalProcess::Poisson {
                        mean_gap: base * 0.6,
                        modulation: Sinusoid { daily: 0.6, weekly: 0.0, phase: 0.0 },
                    },
                    size: SizeDist::LogNormal { median_mb: 24.0, sigma: 0.7, cap_mb: 512.0 },
                    deadline_slack: (2.0, 4.0),
                },
                TenantSpec {
                    name: "ht-batch".into(),
                    jobs: 8,
                    arrival: ArrivalProcess::Poisson {
                        mean_gap: base,
                        modulation: Sinusoid { daily: 0.4, weekly: 0.3, phase: 1.3 },
                    },
                    size: SizeDist::BodyTail {
                        median_mb: 40.0,
                        sigma: 0.9,
                        tail_weight: 0.15,
                        tail_min_mb: 192.0,
                        tail_alpha: 1.1,
                        cap_mb: 4096.0,
                    },
                    deadline_slack: (2.0, 5.0),
                },
                TenantSpec {
                    name: "ht-bulk".into(),
                    jobs: 5,
                    arrival: ArrivalProcess::Poisson {
                        mean_gap: base * 1.8,
                        modulation: Sinusoid { daily: 0.5, weekly: 0.0, phase: 2.6 },
                    },
                    size: SizeDist::Pareto { min_mb: 96.0, alpha: 1.3, cap_mb: 8192.0 },
                    deadline_slack: (3.0, 8.0),
                },
            ],
            WorkloadShape::Bursty => vec![
                TenantSpec {
                    name: "bot-sweeper".into(),
                    jobs: 10,
                    arrival: ArrivalProcess::Bursty {
                        mean_session_gap: base * 0.6 * 6.0,
                        burst_mean: 6.0,
                        mean_intra_gap: 3.0,
                        modulation: Sinusoid::NONE,
                    },
                    size: SizeDist::LogNormal { median_mb: 20.0, sigma: 0.5, cap_mb: 256.0 },
                    deadline_slack: (2.0, 4.0),
                },
                TenantSpec {
                    name: "bot-pilot".into(),
                    jobs: 8,
                    arrival: ArrivalProcess::Bursty {
                        mean_session_gap: base * 4.0,
                        burst_mean: 4.0,
                        mean_intra_gap: 8.0,
                        modulation: Sinusoid { daily: 0.5, weekly: 0.0, phase: 0.7 },
                    },
                    size: SizeDist::BodyTail {
                        median_mb: 32.0,
                        sigma: 0.8,
                        tail_weight: 0.12,
                        tail_min_mb: 160.0,
                        tail_alpha: 1.2,
                        cap_mb: 4096.0,
                    },
                    deadline_slack: (2.0, 5.0),
                },
                TenantSpec {
                    name: "bot-steady".into(),
                    jobs: 5,
                    arrival: ArrivalProcess::Poisson {
                        mean_gap: base * 1.8,
                        modulation: Sinusoid { daily: 0.4, weekly: 0.0, phase: 2.0 },
                    },
                    size: SizeDist::Pareto { min_mb: 80.0, alpha: 1.4, cap_mb: 8192.0 },
                    deadline_slack: (3.0, 8.0),
                },
            ],
        };
        WorkloadSpec { tenants, apps: apps.iter().map(|a| a.to_string()).collect(), seed }
    }

    /// The three-tenant preset widened to `tenants` clones of its
    /// shapes (round-robin), each submitting `jobs_per_tenant` jobs —
    /// the benchmark harness's knob for million-job traces. Per-tenant
    /// inter-arrival means are scaled by `tenants / 3` so the
    /// *aggregate* arrival rate stays what the load level dictates
    /// regardless of the tenant count.
    pub fn preset_scaled(
        load: LoadLevel,
        apps: &[&str],
        seed: u64,
        tenants: usize,
        jobs_per_tenant: usize,
    ) -> WorkloadSpec {
        WorkloadSpec::shaped_scaled(
            WorkloadShape::Uniform,
            load,
            apps,
            seed,
            tenants,
            jobs_per_tenant,
        )
    }

    /// [`WorkloadSpec::shaped`] widened to `tenants` clones the same
    /// way [`WorkloadSpec::preset_scaled`] widens the legacy preset:
    /// round-robin over the three shape tenants, all gaps scaled by
    /// `tenants / 3` to hold the aggregate rate fixed.
    pub fn shaped_scaled(
        shape: WorkloadShape,
        load: LoadLevel,
        apps: &[&str],
        seed: u64,
        tenants: usize,
        jobs_per_tenant: usize,
    ) -> WorkloadSpec {
        assert!(tenants > 0 && jobs_per_tenant > 0, "a scaled preset needs tenants and jobs");
        let base = WorkloadSpec::shaped(shape, load, apps, seed);
        let shapes = base.tenants;
        let scale = tenants as f64 / shapes.len() as f64;
        WorkloadSpec {
            tenants: (0..tenants)
                .map(|i| {
                    let shape = &shapes[i % shapes.len()];
                    TenantSpec {
                        name: format!("{}-{i:05}", shape.name),
                        jobs: jobs_per_tenant,
                        arrival: shape.arrival.scale_gaps(scale),
                        size: shape.size.clone(),
                        deadline_slack: shape.deadline_slack,
                    }
                })
                .collect(),
            apps: base.apps,
            seed,
        }
    }

    /// Check the spec without generating: an empty app mix, a zero-job
    /// tenant, or out-of-range distribution parameters are reported as
    /// a typed [`WorkloadError`] naming the offender.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.apps.is_empty() {
            return Err(WorkloadError::NoApps);
        }
        for tenant in &self.tenants {
            let fail = |reason: &'static str| WorkloadError::BadTenant {
                tenant: tenant.name.clone(),
                reason,
            };
            if tenant.jobs == 0 {
                return Err(WorkloadError::NoJobs { tenant: tenant.name.clone() });
            }
            tenant.arrival.validate().map_err(fail)?;
            tenant.size.validate().map_err(fail)?;
            // Each bound is written to reject NaN along with the
            // out-of-range values (a NaN parameter fails every
            // ordered comparison).
            if tenant.deadline_slack.0.is_nan() || tenant.deadline_slack.0 < 1.0 {
                return Err(fail("deadline slack must be >= 1"));
            }
            if tenant.deadline_slack.1.is_nan() || tenant.deadline_slack.1 < tenant.deadline_slack.0
            {
                return Err(fail("deadline-slack range must satisfy lo <= hi"));
            }
        }
        Ok(())
    }

    /// Generate the job stream: per-tenant streams merged and sorted by
    /// arrival (ties broken by tenant index, then per-tenant sequence),
    /// with ids assigned in that global order. Panics on an invalid
    /// spec; [`WorkloadSpec::try_generate`] reports the problem
    /// instead.
    pub fn generate(&self) -> Vec<JobSpec> {
        self.try_generate().unwrap_or_else(|e| panic!("invalid workload spec: {e}"))
    }

    /// [`WorkloadSpec::generate`], but an invalid spec — empty app mix,
    /// zero-job tenant, bad distribution parameters — is a
    /// [`WorkloadError`] rather than a panic.
    pub fn try_generate(&self) -> Result<Vec<JobSpec>, WorkloadError> {
        self.validate()?;
        let mut jobs: Vec<(f64, usize, usize, JobSpec)> = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            let mut rng = stream_rng(self.seed, &format!("workload-{}", tenant.name));
            let mut state = ArrivalState::default();
            let mut now = 0.0f64;
            for seq in 0..tenant.jobs {
                now = tenant.arrival.next(&mut state, &mut rng, now);
                let mb = tenant.size.sample_mb(&mut rng);
                let slack = uniform(&mut rng, tenant.deadline_slack.0, tenant.deadline_slack.1);
                let app = self.apps[rng.gen_range(0..self.apps.len())].clone();
                jobs.push((
                    now,
                    ti,
                    seq,
                    JobSpec {
                        id: 0, // assigned after the global sort
                        tenant: ti,
                        app,
                        dataset_bytes: (mb * 1e6).round() as u64,
                        arrival: now,
                        deadline_slack: slack,
                    },
                ));
            }
        }
        jobs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        Ok(jobs
            .into_iter()
            .enumerate()
            .map(|(id, (_, _, _, mut j))| {
                j.id = id;
                j
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::preset(LoadLevel::Medium, &["kmeans", "em"], 7)
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut other = spec();
        other.seed = 8;
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn jobs_are_sorted_with_positional_ids() {
        let jobs = spec().generate();
        assert_eq!(jobs.len(), 23);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            if i > 0 {
                assert!(j.arrival >= jobs[i - 1].arrival);
            }
        }
    }

    #[test]
    fn samples_respect_the_spec_ranges() {
        let s = spec();
        for j in s.generate() {
            let t = &s.tenants[j.tenant];
            let mb = j.dataset_bytes as f64 / 1e6;
            let SizeDist::LogUniform { lo_mb, hi_mb } = t.size else {
                panic!("legacy preset must be log-uniform");
            };
            assert!(mb >= lo_mb * 0.99 && mb <= hi_mb * 1.01, "size {mb}");
            assert!(
                j.deadline_slack >= t.deadline_slack.0 && j.deadline_slack <= t.deadline_slack.1
            );
            assert!(s.apps.contains(&j.app));
            assert!(j.arrival > 0.0);
        }
    }

    #[test]
    fn heavier_load_arrives_faster() {
        let light = WorkloadSpec::preset(LoadLevel::Light, &["kmeans"], 7).generate();
        let heavy = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 7).generate();
        let span = |jobs: &[JobSpec]| jobs.last().unwrap().arrival;
        assert!(span(&heavy) < span(&light));
    }

    #[test]
    fn empty_app_mix_is_a_typed_error_not_a_panic() {
        let mut s = spec();
        s.apps.clear();
        assert_eq!(s.try_generate().unwrap_err(), WorkloadError::NoApps);
    }

    #[test]
    fn zero_job_tenants_are_rejected_up_front() {
        // Regression: a tenant with `jobs: 0` used to pass validation
        // silently and simply vanish from the stream — almost always a
        // forgotten field, now surfaced by name.
        let mut s = spec();
        s.tenants[1].jobs = 0;
        assert_eq!(
            s.try_generate().unwrap_err(),
            WorkloadError::NoJobs { tenant: "tenant-mid".into() }
        );
    }

    #[test]
    fn bad_tenant_parameters_name_the_offender() {
        let mut s = spec();
        s.tenants[2].arrival = ArrivalProcess::poisson(0.0);
        match s.try_generate().unwrap_err() {
            WorkloadError::BadTenant { tenant, .. } => assert_eq!(tenant, "tenant-bulk"),
            other => panic!("expected BadTenant, got {other:?}"),
        }
    }

    #[test]
    fn bad_modulation_and_burst_parameters_are_typed_errors() {
        let mut s = spec();
        s.tenants[0].arrival = ArrivalProcess::Poisson {
            mean_gap: 100.0,
            modulation: Sinusoid { daily: 1.0, weekly: 0.0, phase: 0.0 },
        };
        match s.try_generate().unwrap_err() {
            WorkloadError::BadTenant { tenant, reason } => {
                assert_eq!(tenant, "tenant-small");
                assert!(reason.contains("daily"), "{reason}");
            }
            other => panic!("expected BadTenant, got {other:?}"),
        }
        let mut s = spec();
        s.tenants[0].arrival = ArrivalProcess::Bursty {
            mean_session_gap: 100.0,
            burst_mean: 0.5,
            mean_intra_gap: 2.0,
            modulation: Sinusoid::NONE,
        };
        match s.try_generate().unwrap_err() {
            WorkloadError::BadTenant { reason, .. } => {
                assert!(reason.contains("burst"), "{reason}")
            }
            other => panic!("expected BadTenant, got {other:?}"),
        }
        let mut s = spec();
        s.tenants[0].size = SizeDist::Pareto { min_mb: 16.0, alpha: f64::NAN, cap_mb: 1024.0 };
        match s.try_generate().unwrap_err() {
            WorkloadError::BadTenant { reason, .. } => {
                assert!(reason.contains("tail index"), "{reason}")
            }
            other => panic!("expected BadTenant, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn generate_still_panics_with_a_clear_message() {
        let mut s = spec();
        s.apps.clear();
        s.generate();
    }

    #[test]
    fn interarrival_gaps_are_strictly_positive_even_at_the_closed_endpoint() {
        // Regression: `gen_range(0.0..1.0)` includes 0.0, where
        // `-ln(1 - u)` is exactly zero — a zero gap stacked two
        // arrivals on one instant. The remapped endpoint must yield a
        // strictly positive gap, and every other draw is unchanged.
        let edge = exp_interarrival(100.0, 0.0);
        assert!(edge > 0.0, "u = 0 must not collapse to a zero gap ({edge})");
        assert_eq!(edge, -100.0 * (1.0 - f64::EPSILON).ln());
        assert_eq!(exp_interarrival(100.0, 0.5), -100.0 * 0.5f64.ln());
        // The smallest nonzero draw a 53-bit uniform can produce
        // (2^-53) already yields a positive gap on its own, so
        // remapping only the exact-zero point is sufficient.
        assert!(exp_interarrival(100.0, f64::EPSILON / 2.0) > 0.0);
    }

    #[test]
    fn preset_scaled_keeps_the_aggregate_rate() {
        let s = WorkloadSpec::preset_scaled(LoadLevel::Heavy, &["kmeans"], 3, 30, 10);
        assert_eq!(s.tenants.len(), 30);
        assert!(s.validate().is_ok());
        let jobs = s.generate();
        assert_eq!(jobs.len(), 300);
        // Aggregate arrival rate ~ the 3-tenant preset's: each clone's
        // mean gap is scaled by 30/3 = 10.
        assert_eq!(s.tenants[0].arrival.mean_gap_per_job(), 25.0 * 0.6 * 10.0);
        // Names stay unique so RNG streams never collide.
        let mut names: Vec<&str> = s.tenants.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_existing_streams() {
        let base = spec().generate();
        let mut widened = spec();
        widened.tenants.push(TenantSpec::legacy("tenant-extra", 3, 100.0, (4.0, 8.0), (1.5, 2.0)));
        let wide = widened.generate();
        // Every original (tenant, arrival, bytes) triple survives.
        for j in &base {
            assert!(wide.iter().any(|w| w.tenant == j.tenant
                && w.arrival == j.arrival
                && w.dataset_bytes == j.dataset_bytes));
        }
    }

    #[test]
    fn legacy_constructor_matches_the_expanded_form() {
        let a = TenantSpec::legacy("t", 4, 50.0, (8.0, 32.0), (2.0, 3.0));
        assert_eq!(a.arrival, ArrivalProcess::poisson(50.0));
        assert_eq!(a.size, SizeDist::LogUniform { lo_mb: 8.0, hi_mb: 32.0 });
    }

    #[test]
    fn shaped_uniform_is_the_legacy_preset() {
        let apps = ["kmeans", "em"];
        let legacy = WorkloadSpec::preset(LoadLevel::Medium, &apps, 7).generate();
        let shaped =
            WorkloadSpec::shaped(WorkloadShape::Uniform, LoadLevel::Medium, &apps, 7).generate();
        assert_eq!(legacy, shaped);
    }

    #[test]
    fn every_shape_generates_a_valid_sorted_stream() {
        let apps = ["kmeans", "em", "apriori"];
        for shape in WorkloadShape::ALL {
            for load in LoadLevel::ALL {
                let s = WorkloadSpec::shaped(shape, load, &apps, 11);
                assert!(s.validate().is_ok(), "{} {}", shape.name(), load.name());
                let jobs = s.generate();
                assert_eq!(jobs.len(), 23, "{}", shape.name());
                for (i, j) in jobs.iter().enumerate() {
                    assert_eq!(j.id, i);
                    assert!(j.arrival.is_finite() && j.arrival > 0.0);
                    assert!(j.dataset_bytes > 0);
                    assert!(j.deadline_slack >= 1.0);
                    if i > 0 {
                        assert!(j.arrival >= jobs[i - 1].arrival);
                    }
                }
            }
        }
    }

    #[test]
    fn bursty_tenants_cluster_their_arrivals() {
        // A burst session's intra-gaps (mean 3 s) are two orders of
        // magnitude below its session gaps (mean 90 s): the sorted gap
        // sequence must show both clusters.
        let s = WorkloadSpec::shaped_scaled(
            WorkloadShape::Bursty,
            LoadLevel::Medium,
            &["kmeans"],
            5,
            3,
            60,
        );
        let jobs = s.generate();
        let sweeper: Vec<f64> = jobs.iter().filter(|j| j.tenant == 0).map(|j| j.arrival).collect();
        let gaps: Vec<f64> = sweeper.windows(2).map(|w| w[1] - w[0]).collect();
        let short = gaps.iter().filter(|g| **g < 15.0).count();
        let long = gaps.iter().filter(|g| **g > 60.0).count();
        assert!(short > gaps.len() / 2, "bursts should dominate gaps: {short}/{}", gaps.len());
        assert!(long > 0, "session gaps should appear");
    }

    #[test]
    fn sinusoid_factor_stays_within_the_envelope() {
        let m = Sinusoid { daily: 0.6, weekly: 0.3, phase: 0.9 };
        for i in 0..2000 {
            let t = i as f64 * 700.0;
            let f = m.factor(t);
            assert!(f > 0.0 && f <= m.max_factor() + 1e-12, "t={t} f={f}");
        }
    }

    #[test]
    fn geometric_burst_sizes_have_the_right_mean() {
        // Inversion sanity: average extras over a uniform grid of u
        // should land near mean - 1.
        let mean = 6.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|i| geometric_extra(mean, i as f64 / n as f64) as f64).sum();
        let avg = sum / n as f64;
        assert!((avg - (mean - 1.0)).abs() < 0.15, "avg extras {avg}");
        assert_eq!(geometric_extra(1.0, 0.9999), 0);
    }
}
