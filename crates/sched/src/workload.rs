//! Seeded, deterministic multi-tenant job streams.
//!
//! Each tenant submits jobs with exponential inter-arrival times, a
//! log-uniform dataset-size distribution (grid workload studies find
//! heavy-tailed job sizes; log-uniform is the simplest deterministic
//! stand-in), and a uniform deadline-slack distribution. Every random
//! choice flows through [`fg_sim::rng::stream_rng`] keyed by the
//! workload seed and the tenant name, so adding a tenant never perturbs
//! the others and the same spec always generates the identical stream.

use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::Serialize;
use std::fmt;

/// Why a workload spec cannot generate a job stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The app mix is empty: no job could name an application.
    NoApps,
    /// A tenant submits zero jobs — almost always a forgotten field;
    /// a tenant meant to be silent should be removed from the spec.
    NoJobs {
        /// The offending tenant's name.
        tenant: String,
    },
    /// A tenant's distribution parameters are out of range.
    BadTenant {
        /// The offending tenant's name.
        tenant: String,
        /// Which constraint failed.
        reason: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NoApps => write!(f, "workload needs at least one app in its mix"),
            WorkloadError::NoJobs { tenant } => {
                write!(f, "tenant {tenant:?} submits zero jobs; drop it from the spec instead")
            }
            WorkloadError::BadTenant { tenant, reason } => {
                write!(f, "tenant {tenant:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One tenant's submission behaviour.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; also the RNG stream label.
    pub name: String,
    /// How many jobs the tenant submits.
    pub jobs: usize,
    /// Mean of the exponential inter-arrival distribution (seconds).
    pub mean_interarrival: f64,
    /// Dataset-size range in megabytes, sampled log-uniformly.
    pub dataset_mb: (f64, f64),
    /// Deadline slack range: the deadline is the arrival plus slack
    /// times the job's standalone predicted execution time. Sampled
    /// uniformly; values must be `>= 1`.
    pub deadline_slack: (f64, f64),
}

/// Workload intensity presets for the three-load-level experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLevel {
    /// Arrivals sparse enough that jobs rarely overlap.
    Light,
    /// Moderate overlap: queues form but drain.
    Medium,
    /// Arrival rate near (or past) the grid's service rate.
    Heavy,
}

impl LoadLevel {
    /// All levels, light to heavy.
    pub const ALL: [LoadLevel; 3] = [LoadLevel::Light, LoadLevel::Medium, LoadLevel::Heavy];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LoadLevel::Light => "light",
            LoadLevel::Medium => "medium",
            LoadLevel::Heavy => "heavy",
        }
    }

    /// Mean inter-arrival time per tenant at this level (seconds).
    fn mean_interarrival(self) -> f64 {
        match self {
            LoadLevel::Light => 400.0,
            LoadLevel::Medium => 100.0,
            LoadLevel::Heavy => 25.0,
        }
    }
}

/// A full workload description: tenants, app mix, and the seed.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The tenants submitting jobs.
    pub tenants: Vec<TenantSpec>,
    /// App mix: each job picks one of these names uniformly.
    pub apps: Vec<String>,
    /// Base seed for every stream.
    pub seed: u64,
}

/// One generated job, in global submission order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Submission-order id, `0..`.
    pub id: usize,
    /// Index of the submitting tenant in the workload's tenant list.
    pub tenant: usize,
    /// Application name (must have an `AppModel` in the grid).
    pub app: String,
    /// Logical dataset size in bytes.
    pub dataset_bytes: u64,
    /// Arrival instant (seconds of simulated time).
    pub arrival: f64,
    /// Deadline slack multiplier over the standalone predicted time.
    pub deadline_slack: f64,
}

/// Uniform sample over `[lo, hi)`, degenerating to `lo` when the range
/// is empty (the vendored RNG rejects empty ranges).
fn uniform(rng: &mut rand::rngs::StdRng, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

/// Exponential inter-arrival gap from a uniform draw `u ∈ [0, 1)` via
/// inversion, `-mean · ln(1 - u)`. The closed left endpoint is a real
/// hazard: `gen_range(0.0..1.0)` can return exactly 0.0, where the
/// inversion collapses to a zero gap and two "independent" arrivals
/// land on the same instant. Remap that single point to
/// `f64::EPSILON` — the smallest draw for which `1 - u` rounds away
/// from 1.0 — so the gap stays strictly positive while every other
/// draw (and thus every existing seeded stream) is untouched.
fn exp_interarrival(mean: f64, u: f64) -> f64 {
    let u = if u == 0.0 { f64::EPSILON } else { u };
    -mean * (1.0 - u).ln()
}

impl WorkloadSpec {
    /// The canonical three-tenant preset at a given load level: one
    /// high-rate small-job tenant, one medium tenant, and one tenant
    /// submitting fewer but larger jobs — loosely the shape grid-trace
    /// characterizations report (many small analyses, a tail of bulk
    /// jobs).
    pub fn preset(load: LoadLevel, apps: &[&str], seed: u64) -> WorkloadSpec {
        let base = load.mean_interarrival();
        WorkloadSpec {
            tenants: vec![
                TenantSpec {
                    name: "tenant-small".into(),
                    jobs: 10,
                    mean_interarrival: base * 0.6,
                    dataset_mb: (16.0, 64.0),
                    deadline_slack: (2.0, 4.0),
                },
                TenantSpec {
                    name: "tenant-mid".into(),
                    jobs: 8,
                    mean_interarrival: base,
                    dataset_mb: (32.0, 128.0),
                    deadline_slack: (2.0, 5.0),
                },
                TenantSpec {
                    name: "tenant-bulk".into(),
                    jobs: 5,
                    mean_interarrival: base * 1.8,
                    dataset_mb: (96.0, 384.0),
                    deadline_slack: (3.0, 8.0),
                },
            ],
            apps: apps.iter().map(|a| a.to_string()).collect(),
            seed,
        }
    }

    /// The three-tenant preset widened to `tenants` clones of its
    /// shapes (round-robin), each submitting `jobs_per_tenant` jobs —
    /// the benchmark harness's knob for million-job traces. Per-tenant
    /// inter-arrival means are scaled by `tenants / 3` so the
    /// *aggregate* arrival rate stays what the load level dictates
    /// regardless of the tenant count.
    pub fn preset_scaled(
        load: LoadLevel,
        apps: &[&str],
        seed: u64,
        tenants: usize,
        jobs_per_tenant: usize,
    ) -> WorkloadSpec {
        assert!(tenants > 0 && jobs_per_tenant > 0, "a scaled preset needs tenants and jobs");
        let base = WorkloadSpec::preset(load, apps, seed);
        let shapes = base.tenants;
        let scale = tenants as f64 / shapes.len() as f64;
        WorkloadSpec {
            tenants: (0..tenants)
                .map(|i| {
                    let shape = &shapes[i % shapes.len()];
                    TenantSpec {
                        name: format!("{}-{i:05}", shape.name),
                        jobs: jobs_per_tenant,
                        mean_interarrival: shape.mean_interarrival * scale,
                        dataset_mb: shape.dataset_mb,
                        deadline_slack: shape.deadline_slack,
                    }
                })
                .collect(),
            apps: base.apps,
            seed,
        }
    }

    /// Check the spec without generating: an empty app mix, a zero-job
    /// tenant, or out-of-range distribution parameters are reported as
    /// a typed [`WorkloadError`] naming the offender.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.apps.is_empty() {
            return Err(WorkloadError::NoApps);
        }
        for tenant in &self.tenants {
            let fail = |reason: &'static str| WorkloadError::BadTenant {
                tenant: tenant.name.clone(),
                reason,
            };
            if tenant.jobs == 0 {
                return Err(WorkloadError::NoJobs { tenant: tenant.name.clone() });
            }
            // Each bound is written to reject NaN along with the
            // out-of-range values (a NaN parameter fails every
            // ordered comparison).
            if tenant.mean_interarrival.is_nan() || tenant.mean_interarrival <= 0.0 {
                return Err(fail("mean inter-arrival must be positive"));
            }
            if tenant.dataset_mb.0.is_nan() || tenant.dataset_mb.0 <= 0.0 {
                return Err(fail("dataset sizes must be positive"));
            }
            if tenant.dataset_mb.1.is_nan() || tenant.dataset_mb.1 < tenant.dataset_mb.0 {
                return Err(fail("dataset range must satisfy lo <= hi"));
            }
            if tenant.deadline_slack.0.is_nan() || tenant.deadline_slack.0 < 1.0 {
                return Err(fail("deadline slack must be >= 1"));
            }
            if tenant.deadline_slack.1.is_nan() || tenant.deadline_slack.1 < tenant.deadline_slack.0
            {
                return Err(fail("deadline-slack range must satisfy lo <= hi"));
            }
        }
        Ok(())
    }

    /// Generate the job stream: per-tenant streams merged and sorted by
    /// arrival (ties broken by tenant index, then per-tenant sequence),
    /// with ids assigned in that global order. Panics on an invalid
    /// spec; [`WorkloadSpec::try_generate`] reports the problem
    /// instead.
    pub fn generate(&self) -> Vec<JobSpec> {
        self.try_generate().unwrap_or_else(|e| panic!("invalid workload spec: {e}"))
    }

    /// [`WorkloadSpec::generate`], but an invalid spec — empty app mix,
    /// zero-job tenant, bad distribution parameters — is a
    /// [`WorkloadError`] rather than a panic.
    pub fn try_generate(&self) -> Result<Vec<JobSpec>, WorkloadError> {
        self.validate()?;
        let mut jobs: Vec<(f64, usize, usize, JobSpec)> = Vec::new();
        for (ti, tenant) in self.tenants.iter().enumerate() {
            let mut rng = stream_rng(self.seed, &format!("workload-{}", tenant.name));
            let mut now = 0.0f64;
            for seq in 0..tenant.jobs {
                let u: f64 = rng.gen_range(0.0..1.0);
                now += exp_interarrival(tenant.mean_interarrival, u);
                let (lo, hi) = tenant.dataset_mb;
                let mb = uniform(&mut rng, lo.ln(), hi.ln()).exp();
                let slack = uniform(&mut rng, tenant.deadline_slack.0, tenant.deadline_slack.1);
                let app = self.apps[rng.gen_range(0..self.apps.len())].clone();
                jobs.push((
                    now,
                    ti,
                    seq,
                    JobSpec {
                        id: 0, // assigned after the global sort
                        tenant: ti,
                        app,
                        dataset_bytes: (mb * 1e6).round() as u64,
                        arrival: now,
                        deadline_slack: slack,
                    },
                ));
            }
        }
        jobs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        Ok(jobs
            .into_iter()
            .enumerate()
            .map(|(id, (_, _, _, mut j))| {
                j.id = id;
                j
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::preset(LoadLevel::Medium, &["kmeans", "em"], 7)
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut other = spec();
        other.seed = 8;
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn jobs_are_sorted_with_positional_ids() {
        let jobs = spec().generate();
        assert_eq!(jobs.len(), 23);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            if i > 0 {
                assert!(j.arrival >= jobs[i - 1].arrival);
            }
        }
    }

    #[test]
    fn samples_respect_the_spec_ranges() {
        let s = spec();
        for j in s.generate() {
            let t = &s.tenants[j.tenant];
            let mb = j.dataset_bytes as f64 / 1e6;
            assert!(mb >= t.dataset_mb.0 * 0.99 && mb <= t.dataset_mb.1 * 1.01, "size {mb}");
            assert!(
                j.deadline_slack >= t.deadline_slack.0 && j.deadline_slack <= t.deadline_slack.1
            );
            assert!(s.apps.contains(&j.app));
            assert!(j.arrival > 0.0);
        }
    }

    #[test]
    fn heavier_load_arrives_faster() {
        let light = WorkloadSpec::preset(LoadLevel::Light, &["kmeans"], 7).generate();
        let heavy = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 7).generate();
        let span = |jobs: &[JobSpec]| jobs.last().unwrap().arrival;
        assert!(span(&heavy) < span(&light));
    }

    #[test]
    fn empty_app_mix_is_a_typed_error_not_a_panic() {
        let mut s = spec();
        s.apps.clear();
        assert_eq!(s.try_generate().unwrap_err(), WorkloadError::NoApps);
    }

    #[test]
    fn zero_job_tenants_are_rejected_up_front() {
        // Regression: a tenant with `jobs: 0` used to pass validation
        // silently and simply vanish from the stream — almost always a
        // forgotten field, now surfaced by name.
        let mut s = spec();
        s.tenants[1].jobs = 0;
        assert_eq!(
            s.try_generate().unwrap_err(),
            WorkloadError::NoJobs { tenant: "tenant-mid".into() }
        );
    }

    #[test]
    fn bad_tenant_parameters_name_the_offender() {
        let mut s = spec();
        s.tenants[2].mean_interarrival = 0.0;
        match s.try_generate().unwrap_err() {
            WorkloadError::BadTenant { tenant, .. } => assert_eq!(tenant, "tenant-bulk"),
            other => panic!("expected BadTenant, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn generate_still_panics_with_a_clear_message() {
        let mut s = spec();
        s.apps.clear();
        s.generate();
    }

    #[test]
    fn interarrival_gaps_are_strictly_positive_even_at_the_closed_endpoint() {
        // Regression: `gen_range(0.0..1.0)` includes 0.0, where
        // `-ln(1 - u)` is exactly zero — a zero gap stacked two
        // arrivals on one instant. The remapped endpoint must yield a
        // strictly positive gap, and every other draw is unchanged.
        let edge = exp_interarrival(100.0, 0.0);
        assert!(edge > 0.0, "u = 0 must not collapse to a zero gap ({edge})");
        assert_eq!(edge, -100.0 * (1.0 - f64::EPSILON).ln());
        assert_eq!(exp_interarrival(100.0, 0.5), -100.0 * 0.5f64.ln());
        // The smallest nonzero draw a 53-bit uniform can produce
        // (2^-53) already yields a positive gap on its own, so
        // remapping only the exact-zero point is sufficient.
        assert!(exp_interarrival(100.0, f64::EPSILON / 2.0) > 0.0);
    }

    #[test]
    fn preset_scaled_keeps_the_aggregate_rate() {
        let s = WorkloadSpec::preset_scaled(LoadLevel::Heavy, &["kmeans"], 3, 30, 10);
        assert_eq!(s.tenants.len(), 30);
        assert!(s.validate().is_ok());
        let jobs = s.generate();
        assert_eq!(jobs.len(), 300);
        // Aggregate arrival rate ~ the 3-tenant preset's: each clone's
        // mean gap is scaled by 30/3 = 10.
        assert_eq!(s.tenants[0].mean_interarrival, 25.0 * 0.6 * 10.0);
        // Names stay unique so RNG streams never collide.
        let mut names: Vec<&str> = s.tenants.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_existing_streams() {
        let base = spec().generate();
        let mut widened = spec();
        widened.tenants.push(TenantSpec {
            name: "tenant-extra".into(),
            jobs: 3,
            mean_interarrival: 100.0,
            dataset_mb: (4.0, 8.0),
            deadline_slack: (1.5, 2.0),
        });
        let wide = widened.generate();
        // Every original (tenant, arrival, bytes) triple survives.
        for j in &base {
            assert!(wide.iter().any(|w| w.tenant == j.tenant
                && w.arrival == j.arrival
                && w.dataset_bytes == j.dataset_bytes));
        }
    }
}
