//! Live telemetry over the decision core: per-tenant SLO gauges fed
//! by completions, windowed queue-wait quantiles, and the
//! [`AccuracyLedger`]'s drift detector — everything a running
//! `fg-serve` instance streams to metrics subscribers.
//!
//! Armed through [`Scheduler::with_telemetry`]; off by default, so
//! batch runs (and the golden traces pinned to them) pay nothing and
//! change nothing. Telemetry is strictly observational: it never
//! touches a scheduling decision, which is what lets `fg-serve` arm
//! it unconditionally while staying bit-identical to a direct
//! [`Scheduler::run`].
//!
//! [`Scheduler::with_telemetry`]: crate::sched::Scheduler::with_telemetry

use crate::ledger::{AccuracyLedger, AccuracySample, DriftAlarm, DriftConfig, KeyDrift};
use crate::sched::JobOutcome;
use fg_trace::{SlidingHistogram, WindowSpec};
use serde::{Deserialize, Serialize};

/// Telemetry tuning: the drift detector plus the queue-wait window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Accuracy-ledger and drift-detector tuning.
    pub drift: DriftConfig,
    /// Sliding window for per-tenant queue-wait quantiles (sim-clock
    /// seconds).
    pub wait_window: WindowSpec,
    /// Value-bucket bounds for the windowed wait histograms, seconds.
    pub wait_bounds: Vec<f64>,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            drift: DriftConfig::default(),
            // One hour of sim time in one-minute buckets.
            wait_window: WindowSpec::new(60.0, 60),
            wait_bounds: vec![1.0, 5.0, 15.0, 60.0, 300.0, 1800.0],
        }
    }
}

/// One tenant's live SLO gauges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Tenant index.
    pub tenant: usize,
    /// Jobs completed.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub deadline_violations: u64,
    /// `deadline_violations / completed` (0 before the first
    /// completion).
    pub violation_rate: f64,
    /// Mean relative error of the admission-time completion estimate
    /// (`|finish − estimate| / turnaround`), over completions that had
    /// an estimate — "how honest were our quotes".
    pub mean_quote_error: f64,
    /// P99 queue wait over the sliding window, seconds; `None` when
    /// the window holds no completions.
    pub queue_wait_p99: Option<f64>,
}

/// A frozen, serializable view of the telemetry plane at one instant —
/// the payload of `fg-serve`'s `MetricsSnapshot` frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Sim-clock instant the snapshot was taken at.
    pub now: f64,
    /// Monotone change counter: bumps on every completion, so a
    /// subscriber (or the serving session) can skip snapshots that
    /// cannot have changed.
    pub epoch: u64,
    /// Accuracy samples ingested so far.
    pub samples: u64,
    /// Per-tenant SLO gauges, indexed by tenant.
    pub tenants: Vec<TenantSlo>,
    /// Per-`(app, repository)` residual statistics.
    pub keys: Vec<KeyDrift>,
    /// Every drift alarm raised so far, in firing order.
    pub alarms: Vec<DriftAlarm>,
}

/// Per-tenant cumulative accumulators.
#[derive(Debug, Clone, Default, PartialEq)]
struct TenantAcc {
    completed: u64,
    violations: u64,
    err_sum: f64,
    err_count: u64,
}

/// The live telemetry state owned by a [`SchedCore`] when armed.
///
/// [`SchedCore`]: crate::core::SchedCore
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryState {
    cfg: TelemetryConfig,
    ledger: AccuracyLedger,
    tenants: Vec<TenantAcc>,
    waits: Vec<SlidingHistogram>,
    epoch: u64,
}

impl TelemetryState {
    /// Fresh state under `cfg`.
    pub fn new(cfg: TelemetryConfig) -> TelemetryState {
        let ledger = AccuracyLedger::new(cfg.drift);
        TelemetryState { cfg, ledger, tenants: Vec::new(), waits: Vec::new(), epoch: 0 }
    }

    /// The accuracy ledger.
    pub fn ledger(&self) -> &AccuracyLedger {
        &self.ledger
    }

    /// The change counter (bumps on every completion).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn tenant_mut(&mut self, tenant: usize) -> &mut TenantAcc {
        while self.tenants.len() <= tenant {
            self.tenants.push(TenantAcc::default());
            self.waits.push(SlidingHistogram::new(self.cfg.wait_window, &self.cfg.wait_bounds));
        }
        &mut self.tenants[tenant]
    }

    /// Fold one completed job in: SLO accumulators always, the
    /// accuracy ledger when the observation was clean (`sample` is
    /// `Some`). Returns the drift alarms the sample tripped.
    pub fn on_completion(
        &mut self,
        outcome: &JobOutcome,
        sample: Option<AccuracySample>,
    ) -> Vec<DriftAlarm> {
        self.epoch += 1;
        let finish = outcome.finish.expect("completion hook runs on completed outcomes");
        let acc = self.tenant_mut(outcome.tenant);
        acc.completed += 1;
        if outcome.met_deadline() == Some(false) {
            acc.violations += 1;
        }
        if let Some(err) = outcome.completion_error() {
            acc.err_sum += err;
            acc.err_count += 1;
        }
        if let Some(w) = outcome.wait() {
            self.waits[outcome.tenant].observe(finish, w);
        }
        match sample {
            Some(s) => self.ledger.ingest(s),
            None => Vec::new(),
        }
    }

    /// Freeze the plane at instant `now`. Takes `&mut self` because
    /// reading the sliding windows rotates expired buckets out.
    pub fn snapshot(&mut self, now: f64) -> TelemetrySnapshot {
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (t, acc) in self.tenants.iter().enumerate() {
            let violation_rate =
                if acc.completed == 0 { 0.0 } else { acc.violations as f64 / acc.completed as f64 };
            let mean_quote_error =
                if acc.err_count == 0 { 0.0 } else { acc.err_sum / acc.err_count as f64 };
            tenants.push(TenantSlo {
                tenant: t,
                completed: acc.completed,
                deadline_violations: acc.violations,
                violation_rate,
                mean_quote_error,
                queue_wait_p99: None, // filled below (waits needs &mut)
            });
        }
        for (t, w) in self.waits.iter_mut().enumerate() {
            tenants[t].queue_wait_p99 = w.quantile(now, 0.99);
        }
        TelemetrySnapshot {
            now,
            epoch: self.epoch,
            samples: self.ledger.total(),
            tenants,
            keys: self.ledger.key_drift(),
            alarms: self.ledger.alarms().to_vec(),
        }
    }
}

/// What a telemetry-armed run hands back in
/// [`SchedResult`](crate::sched::SchedResult): the final snapshot plus
/// the full ledger (for dumping the training corpus or auditing the
/// alarms).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// The plane frozen at drain time.
    pub snapshot: TelemetrySnapshot,
    /// The accuracy ledger, rings and statistics intact.
    pub ledger: AccuracyLedger,
}
