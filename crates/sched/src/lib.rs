//! # fg-sched — multi-tenant job scheduling over the prediction model
//!
//! The paper's prediction framework exists to drive *resource
//! selection*, but selection for a single job in an idle grid is the
//! easy case. Real grid deployments face streams of concurrent jobs
//! from many tenants competing for repositories, WAN links, and compute
//! sites, and observed transfer rates degrade under load in ways a
//! static profile misses. This crate makes the predictor earn its keep
//! online:
//!
//! * [`workload`] — seeded, deterministic job streams: per-tenant
//!   arrival processes (homogeneous or sinusoidally-modulated Poisson,
//!   bag-of-tasks burst sessions), heavy-tailed dataset-size
//!   distributions (lognormal, Pareto, body+tail mixtures alongside
//!   the legacy log-uniform), [`LoadLevel`] × [`WorkloadShape`]
//!   presets shaped like published grid traces, and deadline-slack
//!   distributions.
//! * [`replay`] — the JSONL trace schema: dump any generated workload
//!   to a self-describing text trace and replay external traces
//!   through the same validated [`replay::Workload`] path, so recorded
//!   and synthetic traffic are interchangeable inputs to the
//!   scheduler.
//! * [`grid`] — the static grid description: replicated repositories
//!   with capacitated WAN uplinks, compute sites with capacitated
//!   ingress, the configuration menu, and per-app prediction models.
//! * [`policy`] — pluggable queueing disciplines: FCFS, FCFS with
//!   backfilling, shortest-predicted-job-first, and deadline EDF with
//!   predictor-based admission control.
//! * [`sched`] — the sim-clock event loop. Placement ranks every
//!   (repository, site, configuration) triple that fits the free node
//!   slices via `fg-predict`'s fallible ranking; concurrent transfer
//!   phases are stretched by max-min fair sharing of the capacitated
//!   links ([`fg_sim::FairShareSim`]'s fluid model); the achieved
//!   per-stream bandwidth of every completed transfer feeds a per-repo
//!   [`fg_predict::bandwidth`] estimator so later placements and
//!   admission decisions use load-corrected predictions. Every job gets
//!   an [`fg_trace`] span tree and the registry gains queue-depth
//!   gauges, admission counters, and wait/slowdown histograms.
//!   Opt-in extensions (all default-off): deadline-driven preemption
//!   with checkpoint/resume, mid-run replica migration gated by
//!   `fg-predict`'s cost/benefit model, per-tenant token-bucket
//!   submission quotas, and WAN-degradation injection for experiments.
//!
//! Everything is deterministic: the same seed and workload preset
//! produce a bit-identical schedule, trace, and figure.

#![warn(missing_docs)]

pub mod core;
pub mod grid;
pub mod ledger;
pub mod placement;
pub mod policy;
pub mod replay;
pub mod sched;
pub mod telemetry;
pub mod workload;

pub use crate::core::{
    CoreEvent, CoreStats, PredictionQuote, SchedCore, SchedSnapshot, SubmitError, SubmitOutcome,
};
pub use grid::{AppModel, GridSpec, RepoSpec, SiteSpec};
pub use ledger::{
    AccuracyLedger, AccuracySample, Component, DriftAlarm, DriftConfig, KeyDrift, KeyLedger,
    ResidualStat, LEDGER_VERSION,
};
pub use placement::{
    naive_best_placement, naive_best_placement_with, FreeSlices, Placement, PlacementEngine,
    PlacementStats,
};
pub use policy::Policy;
pub use replay::{ReplayError, Workload, WorkloadStats};
pub use sched::{
    Degradation, JobOutcome, MigrationConfig, MigrationEvent, PlacementInfo, PreemptionEvent,
    SchedResult, Scheduler, TenantQuota,
};
pub use telemetry::{
    TelemetryConfig, TelemetryReport, TelemetrySnapshot, TelemetryState, TenantSlo,
};
pub use workload::{
    ArrivalProcess, JobSpec, LoadLevel, Sinusoid, SizeDist, TenantSpec, WorkloadError,
    WorkloadShape, WorkloadSpec,
};
