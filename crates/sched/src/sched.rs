//! The sim-clock scheduling core.
//!
//! A fluid event loop on a seconds clock: job arrivals, phase
//! transitions, and completions are the only events. Placement ranks
//! every (repository, site, configuration) triple that fits the free
//! node slices with `fg-predict`'s fallible ranking — a misconfigured
//! candidate is skipped, never fatal. Each placed job runs the paper's
//! three phases in sequence, as the additive model describes them:
//!
//! * **disk** — a fixed interval of the predicted `t_d`;
//! * **network** — a fluid demand of the dataset's bytes at rate cap
//!   `s / t_n` (so an uncontended transfer takes exactly the predicted
//!   `t_n`), routed through a max-min fair share
//!   ([`FairShareSim::instantaneous_rates`]) of the repository uplink
//!   and site ingress capacities — concurrent transfers stretch;
//! * **compute** — a fixed interval of the predicted `t_c`.
//!
//! Every completed transfer's achieved per-stream bandwidth feeds a
//! per-repository EWMA estimator (`fg-predict::bandwidth`), and all
//! later placements and admission estimates substitute the estimate for
//! that repository's nominal bandwidth — the load-correction feedback
//! loop.
//!
//! Compute slots are shared max-min fairly *across tenants*: a
//! scheduling pass first serves jobs whose tenant sits under its
//! water-filled slot quota, and only backfilling policies may then
//! start jobs beyond quota (and only when no under-quota start is
//! possible, so fairness never costs work conservation). Violations of
//! either property are recorded on the result rather than silently
//! dropped.

use crate::grid::GridSpec;
use crate::placement::{FreeSlices, Placement, PlacementEngine};
use crate::policy::Policy;
use crate::workload::JobSpec;
use fg_cluster::{Configuration, DeploymentRef};
use fg_predict::bandwidth::{BandwidthEstimator, Ewma};
use fg_predict::{decide_migration, try_predict_deployment, InterconnectParams, Prediction};
use fg_sim::{FairShareSim, Flow, ResourceId, SimTime};
use fg_trace::{SpanKind, Trace, Tracer};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Clock comparison slop, seconds.
const TIME_EPS: f64 = 1e-9;

/// A per-tenant token-bucket admission quota: each submission spends one
/// token; the bucket refills continuously up to `capacity`. A tenant
/// with no tokens left has its jobs rejected at arrival — they never
/// occupy the grid. `capacity == 0` starves the tenant entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantQuota {
    /// Maximum tokens the bucket holds.
    pub capacity: f64,
    /// Tokens regained per second.
    pub refill_per_sec: f64,
}

/// One preemption of a running job: evicted at `preempted_at`, back on
/// the grid at `resumed_at` (`None` if the run ended first).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PreemptionEvent {
    /// When the job was checkpointed and evicted.
    pub preempted_at: f64,
    /// When it re-occupied its nodes.
    pub resumed_at: Option<f64>,
}

/// A mid-run replica migration: the job's remaining transfer switched
/// repositories over `[at, until]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MigrationEvent {
    /// When the checkpoint was taken and the switch began.
    pub at: f64,
    /// When the transfer resumed on the new replica.
    pub until: f64,
    /// Repository the job was fetching from.
    pub from_repo: String,
    /// Repository it fetches from afterwards.
    pub to_repo: String,
}

/// Tuning for mid-run migration (see [`Scheduler::with_migration`]).
/// The thresholds mirror `fg-predict`'s `ReselectionController`
/// hysteresis: a transfer must *achieve* less than `1 - deviation` of
/// its uncontended rate before the cost model even runs, and the move
/// must beat staying by `margin` after paying `T̂_migrate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Relative shortfall of the bytes a transfer actually moved
    /// versus the fluid model's contention-adjusted expectation that
    /// triggers the cost/benefit check. Fair-share stretching from
    /// modeled link contention is part of the expectation, so a run
    /// with stable bandwidth never trips the trigger.
    pub deviation: f64,
    /// Relative improvement the move must clear (hysteresis).
    pub margin: f64,
    /// Checkpoint-and-switch pause charged to the migrating job,
    /// seconds.
    pub overhead_secs: f64,
    /// Ignore transfers younger than this: one fluid step is not a
    /// bandwidth sample.
    pub min_elapsed_secs: f64,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig { deviation: 0.25, margin: 0.10, overhead_secs: 0.5, min_elapsed_secs: 1.0 }
    }
}

/// A sustained WAN degradation injected on one repository's paths from
/// `start` onwards (transfer rate caps scale by `factor`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Repository index in the grid.
    pub repo: usize,
    /// Onset instant, seconds.
    pub start: f64,
    /// Bandwidth multiplier in `(0, 1]`.
    pub factor: f64,
}

/// Where a job ran.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlacementInfo {
    /// Repository index in the grid.
    pub repo: usize,
    /// Compute-site index in the grid.
    pub site: usize,
    /// Repository name.
    pub repo_name: String,
    /// Site name.
    pub site_name: String,
    /// Configuration label, `n-c`.
    pub config: String,
    /// Data nodes held for the job's lifetime.
    pub data_nodes: usize,
    /// Compute nodes held for the job's lifetime.
    pub compute_nodes: usize,
}

/// Everything that happened to one submitted job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobOutcome {
    /// Submission id.
    pub id: usize,
    /// Tenant index.
    pub tenant: usize,
    /// Application name.
    pub app: String,
    /// Arrival instant (seconds).
    pub arrival: f64,
    /// Logical dataset size.
    pub dataset_bytes: u64,
    /// False when the job was rejected (admission control, unknown app,
    /// or no feasible placement exists even on an empty grid).
    pub admitted: bool,
    /// Why the job was rejected, when it was.
    pub reject_reason: Option<String>,
    /// Standalone predicted execution time: best placement on an empty
    /// grid at nominal bandwidth. The baseline for slowdown and
    /// deadlines.
    pub standalone: Option<f64>,
    /// Deadline instant: arrival plus slack times standalone.
    pub deadline: Option<f64>,
    /// Predicted completion instant at submission (backlog estimate
    /// plus load-corrected execution prediction).
    pub admission_estimate: Option<f64>,
    /// Where the job ran.
    pub placement: Option<PlacementInfo>,
    /// When the job left the queue and occupied its nodes.
    pub placed_at: Option<f64>,
    /// Predicted execution time of the chosen placement, at placement
    /// time (load-corrected bandwidth).
    pub predicted: Option<f64>,
    /// End of the disk phase.
    pub disk_end: Option<f64>,
    /// End of the (possibly stretched) network phase.
    pub network_end: Option<f64>,
    /// Completion instant.
    pub finish: Option<f64>,
    /// Times the job was checkpointed off the grid for a
    /// tighter-deadline arrival (empty unless preemption is enabled).
    pub preemptions: Vec<PreemptionEvent>,
    /// The mid-run replica migration, when one happened.
    pub migration: Option<MigrationEvent>,
}

impl JobOutcome {
    /// Queue wait: placement minus arrival.
    pub fn wait(&self) -> Option<f64> {
        Some(self.placed_at? - self.arrival)
    }

    /// Turnaround: completion minus arrival.
    pub fn turnaround(&self) -> Option<f64> {
        Some(self.finish? - self.arrival)
    }

    /// Slowdown: turnaround over the standalone prediction (`>= 1` up
    /// to prediction error; 1 means "as if alone on an idle grid").
    /// A degenerate zero-duration standalone (empty dataset, free
    /// compute) is clamped so the ratio stays finite.
    pub fn slowdown(&self) -> Option<f64> {
        Some(self.turnaround()? / self.standalone?.max(TIME_EPS))
    }

    /// Did the job complete by its deadline?
    pub fn met_deadline(&self) -> Option<bool> {
        Some(self.finish? <= self.deadline? + TIME_EPS)
    }

    /// Relative error of the submission-time completion estimate,
    /// normalized by the achieved turnaround.
    pub fn completion_error(&self) -> Option<f64> {
        let turnaround = self.turnaround()?;
        Some((self.finish? - self.admission_estimate?).abs() / turnaround.max(TIME_EPS))
    }
}

/// A scheduler run's full result.
#[derive(Debug)]
pub struct SchedResult {
    /// One outcome per submitted job, in submission-id order.
    pub outcomes: Vec<JobOutcome>,
    /// The span tree (one `Job` span per job, phase children) plus the
    /// metrics snapshot (queue depth, admission counters, wait and
    /// slowdown histograms).
    pub trace: Trace,
    /// Last completion instant (0 for an empty workload).
    pub makespan: f64,
    /// Fairness or work-conservation invariant violations detected
    /// during the run (empty on a healthy run).
    pub violations: Vec<String>,
}

/// A job waiting in the scheduler queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedJob {
    /// The submitted job.
    pub(crate) spec: JobSpec,
    /// Standalone predicted execution time.
    pub(crate) standalone: f64,
    /// Deadline instant, when one applies.
    pub(crate) deadline: Option<f64>,
}

/// An `f64` ordered by `total_cmp` so it can key a [`BTreeSet`]. The
/// ordering matches the comparator the per-pass policy sort used, so
/// the maintained index visits jobs in exactly the order the sort
/// produced.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderKey(f64);

impl Eq for OrderKey {}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The scheduler queue, indexed for the hot loop.
///
/// The original `Vec<QueuedJob>` forced three O(queue) rescans per
/// scheduling pass — the policy sort, the fair-share demand tally, and
/// the admission backlog sum — which goes quadratic on long traces
/// once the grid saturates and a backlog accumulates. Every policy's
/// ordering key is fixed at enqueue time (arrival, standalone
/// prediction, or deadline), so all three can be maintained
/// incrementally instead:
///
/// * `jobs` — by submission id. Arrivals enqueue in id order, so
///   iteration yields the same sequence the old `Vec` did (pushes at
///   the tail, order-preserving removals).
/// * `order` — `(policy key, id, tenant)` triples; iteration is the
///   policy order the per-pass sort produced, bit-identically (ids
///   are unique, so the trailing tenant never influences the order —
///   it rides along so walks can skip jobs without a `jobs` lookup).
/// * `by_tenant` — the same entries split per tenant, so the round-1
///   quota walk can merge only the under-quota tenants' jobs in
///   global policy order instead of scanning every queued job to
///   skip the capped ones (the dominant cost on saturated traces:
///   ~Q skipped entries per start).
/// * `backlog_slot_secs` — running Σ standalone·min_slots for the
///   submission-time completion estimate. An incremental float sum
///   can differ from the old front-to-back resum in the last bits
///   after dequeues, which only nudges the *reported* admission
///   estimate; placement decisions never read it.
#[derive(Debug)]
pub(crate) struct PolicyQueue {
    policy: Policy,
    jobs: BTreeMap<usize, QueuedJob>,
    order: BTreeSet<(OrderKey, usize, usize)>,
    by_tenant: Vec<BTreeSet<(OrderKey, usize)>>,
    backlog_slot_secs: f64,
    min_slots: usize,
}

impl PolicyQueue {
    fn new(policy: Policy, min_slots: usize) -> PolicyQueue {
        PolicyQueue {
            policy,
            jobs: BTreeMap::new(),
            order: BTreeSet::new(),
            by_tenant: Vec::new(),
            backlog_slot_secs: 0.0,
            min_slots,
        }
    }

    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queued jobs in submission-id order (the old `Vec` order).
    fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.values()
    }

    fn queued_for(&self, tenant: usize) -> usize {
        self.by_tenant.get(tenant).map_or(0, |s| s.len())
    }

    fn push(&mut self, job: QueuedJob) {
        let (metric, id) = self.policy.key(&job);
        if job.spec.tenant >= self.by_tenant.len() {
            self.by_tenant.resize(job.spec.tenant + 1, BTreeSet::new());
        }
        self.by_tenant[job.spec.tenant].insert((OrderKey(metric), id));
        self.backlog_slot_secs += job.standalone * self.min_slots as f64;
        self.order.insert((OrderKey(metric), id, job.spec.tenant));
        let prev = self.jobs.insert(id, job);
        assert!(prev.is_none(), "job {id} queued twice");
    }

    fn remove(&mut self, id: usize) -> QueuedJob {
        let job = self.jobs.remove(&id).expect("removed job is queued");
        let (metric, _) = self.policy.key(&job);
        self.order.remove(&(OrderKey(metric), id, job.spec.tenant));
        self.by_tenant[job.spec.tenant].remove(&(OrderKey(metric), id));
        self.backlog_slot_secs -= job.standalone * self.min_slots as f64;
        job
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Disk {
        until: f64,
    },
    Network,
    /// Checkpoint-and-switch pause of a mid-run migration; the transfer
    /// resumes (on the new repository) when `until` passes.
    Migrating {
        until: f64,
    },
    Compute {
        until: f64,
    },
}

#[derive(Debug, Clone)]
struct Running {
    /// Index into the outcomes vector (== JobSpec id position).
    slot: usize,
    tenant: usize,
    repo: usize,
    site: usize,
    config: Configuration,
    predicted: Prediction,
    placed_at: f64,
    phase: Phase,
    bytes: f64,
    net_started: f64,
    net_remaining: f64,
    net_cap: f64,
    /// The per-stream WAN bandwidth the placement prediction used;
    /// the baseline for converting an observed stretch back into an
    /// equivalent bandwidth sample.
    placed_bw: f64,
    disk_end: Option<f64>,
    network_end: Option<f64>,
    /// Bytes the fluid model expected this transfer to have moved
    /// under fair-share contention with *undegraded* rate caps — the
    /// migration trigger's baseline (accumulated only when migration
    /// is enabled).
    net_expected: f64,
    /// Deadline instant, for preemption ordering.
    deadline: Option<f64>,
    /// Reduction-object bytes a checkpoint of this job would move.
    max_obj_bytes: u64,
    /// Suppress the bandwidth-feedback sample: a preempted or migrated
    /// transfer's elapsed time is not a clean observation.
    no_feedback: bool,
}

/// What was left of a preempted job's current phase.
#[derive(Debug, Clone, Copy)]
enum RemainingPhase {
    Disk(f64),
    Network(f64),
    Compute(f64),
}

/// A checkpointed job waiting to re-occupy its nodes.
#[derive(Debug, Clone)]
struct Suspended {
    job: Running,
    remaining: RemainingPhase,
}

/// How a job got its nodes in a scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StartKind {
    /// Round 1: the tenant was under its fair-share quota.
    UnderQuota,
    /// Round 2: past quota, but the nodes were otherwise idle.
    Backfill,
    /// The start was enabled by checkpointing a looser-deadline job
    /// off its nodes; deadline urgency overrides fair shares.
    Preempt,
}

/// The multi-tenant scheduler: a grid, a policy, and an EWMA smoothing
/// factor for the bandwidth feedback loop. Preemption, mid-run
/// migration, token-bucket quotas, and bandwidth-degradation injection
/// are all off unless enabled through the builder methods, and a
/// default-configured scheduler behaves bit-identically to earlier
/// releases.
pub struct Scheduler {
    grid: GridSpec,
    policy: Policy,
    ewma_alpha: f64,
    quotas: Option<Vec<TenantQuota>>,
    preemption: Option<f64>,
    migration: Option<MigrationConfig>,
    degradations: Vec<Degradation>,
    parallel_scoring: bool,
    naive_placement: bool,
    workload_metrics: bool,
}

impl Scheduler {
    /// A scheduler over `grid` applying `policy`, with the default
    /// EWMA smoothing factor of 0.3 for observed bandwidths.
    pub fn new(grid: GridSpec, policy: Policy) -> Scheduler {
        Scheduler {
            grid,
            policy,
            ewma_alpha: 0.3,
            quotas: None,
            preemption: None,
            migration: None,
            degradations: Vec::new(),
            parallel_scoring: false,
            naive_placement: false,
            workload_metrics: false,
        }
    }

    /// Rebuild stale placement rankings through rayon's parallel
    /// iterators. The reduce installs results in repository-index
    /// order, so the run stays bit-identical to the sequential one.
    pub fn with_parallel_scoring(mut self) -> Scheduler {
        self.parallel_scoring = true;
        self
    }

    /// Replace the cached placement engine with the naive exhaustive
    /// scan — the differential-testing oracle. Slow; test use only.
    #[doc(hidden)]
    pub fn with_naive_placement(mut self) -> Scheduler {
        self.naive_placement = true;
        self
    }

    /// Override the bandwidth-feedback smoothing factor.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Scheduler {
        assert!(alpha > 0.0 && alpha <= 1.0);
        self.ewma_alpha = alpha;
        self
    }

    /// Cap each tenant's submission rate with a token bucket, indexed
    /// by tenant id (tenants past the end are unlimited). A job whose
    /// bucket is empty is rejected at arrival with a `quota:` reason
    /// and never occupies the grid.
    pub fn with_quotas(mut self, quotas: Vec<TenantQuota>) -> Scheduler {
        for q in &quotas {
            assert!(q.capacity >= 0.0 && q.refill_per_sec >= 0.0, "quota terms must be >= 0");
        }
        self.quotas = Some(quotas);
        self
    }

    /// Allow a queued job with a tighter deadline to checkpoint a
    /// running job with a looser one off its nodes. The victim resumes
    /// where it stopped once nodes free up, paying `overhead_secs` to
    /// restore its reduction-object checkpoint.
    pub fn with_preemption(mut self, overhead_secs: f64) -> Scheduler {
        assert!(overhead_secs >= 0.0, "preemption overhead must be >= 0");
        self.preemption = Some(overhead_secs);
        self
    }

    /// Let running jobs switch repositories mid-transfer when the
    /// achieved bandwidth collapses and `fg-predict`'s migration
    /// cost/benefit model favors the move.
    pub fn with_migration(mut self, config: MigrationConfig) -> Scheduler {
        assert!(
            config.deviation >= 0.0 && config.margin >= 0.0 && config.overhead_secs >= 0.0,
            "migration thresholds must be >= 0"
        );
        self.migration = Some(config);
        self
    }

    /// Inject a sustained WAN degradation on one repository's transfer
    /// paths (for experiments; real degradations come from contention).
    pub fn with_degradation(mut self, degradation: Degradation) -> Scheduler {
        assert!(degradation.repo < self.grid.repos.len(), "degraded repo must exist");
        assert!(
            degradation.factor > 0.0 && degradation.factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        self.degradations.push(degradation);
        self
    }

    /// Record workload-shape instruments in the run's metrics
    /// registry: burst-depth and tail-mass gauges plus a dataset-size
    /// histogram over the submitted stream. Opt-in, like every other
    /// feature instrument, so default-configured runs (and the golden
    /// traces pinned to them) see an unchanged snapshot.
    pub fn with_workload_metrics(mut self) -> Scheduler {
        self.workload_metrics = true;
        self
    }

    /// The policy this scheduler applies.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The rate multiplier degradations impose on `repo`'s transfers
    /// at instant `now` (1.0 when none applies).
    fn degrade_factor(&self, repo: usize, now: f64) -> f64 {
        self.degradations
            .iter()
            .filter(|d| d.repo == repo && now >= d.start - TIME_EPS)
            .map(|d| d.factor)
            .fold(1.0, f64::min)
    }

    /// Run the event loop over a job stream (need not be sorted) and
    /// return outcomes, trace, and invariant report. Deterministic: the
    /// same grid, policy, and jobs produce a bit-identical result.
    pub fn run(&self, jobs: &[JobSpec]) -> SchedResult {
        let grid = &self.grid;
        assert!(
            !grid.repos.is_empty() && !grid.sites.is_empty() && !grid.configs.is_empty(),
            "grid must have repositories, sites, and configurations"
        );
        let nrepo = grid.repos.len();
        let ntenant = jobs.iter().map(|j| j.tenant + 1).max().unwrap_or(0);
        let total_slots = grid.total_compute_slots();
        let min_slots = grid.min_config_slots();

        // Arrival order (ties by id).
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a].arrival.total_cmp(&jobs[b].arrival).then(jobs[a].id.cmp(&jobs[b].id))
        });

        // Shared-link fluid model: one resource per repository uplink,
        // one per site ingress.
        let capacities: Vec<f64> = grid
            .repos
            .iter()
            .map(|r| r.wan_capacity)
            .chain(grid.sites.iter().map(|s| s.ingress_capacity))
            .collect();
        let net = FairShareSim::new(capacities);

        let max_data: Vec<usize> = grid.repos.iter().map(|r| r.site.max_nodes).collect();
        let max_cmp: Vec<usize> = grid.sites.iter().map(|s| s.site.max_nodes).collect();
        let mut free = FreeSlices::new(max_data.clone(), max_cmp.clone());
        // The whole-grid slices admission estimates are computed
        // against (a job's corrected prediction assumes it eventually
        // gets its best placement, not the currently free one).
        let full = FreeSlices::new(max_data, max_cmp);
        let mut bw: Vec<f64> = grid.repos.iter().map(|r| r.wan.stream_bw).collect();
        let mut engine = PlacementEngine::new(grid);
        if self.parallel_scoring {
            engine = engine.with_parallel();
        }
        if self.naive_placement {
            engine = engine.with_naive();
        }
        let mut estimators: Vec<Ewma> = (0..nrepo).map(|_| Ewma::new(self.ewma_alpha)).collect();
        let mut used_slots = vec![0usize; ntenant];
        // Token buckets start full; refill lazily at each arrival.
        let mut buckets: Vec<(TenantQuota, f64, f64)> =
            self.quotas.as_deref().unwrap_or(&[]).iter().map(|&q| (q, q.capacity, 0.0)).collect();
        let mut suspended: Vec<Suspended> = Vec::new();

        let tracer = Tracer::new();
        let submitted_c = tracer.metrics.counter("sched_jobs_submitted");
        let admitted_c = tracer.metrics.counter("sched_jobs_admitted");
        let rejected_c = tracer.metrics.counter("sched_jobs_rejected");
        let completed_c = tracer.metrics.counter("sched_jobs_completed");
        let misses_c = tracer.metrics.counter("sched_deadline_misses");
        let backfill_c = tracer.metrics.counter("sched_backfill_starts");
        let depth_g = tracer.metrics.gauge("sched_queue_depth");
        let depth_max_g = tracer.metrics.gauge("sched_queue_depth_max");
        let wait_h =
            tracer.metrics.histogram("sched_wait_seconds", &[1.0, 5.0, 15.0, 60.0, 300.0, 1800.0]);
        let slow_h = tracer
            .metrics
            .histogram("sched_slowdown", &[1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0]);
        // Feature counters exist only when the feature is on, so a
        // default-configured run's metrics snapshot (and its golden
        // traces) are unchanged.
        let quota_rej_c =
            self.quotas.as_ref().map(|_| tracer.metrics.counter("sched_quota_rejections"));
        let quota_vio_c =
            self.quotas.as_ref().map(|_| tracer.metrics.counter("sched_quota_violations"));
        let preempt_c = self.preemption.map(|_| tracer.metrics.counter("sched_preemptions"));
        let migrate_c = self.migration.map(|_| tracer.metrics.counter("sched_migrations"));
        let ckpt_c = (self.preemption.is_some() || self.migration.is_some())
            .then(|| tracer.metrics.counter("sched_checkpoints"));
        if self.workload_metrics {
            // Shape-of-traffic instruments over the submitted stream,
            // computed up front (they describe the input, not the
            // schedule). The gauges come from the same stats the
            // replay layer reports, so trace files and metrics agree.
            let mut by_arrival: Vec<&JobSpec> = jobs.iter().collect();
            by_arrival.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
            let sorted: Vec<JobSpec> = by_arrival.into_iter().cloned().collect();
            let stats = crate::replay::stats_of(&sorted);
            tracer.metrics.gauge("workload_burst_depth_max").set(stats.burst_depth_max as f64);
            tracer.metrics.gauge("workload_tail_mass_top1").set(stats.tail_mass_top1);
            tracer.metrics.gauge("workload_p99_dataset_mb").set(stats.p99_bytes as f64 / 1e6);
            tracer.metrics.gauge("workload_mean_gap_secs").set(stats.mean_gap);
            let size_h = tracer
                .metrics
                .histogram("workload_dataset_mb", &[16.0, 64.0, 256.0, 1024.0, 4096.0]);
            for j in &sorted {
                size_h.observe(j.dataset_bytes as f64 / 1e6);
            }
        }

        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        // Id → submission slot, built once: the event loop resolves a
        // slot on every arrival, start, and completion, and a linear
        // rescan of the job list per lookup goes quadratic on long
        // traces.
        let mut slot_map: HashMap<usize, usize> = HashMap::with_capacity(jobs.len());
        for (i, j) in jobs.iter().enumerate() {
            let prev = slot_map.insert(j.id, i);
            assert!(prev.is_none(), "duplicate job id {}", j.id);
        }
        let slot_of = |id: usize| -> usize { *slot_map.get(&id).expect("job id present") };
        let mut queue = PolicyQueue::new(self.policy, min_slots);
        let mut running: Vec<Running> = Vec::new();
        let mut violations: Vec<String> = Vec::new();
        let mut next = 0usize;
        let mut now = 0.0f64;
        let mut makespan = 0.0f64;
        let mut depth_max = 0usize;
        let mut iterations = 0usize;
        let budget = 10_000 + 200 * jobs.len();

        while next < order.len()
            || !queue.is_empty()
            || !running.is_empty()
            || !suspended.is_empty()
        {
            iterations += 1;
            assert!(iterations <= budget, "scheduler event loop failed to make progress");

            // --- arrivals due at `now` ---
            while next < order.len() && jobs[order[next]].arrival <= now + TIME_EPS {
                let spec = &jobs[order[next]];
                next += 1;
                submitted_c.inc();
                let standalone = engine
                    .standalone_placement(grid, &spec.app, spec.dataset_bytes)
                    .map(|p| p.predicted.total());
                let mut outcome = JobOutcome {
                    id: spec.id,
                    tenant: spec.tenant,
                    app: spec.app.clone(),
                    arrival: spec.arrival,
                    dataset_bytes: spec.dataset_bytes,
                    admitted: false,
                    reject_reason: None,
                    standalone,
                    deadline: standalone.map(|s| spec.arrival + spec.deadline_slack * s),
                    admission_estimate: None,
                    placement: None,
                    placed_at: None,
                    predicted: None,
                    disk_end: None,
                    network_end: None,
                    finish: None,
                    preemptions: Vec::new(),
                    migration: None,
                };
                // Token-bucket gate: refill lazily, spend one token per
                // submission, reject (never queue) on an empty bucket.
                if let Some((q, tokens, last)) = buckets.get_mut(spec.tenant) {
                    *tokens = (*tokens + q.refill_per_sec * (now - *last)).min(q.capacity);
                    *last = now;
                    if *tokens + TIME_EPS < 1.0 {
                        outcome.reject_reason = Some(format!(
                            "quota: tenant {} bucket has {:.2} tokens, a submission needs 1",
                            spec.tenant, *tokens
                        ));
                        rejected_c.inc();
                        if let Some(c) = &quota_rej_c {
                            c.inc();
                        }
                        outcomes[slot_of(spec.id)] = Some(outcome);
                        continue;
                    }
                    *tokens -= 1.0;
                    if *tokens < -TIME_EPS {
                        // Structurally unreachable: the gate above
                        // rejects before the bucket can go negative.
                        if let Some(c) = &quota_vio_c {
                            c.inc();
                        }
                    }
                }
                let Some(standalone) = standalone else {
                    outcome.reject_reason = Some(if grid.app(&spec.app).is_none() {
                        format!("unknown app {:?}", spec.app)
                    } else {
                        "no feasible placement on an empty grid".to_string()
                    });
                    rejected_c.inc();
                    outcomes[slot_of(spec.id)] = Some(outcome);
                    continue;
                };
                // Submission-time completion estimate: fluid backlog of
                // predicted slot-seconds over the total slots, plus the
                // load-corrected execution prediction.
                let backlog: f64 = running
                    .iter()
                    .map(|r| {
                        (r.placed_at + r.predicted.total() - now).max(0.0)
                            * r.config.compute_nodes as f64
                    })
                    .sum::<f64>()
                    + queue.backlog_slot_secs;
                let corrected = engine
                    .best_placement(grid, &spec.app, spec.dataset_bytes, &full, &bw, None)
                    .map(|p| p.predicted.total())
                    .unwrap_or(standalone);
                let estimate = now + backlog / total_slots as f64 + corrected;
                outcome.admission_estimate = Some(estimate);
                if self.policy.admits() {
                    let deadline = outcome.deadline.expect("deadline follows standalone");
                    if estimate > deadline + TIME_EPS {
                        outcome.reject_reason = Some(format!(
                            "admission: predicted completion {estimate:.1}s past deadline {deadline:.1}s"
                        ));
                        rejected_c.inc();
                        outcomes[slot_of(spec.id)] = Some(outcome);
                        continue;
                    }
                }
                outcome.admitted = true;
                admitted_c.inc();
                let deadline = outcome.deadline;
                outcomes[slot_of(spec.id)] = Some(outcome);
                queue.push(QueuedJob { spec: spec.clone(), standalone, deadline });
                depth_max = depth_max.max(queue.len());
                depth_g.set(queue.len() as f64);
            }

            // --- phase transitions due at `now` ---
            let mut finished: Vec<usize> = Vec::new();
            for (ri, r) in running.iter_mut().enumerate() {
                match r.phase {
                    Phase::Disk { until } if until <= now + TIME_EPS => {
                        r.disk_end = Some(now);
                        if r.predicted.t_network > TIME_EPS && r.bytes > 0.0 {
                            r.phase = Phase::Network;
                            r.net_started = now;
                            r.net_remaining = r.bytes;
                            r.net_cap = r.bytes / r.predicted.t_network;
                        } else {
                            r.network_end = Some(now);
                            r.phase =
                                Phase::Compute { until: now + r.predicted.t_compute.max(0.0) };
                        }
                    }
                    Phase::Network if r.net_remaining <= 1e-6 * r.bytes.max(1.0) => {
                        // Convert the observed stretch into an
                        // equivalent per-stream WAN bandwidth: the
                        // model's T̂_network scales as 1/b, so a
                        // transfer predicted at bandwidth b that took
                        // `elapsed` instead of `t̂_n` behaved like
                        // bandwidth `b * t̂_n / elapsed`. Uncontended
                        // transfers reproduce their prediction exactly
                        // and leave the estimate unchanged.
                        let elapsed = now - r.net_started;
                        if !r.no_feedback && elapsed > TIME_EPS && r.predicted.t_network > TIME_EPS
                        {
                            let b_eff = r.placed_bw * r.predicted.t_network / elapsed;
                            estimators[r.repo].observe(b_eff);
                            bw[r.repo] = estimators[r.repo].estimate();
                        }
                        r.network_end = Some(now);
                        r.phase = Phase::Compute { until: now + r.predicted.t_compute.max(0.0) };
                    }
                    Phase::Migrating { until } if until <= now + TIME_EPS => {
                        r.phase = Phase::Network;
                    }
                    Phase::Compute { until } if until <= now + TIME_EPS => {
                        finished.push(ri);
                    }
                    _ => {}
                }
            }
            // Completions: release nodes, finalize outcomes.
            for &ri in finished.iter().rev() {
                let r = running.remove(ri);
                free.release(r.repo, r.site, &r.config);
                used_slots[r.tenant] -= r.config.compute_nodes;
                completed_c.inc();
                makespan = makespan.max(now);
                let o = outcomes[r.slot].as_mut().expect("placed job has an outcome");
                o.disk_end = r.disk_end;
                o.network_end = r.network_end;
                o.finish = Some(now);
                if let Some(w) = o.wait() {
                    wait_h.observe(w);
                }
                if let Some(s) = o.slowdown() {
                    slow_h.observe(s);
                }
                if o.met_deadline() == Some(false) {
                    misses_c.inc();
                }
            }

            // --- mid-run migration: a transfer achieving well under
            // its uncontended rate checkpoints its reduction object and
            // switches replicas when `fg-predict`'s cost/benefit model
            // favors the move (at most once per job) ---
            if let Some(mc) = self.migration {
                for r in running.iter_mut() {
                    if r.phase != Phase::Network {
                        continue;
                    }
                    let o = outcomes[r.slot].as_ref().expect("placed job has an outcome");
                    if o.migration.is_some() {
                        continue;
                    }
                    let elapsed = now - r.net_started;
                    if elapsed < mc.min_elapsed_secs {
                        continue;
                    }
                    let moved = r.bytes - r.net_remaining;
                    if moved <= TIME_EPS || r.net_remaining <= 1e-6 * r.bytes.max(1.0) {
                        continue;
                    }
                    let achieved = moved / elapsed;
                    if r.net_expected <= TIME_EPS || moved >= (1.0 - mc.deviation) * r.net_expected
                    {
                        continue;
                    }
                    let Some(model) = grid.app(&o.app) else { continue };
                    let dataset_bytes = o.dataset_bytes;
                    // Best alternative repository with free data nodes,
                    // priced at its current bandwidth estimate.
                    let mut best: Option<(usize, Prediction)> = None;
                    for (ci, repo) in grid.repos.iter().enumerate() {
                        if ci == r.repo || free.data()[ci] < r.config.data_nodes {
                            continue;
                        }
                        let candidate = DeploymentRef {
                            repository: &repo.site,
                            compute: &grid.sites[r.site].site,
                            stream_bw: bw[ci],
                            config: r.config,
                            cache: None,
                        };
                        let Ok(pred) = try_predict_deployment(
                            &model.profile,
                            model.classes,
                            candidate,
                            dataset_bytes,
                            &grid.factors,
                        ) else {
                            continue;
                        };
                        if best.as_ref().is_none_or(|(_, b)| pred.total() < b.total()) {
                            best = Some((ci, pred));
                        }
                    }
                    let Some((to, pred)) = best else { continue };
                    // Remaining fraction of the transfer; the unstarted
                    // compute scales by the same f on both sides so the
                    // comparison hinges on the network remainder plus
                    // the checkpoint move and restart retrieval.
                    let f_rem = (r.net_remaining / r.bytes.max(1.0)).clamp(0.0, 1.0);
                    let stay = r.net_remaining / achieved + f_rem * r.predicted.t_compute.max(0.0);
                    let link = InterconnectParams::of_site(&grid.sites[r.site].site);
                    let decision = decide_migration(stay, &pred, f_rem, r.max_obj_bytes, &link);
                    if !decision.worthwhile(mc.margin) {
                        continue;
                    }
                    // Commit: swap repositories, pause for the
                    // checkpoint move, then resume the remaining bytes
                    // at the candidate's uncontended rate.
                    free.release_data(r.repo, r.config.data_nodes);
                    free.alloc_data(to, r.config.data_nodes);
                    let from_repo = grid.repos[r.repo].site.name.clone();
                    let to_repo = grid.repos[to].site.name.clone();
                    r.repo = to;
                    r.placed_bw = bw[to];
                    r.net_cap = if pred.t_network > TIME_EPS {
                        r.bytes / pred.t_network
                    } else {
                        f64::INFINITY
                    };
                    r.no_feedback = true;
                    r.phase = Phase::Migrating { until: now + mc.overhead_secs };
                    let o = outcomes[r.slot].as_mut().expect("placed job has an outcome");
                    o.migration = Some(MigrationEvent {
                        at: now,
                        until: now + mc.overhead_secs,
                        from_repo,
                        to_repo,
                    });
                    if let Some(c) = &migrate_c {
                        c.inc();
                    }
                    if let Some(c) = &ckpt_c {
                        c.inc();
                    }
                }
            }

            // --- scheduling pass ---
            self.schedule_pass(
                &mut queue,
                &mut running,
                &mut suspended,
                &mut engine,
                &mut free,
                &mut used_slots,
                &bw,
                now,
                total_slots,
                min_slots,
                &mut outcomes,
                &slot_of,
                &backfill_c,
                &preempt_c,
                &ckpt_c,
                &mut violations,
            );
            depth_g.set(queue.len() as f64);

            // --- horizon: next arrival, fixed-phase end, or drain ---
            let mut horizon = f64::INFINITY;
            if next < order.len() {
                horizon = jobs[order[next]].arrival;
            }
            for r in &running {
                match r.phase {
                    Phase::Disk { until }
                    | Phase::Migrating { until }
                    | Phase::Compute { until } => horizon = horizon.min(until),
                    Phase::Network => {}
                }
            }
            // A degradation onset changes the fluid rates, so the step
            // must not integrate across it.
            for d in &self.degradations {
                if d.start > now + TIME_EPS {
                    horizon = horizon.min(d.start);
                }
            }
            // With migration on, wake periodically while an eligible
            // transfer is in flight: the trigger compares achieved
            // against expected bandwidth, and nothing else schedules an
            // event between a transfer's start and its completion.
            if let Some(mc) = self.migration {
                let eligible = running.iter().any(|r| {
                    r.phase == Phase::Network
                        && outcomes[r.slot].as_ref().is_some_and(|o| o.migration.is_none())
                });
                if eligible {
                    horizon = horizon.min(now + mc.min_elapsed_secs.max(TIME_EPS));
                }
            }
            let netidx: Vec<usize> = running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.phase == Phase::Network)
                .map(|(i, _)| i)
                .collect();
            let rates: Vec<f64> = if netidx.is_empty() {
                Vec::new()
            } else {
                let flows: Vec<Flow> = netidx
                    .iter()
                    .map(|&i| Flow {
                        arrival: SimTime::ZERO,
                        demand: running[i].net_remaining.max(1e-9),
                        rate_cap: running[i].net_cap * self.degrade_factor(running[i].repo, now),
                        resources: vec![
                            ResourceId(running[i].repo),
                            ResourceId(nrepo + running[i].site),
                        ],
                    })
                    .collect();
                let active: Vec<usize> = (0..flows.len()).collect();
                net.instantaneous_rates(&flows, &active)
            };
            for (k, &i) in netidx.iter().enumerate() {
                assert!(rates[k] > 0.0, "max-min allocation starved an active transfer");
                horizon = horizon.min(now + running[i].net_remaining / rates[k]);
            }
            if horizon.is_infinite() {
                // Nothing running and nothing arriving: any queued or
                // suspended job left is permanently stuck — record and
                // stop.
                for q in queue.iter() {
                    violations
                        .push(format!("job {} queued forever: no placement ever fits", q.spec.id));
                }
                for s in &suspended {
                    violations.push(format!(
                        "job {} suspended forever: its nodes never freed",
                        jobs[s.job.slot].id
                    ));
                }
                break;
            }
            let dt = (horizon - now).max(0.0);
            // The migration trigger's baseline: what each transfer
            // would have moved this step under the same fair-share
            // contention with undegraded rate caps.
            if self.migration.is_some() && !netidx.is_empty() && dt > 0.0 {
                let exp_flows: Vec<Flow> = netidx
                    .iter()
                    .map(|&i| Flow {
                        arrival: SimTime::ZERO,
                        demand: running[i].net_remaining.max(1e-9),
                        rate_cap: running[i].net_cap,
                        resources: vec![
                            ResourceId(running[i].repo),
                            ResourceId(nrepo + running[i].site),
                        ],
                    })
                    .collect();
                let active: Vec<usize> = (0..exp_flows.len()).collect();
                let exp_rates = net.instantaneous_rates(&exp_flows, &active);
                for (k, &i) in netidx.iter().enumerate() {
                    running[i].net_expected += exp_rates[k] * dt;
                }
            }
            for (k, &i) in netidx.iter().enumerate() {
                running[i].net_remaining -= rates[k] * dt;
            }
            now = horizon;
        }

        depth_max_g.set(depth_max as f64);
        depth_g.set(queue.len() as f64);
        let outcomes: Vec<JobOutcome> =
            outcomes.into_iter().map(|o| o.expect("every submitted job gets an outcome")).collect();
        let trace = build_trace(tracer, &outcomes, makespan);
        SchedResult { outcomes, trace, makespan, violations }
    }

    /// Start every job the policy and fair shares allow, cheapest
    /// placement first within the policy order. Checkpointed jobs
    /// resume first; with preemption enabled, a head-of-queue job with
    /// a tighter deadline may evict a looser-deadline running job.
    #[allow(clippy::too_many_arguments)]
    fn schedule_pass(
        &self,
        queue: &mut PolicyQueue,
        running: &mut Vec<Running>,
        suspended: &mut Vec<Suspended>,
        engine: &mut PlacementEngine,
        free: &mut FreeSlices,
        used_slots: &mut [usize],
        bw: &[f64],
        now: f64,
        total_slots: usize,
        min_slots: usize,
        outcomes: &mut [Option<JobOutcome>],
        slot_of: &dyn Fn(usize) -> usize,
        backfill_c: &fg_trace::Counter,
        preempt_c: &Option<fg_trace::Counter>,
        ckpt_c: &Option<fg_trace::Counter>,
        violations: &mut Vec<String>,
    ) {
        let grid = &self.grid;
        loop {
            // Resume checkpointed jobs first: they already hold an
            // admission, so their nodes have priority over new starts.
            // The restore pause is charged up front.
            let mut si = 0;
            while si < suspended.len() {
                let fits = suspended[si].job.config.data_nodes
                    <= free.data()[suspended[si].job.repo]
                    && suspended[si].job.config.compute_nodes <= free.cmp()[suspended[si].job.site];
                if !fits {
                    si += 1;
                    continue;
                }
                let Suspended { mut job, remaining } = suspended.remove(si);
                let overhead = self.preemption.unwrap_or(0.0);
                free.alloc(job.repo, job.site, &job.config);
                used_slots[job.tenant] += job.config.compute_nodes;
                job.no_feedback = true;
                job.phase = match remaining {
                    RemainingPhase::Disk(rem) => Phase::Disk { until: now + overhead + rem },
                    RemainingPhase::Network(remb) => {
                        // Restore pause, then the transfer continues
                        // with its remaining bytes.
                        job.net_remaining = remb;
                        Phase::Migrating { until: now + overhead }
                    }
                    RemainingPhase::Compute(rem) => Phase::Compute { until: now + overhead + rem },
                };
                let o = outcomes[job.slot].as_mut().expect("suspended job has an outcome");
                o.preemptions
                    .last_mut()
                    .expect("suspended job recorded its preemption")
                    .resumed_at = Some(now);
                running.push(job);
            }
            if queue.is_empty() {
                return;
            }
            // Saturation early-out: when no configuration in the menu
            // fits the largest free data slice *and* the largest free
            // compute slice, every placement query below would return
            // `None` (any site may pair with any repository, so the
            // maxima bound every candidate), and the quota
            // computation, the policy order walk, and both rounds are
            // pure overhead — skip them. Preemption is the one path
            // that can start a job without free nodes (it evicts a
            // victim first), so the shortcut only applies when
            // preemption is off. Decision-neutral by construction: it
            // suppresses only work that provably finds no start.
            if self.preemption.is_none()
                && !grid
                    .configs
                    .iter()
                    .any(|c| c.data_nodes <= free.max_data() && c.compute_nodes <= free.max_cmp())
            {
                return;
            }
            // Max-min fair slot quotas over the tenants that want
            // slots. A queued job demands what it could use when placed
            // unconstrained — the largest configuration — so a tenant
            // alone on an idle grid is never capped below the best
            // placement by its own conservative demand. A suspended job
            // still demands the slots it will re-occupy.
            let ntenant = used_slots.len();
            let max_slots = grid.max_config_slots();
            let mut demands = vec![0usize; ntenant];
            for r in running.iter() {
                demands[r.tenant] += r.config.compute_nodes;
            }
            for s in suspended.iter() {
                demands[s.job.tenant] += s.job.config.compute_nodes;
            }
            for (t, d) in demands.iter_mut().enumerate() {
                *d += queue.queued_for(t) * max_slots;
            }
            let quota = fair_quota(total_slots, &demands);

            // Round 1: jobs whose tenant is under quota, capped so the
            // start cannot push the tenant past its quota. The original
            // loop scanned the whole policy order, skipping every job of
            // a capped tenant — on a saturated trace that is ~Q skips
            // per start. Instead, merge only the under-quota tenants'
            // per-tenant order sets: repeatedly taking the smallest
            // (key, id) across their cursors visits exactly the
            // eligible jobs, in exactly the global policy order, so the
            // sequence of placement queries (and therefore every
            // decision) is identical to the full scan.
            let mut start: Option<(usize, Placement, StartKind)> = None;
            if self.policy.head_blocking() {
                // Only the global queue head may start; later jobs wait.
                let &(_, id, tenant) = queue.order.iter().next().expect("queue is non-empty");
                let headroom = quota[tenant].saturating_sub(used_slots[tenant]);
                if headroom >= min_slots {
                    let q = &queue.jobs[&id];
                    if let Some(p) = engine.best_placement(
                        grid,
                        &q.spec.app,
                        q.spec.dataset_bytes,
                        free,
                        bw,
                        Some(headroom),
                    ) {
                        start = Some((id, p, StartKind::UnderQuota));
                    }
                }
            } else {
                let mut cursors: Vec<(usize, std::iter::Peekable<_>)> = (0..ntenant)
                    .filter_map(|t| {
                        let headroom = quota[t].saturating_sub(used_slots[t]);
                        (headroom >= min_slots && queue.queued_for(t) > 0)
                            .then(|| (headroom, queue.by_tenant[t].iter().peekable()))
                    })
                    .collect();
                loop {
                    let mut head: Option<(usize, (OrderKey, usize))> = None;
                    for (ci, (_, cursor)) in cursors.iter_mut().enumerate() {
                        if let Some(&&entry) = cursor.peek() {
                            if head.is_none_or(|(_, h)| entry < h) {
                                head = Some((ci, entry));
                            }
                        }
                    }
                    let Some((ci, (_, id))) = head else { break };
                    let q = &queue.jobs[&id];
                    if let Some(p) = engine.best_placement(
                        grid,
                        &q.spec.app,
                        q.spec.dataset_bytes,
                        free,
                        bw,
                        Some(cursors[ci].0),
                    ) {
                        start = Some((id, p, StartKind::UnderQuota));
                        break;
                    }
                    cursors[ci].1.next();
                }
            }
            // Round 2: only when no under-quota start exists may a
            // backfilling policy start a job past its tenant's quota —
            // fairness must not cost work conservation.
            if start.is_none() && !self.policy.head_blocking() {
                for &(_, id, _) in queue.order.iter() {
                    let q = &queue.jobs[&id];
                    if let Some(p) = engine.best_placement(
                        grid,
                        &q.spec.app,
                        q.spec.dataset_bytes,
                        free,
                        bw,
                        None,
                    ) {
                        start = Some((id, p, StartKind::Backfill));
                        break;
                    }
                }
            }
            // Preemption: when nothing can start, the head job by
            // policy order may evict a running job with a strictly
            // looser deadline. The victim (loosest deadline first) is
            // checkpointed off its nodes and the head job starts on
            // them in the same pass — deadline urgency overrides the
            // fair-share quota, so the start is exempt from the
            // fairness checks below.
            if start.is_none() && self.preemption.is_some() && !queue.is_empty() {
                let &(_, head_id, _) = queue.order.iter().next().expect("queue is non-empty");
                let hq = &queue.jobs[&head_id];
                if let (Some(qd), true) = (hq.deadline, grid.app(&hq.spec.app).is_some()) {
                    let mut victims: Vec<usize> = (0..running.len())
                        .filter(|&i| running[i].deadline.is_some_and(|d| d > qd + TIME_EPS))
                        .collect();
                    victims.sort_by(|&a, &b| {
                        let (da, db) = (running[a].deadline.unwrap(), running[b].deadline.unwrap());
                        db.total_cmp(&da).then(running[a].slot.cmp(&running[b].slot))
                    });
                    for vi in victims {
                        let v = &running[vi];
                        // Hypothetical slices: the victim's nodes
                        // returned, nothing committed yet.
                        let mut hyp = free.clone();
                        hyp.release(v.repo, v.site, &v.config);
                        let Some(p) = engine.best_placement(
                            grid,
                            &hq.spec.app,
                            hq.spec.dataset_bytes,
                            &hyp,
                            bw,
                            None,
                        ) else {
                            continue;
                        };
                        let v = running.remove(vi);
                        free.release(v.repo, v.site, &v.config);
                        used_slots[v.tenant] -= v.config.compute_nodes;
                        let remaining = match v.phase {
                            Phase::Disk { until } => RemainingPhase::Disk((until - now).max(0.0)),
                            Phase::Network | Phase::Migrating { .. } => {
                                RemainingPhase::Network(v.net_remaining)
                            }
                            Phase::Compute { until } => {
                                RemainingPhase::Compute((until - now).max(0.0))
                            }
                        };
                        let o = outcomes[v.slot].as_mut().expect("placed job has an outcome");
                        o.preemptions.push(PreemptionEvent { preempted_at: now, resumed_at: None });
                        if let Some(c) = preempt_c {
                            c.inc();
                        }
                        if let Some(c) = ckpt_c {
                            c.inc();
                        }
                        suspended.push(Suspended { job: v, remaining });
                        start = Some((head_id, p, StartKind::Preempt));
                        break;
                    }
                }
            }
            let Some((id, placement, kind)) = start else {
                // Redundant guard for the work-conservation invariant:
                // with a backfilling policy, no queued job may fit the
                // free nodes once the pass declares itself done. It
                // replays round 2 verbatim, which just proved no start
                // exists, so it is pure double-checking — debug builds
                // only, where the test suite runs; a release sweep over
                // a long saturated backlog would re-scan the whole
                // queue after every pass.
                if cfg!(debug_assertions) && !self.policy.head_blocking() {
                    for q in queue.iter() {
                        if engine
                            .best_placement(grid, &q.spec.app, q.spec.dataset_bytes, free, bw, None)
                            .is_some()
                        {
                            violations.push(format!(
                                "work conservation: job {} fits free nodes but was not started at t={now:.3}",
                                q.spec.id
                            ));
                        }
                    }
                }
                return;
            };

            let q = queue.remove(id);
            let tenant = q.spec.tenant;
            match kind {
                StartKind::Backfill => {
                    backfill_c.inc();
                    if quota[tenant].saturating_sub(used_slots[tenant]) >= min_slots {
                        violations.push(format!(
                            "fair share: job {} backfilled past quota although tenant {tenant} had headroom at t={now:.3}",
                            q.spec.id
                        ));
                    }
                }
                StartKind::UnderQuota
                    if used_slots[tenant] + placement.cfg.compute_nodes > quota[tenant] =>
                {
                    violations.push(format!(
                        "fair share: job {} pushed tenant {tenant} past its quota at t={now:.3}",
                        q.spec.id
                    ));
                }
                StartKind::UnderQuota | StartKind::Preempt => {}
            }
            free.alloc(placement.repo, placement.site, &placement.cfg);
            used_slots[tenant] += placement.cfg.compute_nodes;
            let o = outcomes[slot_of(q.spec.id)].as_mut().expect("queued job has an outcome");
            o.placed_at = Some(now);
            o.predicted = Some(placement.predicted.total());
            o.placement = Some(PlacementInfo {
                repo: placement.repo,
                site: placement.site,
                repo_name: grid.repos[placement.repo].site.name.clone(),
                site_name: grid.sites[placement.site].site.name.clone(),
                config: placement.cfg.label(),
                data_nodes: placement.cfg.data_nodes,
                compute_nodes: placement.cfg.compute_nodes,
            });
            running.push(Running {
                slot: slot_of(q.spec.id),
                tenant,
                repo: placement.repo,
                site: placement.site,
                config: placement.cfg,
                predicted: placement.predicted,
                placed_at: now,
                phase: Phase::Disk { until: now + placement.predicted.t_disk.max(0.0) },
                bytes: q.spec.dataset_bytes as f64,
                net_started: now,
                net_remaining: 0.0,
                placed_bw: bw[placement.repo],
                net_cap: f64::INFINITY,
                disk_end: None,
                network_end: None,
                net_expected: 0.0,
                deadline: q.deadline,
                max_obj_bytes: grid.app(&q.spec.app).map(|m| m.profile.max_obj_bytes).unwrap_or(0),
                no_feedback: false,
            });
        }
    }
}

/// Integer max-min water-filling, computed in bulk. The reference
/// formulation hands out one slot at a time to the tenant with the
/// smallest allocation still under its demand (ties: lowest index) —
/// `O(total × tenants)`, which a scheduling pass pays on every
/// iteration. This closed form finds the water level directly: the
/// largest `L` with `Σ min(demand, L) <= total` satisfies everyone
/// below the level, and the leftover slots go one each to the
/// lowest-indexed tenants still above it — exactly where the
/// round-robin loop would have stopped, so the result is bit-identical
/// (`fair_quota_matches_the_slot_by_slot_reference` pins this).
fn fair_quota(total: usize, demands: &[usize]) -> Vec<usize> {
    let want: usize = demands.iter().sum();
    if want <= total {
        return demands.to_vec();
    }
    // want > total implies demands is non-empty and the loop below
    // always finds a level before running out of sorted demands.
    let mut sorted = demands.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut satisfied = 0usize; // slots consumed by demands under the level
    let mut level = 0usize;
    let mut remainder = 0usize;
    for (k, &d) in sorted.iter().enumerate() {
        if satisfied + (n - k) * d <= total {
            satisfied += d;
        } else {
            level = (total - satisfied) / (n - k);
            remainder = (total - satisfied) % (n - k);
            break;
        }
    }
    let mut alloc: Vec<usize> = demands.iter().map(|&d| d.min(level)).collect();
    if remainder > 0 {
        for (i, &d) in demands.iter().enumerate() {
            if d > level {
                alloc[i] += 1;
                remainder -= 1;
                if remainder == 0 {
                    break;
                }
            }
        }
    }
    alloc
}

/// Post-hoc span tree: one `Run` root, one `Job` span per submission in
/// arrival order with `JobQueued` and phase children, integer attrs for
/// the figures and exporters.
fn build_trace(mut tracer: Tracer, outcomes: &[JobOutcome], makespan: f64) -> Trace {
    let t = SimTime::from_secs_f64;
    let end_time = outcomes.iter().map(|o| o.finish.unwrap_or(o.arrival)).fold(makespan, f64::max);
    let run = tracer.begin(SpanKind::Run, None, SimTime::ZERO);
    let mut order: Vec<usize> = (0..outcomes.len()).collect();
    order.sort_by(|&a, &b| {
        outcomes[a]
            .arrival
            .total_cmp(&outcomes[b].arrival)
            .then(outcomes[a].id.cmp(&outcomes[b].id))
    });
    for &i in &order {
        let o = &outcomes[i];
        let job = tracer.begin(SpanKind::Job, None, t(o.arrival));
        tracer.attr(job, "job_id", o.id as u64);
        tracer.attr(job, "tenant", o.tenant as u64);
        tracer.attr(job, "dataset_bytes", o.dataset_bytes);
        tracer.attr(job, "admitted", u64::from(o.admitted));
        if let Some(s) = o.standalone {
            tracer.attr(job, "standalone_ms", (s * 1e3).round() as u64);
        }
        if let Some(p) = o.predicted {
            tracer.attr(job, "predicted_ms", (p * 1e3).round() as u64);
        }
        if let Some(met) = o.met_deadline() {
            tracer.attr(job, "met_deadline", u64::from(met));
        }
        match (o.placed_at, o.disk_end, o.network_end, o.finish) {
            (Some(placed), Some(disk), Some(netw), Some(finish)) => {
                let queued = tracer.record(SpanKind::JobQueued, None, t(o.arrival), t(placed));
                let _ = queued;
                tracer.record(SpanKind::Retrieval, None, t(placed), t(disk));
                if netw > disk {
                    tracer.record(SpanKind::Network, None, t(disk), t(netw));
                }
                tracer.record(SpanKind::Compute, None, t(netw), t(finish));
                // Disruption history: a zero-length `Checkpoint` marker
                // at each eviction or migration instant, plus the
                // off-grid / switching window it opened.
                for p in &o.preemptions {
                    let at = t(p.preempted_at);
                    tracer.record(SpanKind::Checkpoint, None, at, at);
                    tracer.record(SpanKind::Preempted, None, at, t(p.resumed_at.unwrap_or(finish)));
                }
                if let Some(m) = &o.migration {
                    tracer.record(SpanKind::Checkpoint, None, t(m.at), t(m.at));
                    tracer.record(SpanKind::Migrate, None, t(m.at), t(m.until));
                }
                tracer.end(job, t(finish));
            }
            _ => {
                // Rejected (or stuck) jobs: zero-length span at arrival.
                tracer.end(job, t(o.arrival));
            }
        }
    }
    tracer.end(run, t(end_time));
    tracer.finish(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::AppModel;
    use crate::workload::{LoadLevel, WorkloadSpec};
    use fg_predict::{AppClasses, Profile};
    use proptest::prelude::*;

    fn model() -> AppModel {
        AppModel {
            profile: Profile {
                app: "kmeans".into(),
                data_nodes: 1,
                compute_nodes: 1,
                wan_bw: 1e6,
                dataset_bytes: 1_000_000,
                t_disk: 40.0,
                t_network: 20.0,
                t_compute: 100.0,
                t_ro: 0.0,
                t_g: 0.5,
                max_obj_bytes: 512,
                passes: 1,
                repo_machine: "pentium-700".into(),
                compute_machine: "pentium-700".into(),
            },
            classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
        }
    }

    fn grid() -> GridSpec {
        GridSpec::demo(vec![("kmeans".into(), model())])
    }

    fn job(id: usize, tenant: usize, bytes: u64, arrival: f64) -> JobSpec {
        JobSpec {
            id,
            tenant,
            app: "kmeans".into(),
            dataset_bytes: bytes,
            arrival,
            deadline_slack: 3.0,
        }
    }

    #[test]
    fn empty_workload_is_a_noop() {
        let r = Scheduler::new(grid(), Policy::Fcfs).run(&[]);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.makespan, 0.0);
        assert!(r.violations.is_empty());
        assert_eq!(r.trace.metrics.counter("sched_jobs_submitted"), Some(0));
        r.trace.check_well_formed().unwrap();
    }

    #[test]
    fn a_lone_job_matches_its_prediction_exactly() {
        let r = Scheduler::new(grid(), Policy::Fcfs).run(&[job(0, 0, 2_000_000, 5.0)]);
        let o = &r.outcomes[0];
        assert!(o.admitted);
        assert_eq!(o.placed_at, Some(5.0));
        let predicted = o.predicted.unwrap();
        let finish = o.finish.unwrap();
        // Uncontended: the capacitated links never bind, so the fluid
        // network phase reproduces the predicted transfer time and the
        // job completes at placement + prediction.
        assert!(
            (finish - (5.0 + predicted)).abs() < 1e-6 * predicted,
            "finish {finish} vs predicted end {}",
            5.0 + predicted
        );
        assert_eq!(o.slowdown().map(|s| (s * 1e9).round() / 1e9), Some(1.0));
        assert!(r.violations.is_empty());
        r.trace.check_well_formed().unwrap();
    }

    #[test]
    fn overlapping_transfers_stretch_each_other() {
        // Two identical large jobs arriving together: both get placed
        // (plenty of nodes) and their network phases overlap on the
        // shared links, so at least one must finish later than its
        // uncontended prediction.
        let jobs = [job(0, 0, 60_000_000, 0.0), job(1, 1, 60_000_000, 0.0)];
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let lone = Scheduler::new(grid(), Policy::FcfsBackfill).run(&[job(0, 0, 60_000_000, 0.0)]);
        let lone_finish = lone.outcomes[0].finish.unwrap();
        let worst = r.outcomes.iter().map(|o| o.finish.unwrap()).fold(0.0f64, f64::max);
        assert!(
            worst > lone_finish + 1.0,
            "contention should stretch someone: worst {worst}, lone {lone_finish}"
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn contention_feeds_the_bandwidth_estimators() {
        // Two contended transfers stretch, degrading the repository's
        // bandwidth estimate. A third job arriving on an *idle* grid
        // afterwards is placed with a load-corrected prediction that is
        // strictly worse than the nominal standalone one — the feedback
        // loop, not queue backlog, accounts for the difference.
        let jobs = [
            job(0, 0, 60_000_000, 0.0),
            job(1, 1, 60_000_000, 0.0),
            job(2, 2, 20_000_000, 5_000.0),
        ];
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let pair_done = r.outcomes[0].finish.unwrap().max(r.outcomes[1].finish.unwrap());
        assert!(pair_done < 5_000.0, "late job must find an idle grid ({pair_done})");
        let o = &r.outcomes[2];
        assert!(o.admitted);
        assert_eq!(o.placed_at, Some(5_000.0));
        assert!(
            o.predicted.unwrap() > o.standalone.unwrap() + 1e-9,
            "corrected prediction {:?} should exceed nominal standalone {:?}",
            o.predicted,
            o.standalone
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 11).generate();
        for policy in Policy::ALL {
            let a = Scheduler::new(grid(), policy).run(&jobs);
            let b = Scheduler::new(grid(), policy).run(&jobs);
            assert_eq!(a.outcomes, b.outcomes, "policy {}", policy.name());
            assert_eq!(fg_trace::to_jsonl(&a.trace), fg_trace::to_jsonl(&b.trace));
        }
    }

    #[test]
    fn every_policy_preserves_the_invariants_under_load() {
        let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 3).generate();
        for policy in Policy::ALL {
            let r = Scheduler::new(grid(), policy).run(&jobs);
            assert!(r.violations.is_empty(), "{}: {:?}", policy.name(), r.violations);
            r.trace.check_well_formed().unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert_eq!(r.outcomes.len(), jobs.len());
            for o in &r.outcomes {
                if o.admitted {
                    let finish = o.finish.expect("admitted jobs complete");
                    assert!(finish >= o.arrival);
                    assert!(o.placed_at.unwrap() >= o.arrival - 1e-9);
                } else {
                    assert!(o.reject_reason.is_some());
                    assert!(o.finish.is_none());
                }
            }
        }
    }

    #[test]
    fn admission_control_rejects_hopeless_jobs() {
        // Saturate the grid, then submit a job with a tight deadline:
        // EDF admission must turn it away while FCFS would queue it.
        let mut jobs: Vec<JobSpec> = (0..12).map(|i| job(i, i % 3, 80_000_000, 0.0)).collect();
        let mut tight = job(12, 0, 80_000_000, 1.0);
        tight.deadline_slack = 1.01;
        jobs.push(tight);
        let edf = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
        let o = &edf.outcomes[12];
        assert!(!o.admitted, "tight job should be rejected: {:?}", o.reject_reason);
        assert!(o.reject_reason.as_deref().unwrap().starts_with("admission"));
        let fcfs = Scheduler::new(grid(), Policy::Fcfs).run(&jobs);
        assert!(fcfs.outcomes[12].admitted);
        assert_eq!(edf.trace.metrics.counter("sched_jobs_rejected"), Some(1));
    }

    #[test]
    fn unknown_apps_are_rejected_not_fatal() {
        let mut j = job(0, 0, 1_000_000, 0.0);
        j.app = "mystery".into();
        let r = Scheduler::new(grid(), Policy::Fcfs).run(&[j]);
        assert!(!r.outcomes[0].admitted);
        assert!(r.outcomes[0].reject_reason.as_deref().unwrap().contains("unknown app"));
    }

    #[test]
    fn fair_quota_water_fills() {
        assert_eq!(fair_quota(10, &[4, 4, 4]), vec![4, 3, 3]);
        assert_eq!(fair_quota(10, &[2, 8, 8]), vec![2, 4, 4]);
        assert_eq!(fair_quota(24, &[2, 2, 2]), vec![2, 2, 2]);
        assert_eq!(fair_quota(0, &[5]), vec![0]);
        assert_eq!(fair_quota(5, &[]), Vec::<usize>::new());
        assert_eq!(fair_quota(7, &[0, 3, 0, 9]), vec![0, 3, 0, 4]);
        assert_eq!(fair_quota(3, &[5, 5, 5, 5]), vec![1, 1, 1, 0]);
    }

    /// The original one-slot-at-a-time water-filling loop, kept
    /// verbatim as the oracle for the bulk closed form.
    fn fair_quota_reference(total: usize, demands: &[usize]) -> Vec<usize> {
        let mut alloc = vec![0usize; demands.len()];
        let mut left = total;
        while left > 0 {
            let mut pick: Option<usize> = None;
            for t in 0..demands.len() {
                if alloc[t] < demands[t] && pick.is_none_or(|p| alloc[t] < alloc[p]) {
                    pick = Some(t);
                }
            }
            match pick {
                Some(t) => {
                    alloc[t] += 1;
                    left -= 1;
                }
                None => break,
            }
        }
        alloc
    }

    proptest! {
        #[test]
        fn fair_quota_matches_the_slot_by_slot_reference(
            total in 0usize..240,
            demands in proptest::collection::vec(0usize..48, 0..12),
        ) {
            prop_assert_eq!(fair_quota(total, &demands), fair_quota_reference(total, &demands));
        }
    }

    #[test]
    fn cached_placement_matches_the_naive_scan_end_to_end() {
        // The engine's cache, pruning, and free-slice early-outs must
        // be invisible: a full run under every policy is bit-identical
        // to one answering each query with the exhaustive scan.
        let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 11).generate();
        for policy in Policy::ALL {
            let fast = Scheduler::new(grid(), policy).run(&jobs);
            let naive = Scheduler::new(grid(), policy).with_naive_placement().run(&jobs);
            assert_eq!(fast.outcomes, naive.outcomes, "policy {}", policy.name());
            assert_eq!(fg_trace::to_jsonl(&fast.trace), fg_trace::to_jsonl(&naive.trace));
            let parallel = Scheduler::new(grid(), policy).with_parallel_scoring().run(&jobs);
            assert_eq!(fast.outcomes, parallel.outcomes, "policy {}", policy.name());
        }
    }

    #[test]
    fn cached_placement_matches_naive_with_every_feature_on() {
        // Preemption's hypothetical slices, migration's repository
        // switch, and quota rejections all route through the engine or
        // mutate the free-slice index; the equivalence must survive
        // them too.
        let mut jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 5).generate();
        for (i, j) in jobs.iter_mut().enumerate() {
            if i % 3 == 0 {
                j.deadline_slack = 1.5 + (i % 5) as f64 * 0.3;
            }
        }
        let build = || {
            Scheduler::new(grid(), Policy::EdfAdmit)
                .with_preemption(2.0)
                .with_migration(MigrationConfig::default())
                .with_quotas(vec![TenantQuota { capacity: 8.0, refill_per_sec: 0.01 }])
                .with_degradation(Degradation { repo: 0, start: 100.0, factor: 0.2 })
        };
        let fast = build().run(&jobs);
        let naive = build().with_naive_placement().run(&jobs);
        assert_eq!(fast.outcomes, naive.outcomes);
        assert_eq!(fg_trace::to_jsonl(&fast.trace), fg_trace::to_jsonl(&naive.trace));
    }

    #[test]
    fn tenants_share_slots_max_min_fairly() {
        // One greedy tenant floods the queue; a second tenant's lone job
        // must not wait behind the entire flood under a backfilling
        // policy with fair shares.
        let mut jobs: Vec<JobSpec> = (0..10).map(|i| job(i, 0, 40_000_000, 0.0)).collect();
        jobs.push(job(10, 1, 10_000_000, 1.0));
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let small = &r.outcomes[10];
        assert!(small.admitted);
        let flood_last_start =
            r.outcomes[..10].iter().filter_map(|o| o.placed_at).fold(0.0f64, f64::max);
        assert!(
            small.placed_at.unwrap() < flood_last_start,
            "tenant 1 should start before the flood fully drains ({} vs {})",
            small.placed_at.unwrap(),
            flood_last_start
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn slowdown_stays_finite_for_zero_duration_jobs() {
        // A degenerate prediction (empty dataset, free compute) must
        // not poison the slowdown histogram with NaN or infinity.
        let mut o = JobOutcome {
            id: 0,
            tenant: 0,
            app: "kmeans".into(),
            arrival: 10.0,
            dataset_bytes: 0,
            admitted: true,
            reject_reason: None,
            standalone: Some(0.0),
            deadline: Some(10.0),
            admission_estimate: Some(10.0),
            placement: None,
            placed_at: Some(10.0),
            predicted: Some(0.0),
            disk_end: Some(10.0),
            network_end: Some(10.0),
            finish: Some(10.0),
            preemptions: Vec::new(),
            migration: None,
        };
        assert_eq!(o.turnaround(), Some(0.0));
        assert!(o.slowdown().unwrap().is_finite());
        assert!(o.completion_error().unwrap().is_finite());
        // Nonzero turnaround over a zero standalone: huge but finite.
        o.finish = Some(15.0);
        assert!(o.slowdown().unwrap().is_finite());
        assert!(o.slowdown().unwrap() > 1.0);
    }

    #[test]
    fn token_bucket_rejects_past_capacity_and_refills() {
        let quotas = vec![TenantQuota { capacity: 1.0, refill_per_sec: 0.5 }];
        let jobs =
            [job(0, 0, 1_000_000, 0.0), job(1, 0, 1_000_000, 1.0), job(2, 0, 1_000_000, 4.0)];
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).with_quotas(quotas).run(&jobs);
        assert!(r.outcomes[0].admitted, "first job spends the initial token");
        assert!(!r.outcomes[1].admitted, "bucket only refilled to 0.5 by t=1");
        assert!(r.outcomes[1].reject_reason.as_deref().unwrap().starts_with("quota"));
        assert!(r.outcomes[2].admitted, "bucket refilled past 1 token by t=4");
        assert_eq!(r.trace.metrics.counter("sched_quota_rejections"), Some(1));
        assert_eq!(r.trace.metrics.counter("sched_quota_violations"), Some(0));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn zero_quota_tenant_starves_without_harming_others() {
        // Tenant 0 has a zero-capacity bucket: every submission is
        // rejected at arrival and never occupies the grid, so tenant
        // 1's outcomes are bit-identical to a run where tenant 0 never
        // submitted at all.
        let quotas = vec![TenantQuota { capacity: 0.0, refill_per_sec: 0.0 }];
        let mut jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 0, 30_000_000, i as f64)).collect();
        jobs.push(job(4, 1, 20_000_000, 0.5));
        jobs.push(job(5, 1, 10_000_000, 2.5));
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).with_quotas(quotas.clone()).run(&jobs);
        for o in &r.outcomes[..4] {
            assert!(!o.admitted);
            assert!(o.reject_reason.as_deref().unwrap().starts_with("quota"));
            assert!(o.placed_at.is_none(), "a quota-rejected job must never occupy the grid");
        }
        let alone = Scheduler::new(grid(), Policy::FcfsBackfill)
            .with_quotas(quotas)
            .run(&[job(4, 1, 20_000_000, 0.5), job(5, 1, 10_000_000, 2.5)]);
        for (a, b) in r.outcomes[4..].iter().zip(alone.outcomes.iter()) {
            assert_eq!(a.finish, b.finish, "starved tenant must not perturb others");
            assert_eq!(a.placed_at, b.placed_at);
        }
        assert_eq!(r.trace.metrics.counter("sched_quota_violations"), Some(0));
    }

    #[test]
    fn degradation_stretches_transfers() {
        let clean = Scheduler::new(grid(), Policy::Fcfs).run(&[job(0, 0, 8_000_000, 0.0)]);
        let degraded = Scheduler::new(grid(), Policy::Fcfs)
            .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.25 })
            .with_degradation(Degradation { repo: 1, start: 0.0, factor: 0.25 })
            .run(&[job(0, 0, 8_000_000, 0.0)]);
        let (cf, df) = (clean.outcomes[0].finish.unwrap(), degraded.outcomes[0].finish.unwrap());
        assert!(df > cf + 1.0, "degraded transfer should finish later: {df} vs {cf}");
        assert!(degraded.violations.is_empty(), "{:?}", degraded.violations);
        degraded.trace.check_well_formed().unwrap();
    }

    #[test]
    fn migration_escapes_a_degraded_repository() {
        // The fast repository's paths collapse to 5% of nominal before
        // the lone job's transfer begins. With migration enabled the
        // job checkpoints and switches to the slow replica; the run
        // beats the stay-put one and records the event.
        let spec = [job(0, 0, 8_000_000, 0.0)];
        let collapse = Degradation { repo: 0, start: 0.0, factor: 0.05 };
        let stay = Scheduler::new(grid(), Policy::Fcfs).with_degradation(collapse).run(&spec);
        let moved = Scheduler::new(grid(), Policy::Fcfs)
            .with_degradation(collapse)
            .with_migration(MigrationConfig::default())
            .run(&spec);
        let m = moved.outcomes[0].migration.as_ref().expect("collapse should trigger migration");
        assert_eq!(m.from_repo, "repo-a");
        assert_eq!(m.to_repo, "repo-b");
        assert!(m.until > m.at);
        let (sf, mf) = (stay.outcomes[0].finish.unwrap(), moved.outcomes[0].finish.unwrap());
        assert!(mf < sf, "migrating should beat staying put: {mf} vs {sf}");
        assert_eq!(moved.trace.metrics.counter("sched_migrations"), Some(1));
        assert_eq!(moved.trace.metrics.counter("sched_checkpoints"), Some(1));
        assert!(moved.violations.is_empty(), "{:?}", moved.violations);
        moved.trace.check_well_formed().unwrap();
        // The trace records the checkpoint marker and the switch window.
        let kinds: Vec<SpanKind> = moved.trace.spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::Checkpoint));
        assert!(kinds.contains(&SpanKind::Migrate));
    }

    #[test]
    fn stable_bandwidth_never_migrates() {
        // Hysteresis: an uncontended transfer achieves its predicted
        // rate exactly, so the deviation trigger must never fire.
        let jobs = [job(0, 0, 8_000_000, 0.0), job(1, 1, 4_000_000, 200.0)];
        let r = Scheduler::new(grid(), Policy::Fcfs)
            .with_migration(MigrationConfig::default())
            .run(&jobs);
        assert_eq!(r.trace.metrics.counter("sched_migrations"), Some(0));
        assert!(r.outcomes.iter().all(|o| o.migration.is_none()));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn preemption_lets_a_tight_deadline_jump_the_queue() {
        // A one-slot grid: the long loose-deadline job holds the only
        // node when a tight job arrives. With preemption on, the long
        // job is checkpointed off, the tight one runs, and the victim
        // resumes where it stopped (plus the restore overhead).
        let mut g = grid();
        g.sites.truncate(1);
        g.sites[0].site.max_nodes = 1;
        g.configs = vec![Configuration::new(1, 1)];
        let mut tight = job(1, 1, 1_000_000, 10.0);
        tight.deadline_slack = 1.5;
        let jobs = [job(0, 0, 20_000_000, 0.0), tight];
        let base = Scheduler::new(g.clone(), Policy::Fcfs).run(&jobs);
        let r = Scheduler::new(g, Policy::Fcfs).with_preemption(5.0).run(&jobs);
        let victim = &r.outcomes[0];
        assert_eq!(victim.preemptions.len(), 1, "long job should be preempted once");
        let p = &victim.preemptions[0];
        assert_eq!(p.preempted_at, 10.0);
        let resumed = p.resumed_at.expect("victim resumes after the tight job");
        assert!(resumed > 10.0);
        assert!(
            r.outcomes[1].finish.unwrap() < base.outcomes[1].finish.unwrap(),
            "the tight job should finish earlier than without preemption"
        );
        assert!(
            victim.finish.unwrap() > base.outcomes[0].finish.unwrap(),
            "the victim pays for being preempted"
        );
        assert!(r.outcomes[1].met_deadline().unwrap());
        assert_eq!(r.trace.metrics.counter("sched_preemptions"), Some(1));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        r.trace.check_well_formed().unwrap();
        let kinds: Vec<SpanKind> = r.trace.spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::Preempted));
        assert!(kinds.contains(&SpanKind::Checkpoint));
    }

    #[test]
    fn default_configuration_is_unchanged_by_the_new_features() {
        // The extended scheduler with everything off must reproduce the
        // plain scheduler bit-for-bit, counters included.
        let jobs = WorkloadSpec::preset(LoadLevel::Medium, &["kmeans"], 7).generate();
        let a = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
        let b = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.trace.metrics.counter("sched_quota_rejections"), None);
        assert_eq!(a.trace.metrics.counter("sched_migrations"), None);
        assert_eq!(a.trace.metrics.counter("sched_preemptions"), None);
        assert_eq!(a.trace.metrics.gauge("workload_burst_depth_max"), None);
        assert!(a.outcomes.iter().all(|o| o.preemptions.is_empty() && o.migration.is_none()));
    }

    #[test]
    fn workload_metrics_describe_the_input_without_changing_the_run() {
        use crate::replay::stats_of;
        use crate::workload::WorkloadShape;
        let jobs = WorkloadSpec::shaped(WorkloadShape::Bursty, LoadLevel::Medium, &["kmeans"], 7)
            .generate();
        let plain = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).with_workload_metrics().run(&jobs);
        // The instruments are descriptive: scheduling is untouched.
        assert_eq!(plain.outcomes, r.outcomes);
        let m = &r.trace.metrics;
        let stats = stats_of(&jobs);
        assert_eq!(m.gauge("workload_burst_depth_max"), Some(stats.burst_depth_max as f64));
        assert_eq!(m.gauge("workload_tail_mass_top1"), Some(stats.tail_mass_top1));
        assert_eq!(m.gauge("workload_p99_dataset_mb"), Some(stats.p99_bytes as f64 / 1e6));
        assert_eq!(m.gauge("workload_mean_gap_secs"), Some(stats.mean_gap));
        let h = m.histogram("workload_dataset_mb").expect("size histogram");
        assert_eq!(h.count(), jobs.len() as u64);
    }
}
