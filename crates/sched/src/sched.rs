//! The sim-clock scheduling core.
//!
//! A fluid event loop on a seconds clock: job arrivals, phase
//! transitions, and completions are the only events. Placement ranks
//! every (repository, site, configuration) triple that fits the free
//! node slices with `fg-predict`'s fallible ranking — a misconfigured
//! candidate is skipped, never fatal. Each placed job runs the paper's
//! three phases in sequence, as the additive model describes them:
//!
//! * **disk** — a fixed interval of the predicted `t_d`;
//! * **network** — a fluid demand of the dataset's bytes at rate cap
//!   `s / t_n` (so an uncontended transfer takes exactly the predicted
//!   `t_n`), routed through a max-min fair share
//!   ([`FairShareSim::instantaneous_rates`]) of the repository uplink
//!   and site ingress capacities — concurrent transfers stretch;
//! * **compute** — a fixed interval of the predicted `t_c`.
//!
//! Every completed transfer's achieved per-stream bandwidth feeds a
//! per-repository EWMA estimator (`fg-predict::bandwidth`), and all
//! later placements and admission estimates substitute the estimate for
//! that repository's nominal bandwidth — the load-correction feedback
//! loop.
//!
//! Compute slots are shared max-min fairly *across tenants*: a
//! scheduling pass first serves jobs whose tenant sits under its
//! water-filled slot quota, and only backfilling policies may then
//! start jobs beyond quota (and only when no under-quota start is
//! possible, so fairness never costs work conservation). Violations of
//! either property are recorded on the result rather than silently
//! dropped.

use crate::core::{SchedCore, TIME_EPS};
use crate::grid::GridSpec;
use crate::policy::Policy;
use crate::telemetry::{TelemetryConfig, TelemetryReport};
use crate::workload::JobSpec;
use fg_predict::{AnalyticalPredictor, Predictor};
use fg_trace::Trace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A per-tenant token-bucket admission quota: each submission spends one
/// token; the bucket refills continuously up to `capacity`. A tenant
/// with no tokens left has its jobs rejected at arrival — they never
/// occupy the grid. `capacity == 0` starves the tenant entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantQuota {
    /// Maximum tokens the bucket holds.
    pub capacity: f64,
    /// Tokens regained per second.
    pub refill_per_sec: f64,
}

/// One preemption of a running job: evicted at `preempted_at`, back on
/// the grid at `resumed_at` (`None` if the run ended first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptionEvent {
    /// When the job was checkpointed and evicted.
    pub preempted_at: f64,
    /// When it re-occupied its nodes.
    pub resumed_at: Option<f64>,
}

/// A mid-run replica migration: the job's remaining transfer switched
/// repositories over `[at, until]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// When the checkpoint was taken and the switch began.
    pub at: f64,
    /// When the transfer resumed on the new replica.
    pub until: f64,
    /// Repository the job was fetching from.
    pub from_repo: String,
    /// Repository it fetches from afterwards.
    pub to_repo: String,
}

/// Tuning for mid-run migration (see [`Scheduler::with_migration`]).
/// The thresholds mirror `fg-predict`'s `ReselectionController`
/// hysteresis: a transfer must *achieve* less than `1 - deviation` of
/// its uncontended rate before the cost model even runs, and the move
/// must beat staying by `margin` after paying `T̂_migrate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Relative shortfall of the bytes a transfer actually moved
    /// versus the fluid model's contention-adjusted expectation that
    /// triggers the cost/benefit check. Fair-share stretching from
    /// modeled link contention is part of the expectation, so a run
    /// with stable bandwidth never trips the trigger.
    pub deviation: f64,
    /// Relative improvement the move must clear (hysteresis).
    pub margin: f64,
    /// Checkpoint-and-switch pause charged to the migrating job,
    /// seconds.
    pub overhead_secs: f64,
    /// Ignore transfers younger than this: one fluid step is not a
    /// bandwidth sample.
    pub min_elapsed_secs: f64,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig { deviation: 0.25, margin: 0.10, overhead_secs: 0.5, min_elapsed_secs: 1.0 }
    }
}

/// A sustained WAN degradation injected on one repository's paths from
/// `start` onwards (transfer rate caps scale by `factor`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Repository index in the grid.
    pub repo: usize,
    /// Onset instant, seconds.
    pub start: f64,
    /// Bandwidth multiplier in `(0, 1]`.
    pub factor: f64,
}

/// Where a job ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementInfo {
    /// Repository index in the grid.
    pub repo: usize,
    /// Compute-site index in the grid.
    pub site: usize,
    /// Repository name.
    pub repo_name: String,
    /// Site name.
    pub site_name: String,
    /// Configuration label, `n-c`.
    pub config: String,
    /// Data nodes held for the job's lifetime.
    pub data_nodes: usize,
    /// Compute nodes held for the job's lifetime.
    pub compute_nodes: usize,
}

/// Everything that happened to one submitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Submission id.
    pub id: usize,
    /// Tenant index.
    pub tenant: usize,
    /// Application name.
    pub app: String,
    /// Arrival instant (seconds).
    pub arrival: f64,
    /// Logical dataset size.
    pub dataset_bytes: u64,
    /// False when the job was rejected (admission control, unknown app,
    /// or no feasible placement exists even on an empty grid).
    pub admitted: bool,
    /// Why the job was rejected, when it was.
    pub reject_reason: Option<String>,
    /// Standalone predicted execution time: best placement on an empty
    /// grid at nominal bandwidth. The baseline for slowdown and
    /// deadlines.
    pub standalone: Option<f64>,
    /// Deadline instant: arrival plus slack times standalone.
    pub deadline: Option<f64>,
    /// Predicted completion instant at submission (backlog estimate
    /// plus load-corrected execution prediction).
    pub admission_estimate: Option<f64>,
    /// Where the job ran.
    pub placement: Option<PlacementInfo>,
    /// When the job left the queue and occupied its nodes.
    pub placed_at: Option<f64>,
    /// Predicted execution time of the chosen placement, at placement
    /// time (load-corrected bandwidth).
    pub predicted: Option<f64>,
    /// End of the disk phase.
    pub disk_end: Option<f64>,
    /// End of the (possibly stretched) network phase.
    pub network_end: Option<f64>,
    /// Completion instant.
    pub finish: Option<f64>,
    /// Times the job was checkpointed off the grid for a
    /// tighter-deadline arrival (empty unless preemption is enabled).
    pub preemptions: Vec<PreemptionEvent>,
    /// The mid-run replica migration, when one happened.
    pub migration: Option<MigrationEvent>,
}

impl JobOutcome {
    /// Queue wait: placement minus arrival.
    pub fn wait(&self) -> Option<f64> {
        Some(self.placed_at? - self.arrival)
    }

    /// Turnaround: completion minus arrival.
    pub fn turnaround(&self) -> Option<f64> {
        Some(self.finish? - self.arrival)
    }

    /// Slowdown: turnaround over the standalone prediction (`>= 1` up
    /// to prediction error; 1 means "as if alone on an idle grid").
    /// A degenerate zero-duration standalone (empty dataset, free
    /// compute) is clamped so the ratio stays finite.
    pub fn slowdown(&self) -> Option<f64> {
        Some(self.turnaround()? / self.standalone?.max(TIME_EPS))
    }

    /// Did the job complete by its deadline?
    pub fn met_deadline(&self) -> Option<bool> {
        Some(self.finish? <= self.deadline? + TIME_EPS)
    }

    /// Relative error of the submission-time completion estimate,
    /// normalized by the achieved turnaround.
    pub fn completion_error(&self) -> Option<f64> {
        let turnaround = self.turnaround()?;
        Some((self.finish? - self.admission_estimate?).abs() / turnaround.max(TIME_EPS))
    }
}

/// A scheduler run's full result.
#[derive(Debug)]
pub struct SchedResult {
    /// One outcome per submitted job, in submission-id order.
    pub outcomes: Vec<JobOutcome>,
    /// The span tree (one `Job` span per job, phase children) plus the
    /// metrics snapshot (queue depth, admission counters, wait and
    /// slowdown histograms).
    pub trace: Trace,
    /// Last completion instant (0 for an empty workload).
    pub makespan: f64,
    /// Fairness or work-conservation invariant violations detected
    /// during the run (empty on a healthy run).
    pub violations: Vec<String>,
    /// The telemetry plane at drain time — SLO gauges, drift
    /// statistics, and the full accuracy ledger. `None` unless the run
    /// was armed with [`Scheduler::with_telemetry`].
    pub telemetry: Option<TelemetryReport>,
}

/// The multi-tenant scheduler: a grid, a policy, and an EWMA smoothing
/// factor for the bandwidth feedback loop. Preemption, mid-run
/// migration, token-bucket quotas, and bandwidth-degradation injection
/// are all off unless enabled through the builder methods, and a
/// default-configured scheduler behaves bit-identically to earlier
/// releases.
#[derive(Clone)]
pub struct Scheduler {
    pub(crate) grid: GridSpec,
    pub(crate) policy: Policy,
    pub(crate) ewma_alpha: f64,
    pub(crate) quotas: Option<Vec<TenantQuota>>,
    pub(crate) preemption: Option<f64>,
    pub(crate) migration: Option<MigrationConfig>,
    pub(crate) degradations: Vec<Degradation>,
    pub(crate) parallel_scoring: bool,
    pub(crate) naive_placement: bool,
    pub(crate) workload_metrics: bool,
    pub(crate) telemetry: Option<TelemetryConfig>,
    pub(crate) predictor: Arc<dyn Predictor>,
}

impl Scheduler {
    /// A scheduler over `grid` applying `policy`, with the default
    /// EWMA smoothing factor of 0.3 for observed bandwidths.
    pub fn new(grid: GridSpec, policy: Policy) -> Scheduler {
        Scheduler {
            grid,
            policy,
            ewma_alpha: 0.3,
            quotas: None,
            preemption: None,
            migration: None,
            degradations: Vec::new(),
            parallel_scoring: false,
            naive_placement: false,
            workload_metrics: false,
            telemetry: None,
            predictor: Arc::new(AnalyticalPredictor),
        }
    }

    /// Price every placement, admission estimate, and migration
    /// check through `predictor` instead of the default
    /// [`AnalyticalPredictor`]. The predictor is shared (`Arc`) between
    /// the decision core and its snapshots; stateful predictors receive
    /// a completion [`Observation`](fg_predict::Observation) for every
    /// clean completion (no preemption, no migration, feedback not
    /// suppressed) when they opt in via
    /// [`Predictor::wants_observations`]. The default predictor keeps
    /// a default-configured run bit-identical to earlier releases.
    pub fn with_predictor(mut self, predictor: Arc<dyn Predictor>) -> Scheduler {
        self.predictor = predictor;
        self
    }

    /// The predictor placements are priced through.
    pub fn predictor(&self) -> &Arc<dyn Predictor> {
        &self.predictor
    }

    /// Rebuild stale placement rankings through rayon's parallel
    /// iterators. The reduce installs results in repository-index
    /// order, so the run stays bit-identical to the sequential one.
    pub fn with_parallel_scoring(mut self) -> Scheduler {
        self.parallel_scoring = true;
        self
    }

    /// Replace the cached placement engine with the naive exhaustive
    /// scan — the differential-testing oracle. Slow; test use only.
    #[doc(hidden)]
    pub fn with_naive_placement(mut self) -> Scheduler {
        self.naive_placement = true;
        self
    }

    /// Override the bandwidth-feedback smoothing factor.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Scheduler {
        assert!(alpha > 0.0 && alpha <= 1.0);
        self.ewma_alpha = alpha;
        self
    }

    /// Cap each tenant's submission rate with a token bucket, indexed
    /// by tenant id (tenants past the end are unlimited). A job whose
    /// bucket is empty is rejected at arrival with a `quota:` reason
    /// and never occupies the grid.
    pub fn with_quotas(mut self, quotas: Vec<TenantQuota>) -> Scheduler {
        for q in &quotas {
            assert!(q.capacity >= 0.0 && q.refill_per_sec >= 0.0, "quota terms must be >= 0");
        }
        self.quotas = Some(quotas);
        self
    }

    /// Allow a queued job with a tighter deadline to checkpoint a
    /// running job with a looser one off its nodes. The victim resumes
    /// where it stopped once nodes free up, paying `overhead_secs` to
    /// restore its reduction-object checkpoint.
    pub fn with_preemption(mut self, overhead_secs: f64) -> Scheduler {
        assert!(overhead_secs >= 0.0, "preemption overhead must be >= 0");
        self.preemption = Some(overhead_secs);
        self
    }

    /// Let running jobs switch repositories mid-transfer when the
    /// achieved bandwidth collapses and `fg-predict`'s migration
    /// cost/benefit model favors the move.
    pub fn with_migration(mut self, config: MigrationConfig) -> Scheduler {
        assert!(
            config.deviation >= 0.0 && config.margin >= 0.0 && config.overhead_secs >= 0.0,
            "migration thresholds must be >= 0"
        );
        self.migration = Some(config);
        self
    }

    /// Inject a sustained WAN degradation on one repository's transfer
    /// paths (for experiments; real degradations come from contention).
    pub fn with_degradation(mut self, degradation: Degradation) -> Scheduler {
        assert!(degradation.repo < self.grid.repos.len(), "degraded repo must exist");
        assert!(
            degradation.factor > 0.0 && degradation.factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        self.degradations.push(degradation);
        self
    }

    /// Record workload-shape instruments in the run's metrics
    /// registry: burst-depth and tail-mass gauges plus a dataset-size
    /// histogram over the submitted stream. Opt-in, like every other
    /// feature instrument, so default-configured runs (and the golden
    /// traces pinned to them) see an unchanged snapshot.
    pub fn with_workload_metrics(mut self) -> Scheduler {
        self.workload_metrics = true;
        self
    }

    /// Arm the live telemetry plane: per-tenant SLO gauges, windowed
    /// queue-wait quantiles, and the predictor-accuracy ledger with
    /// its drift detector. Telemetry is strictly observational — it
    /// never registers metrics in the trace registry and never touches
    /// a scheduling decision, so an armed run stays bit-identical
    /// (outcomes, trace, events) to an unarmed one. The plane comes
    /// back in [`SchedResult::telemetry`], and drift alarms surface as
    /// [`CoreEvent::DriftAlarm`] when the event log is also on.
    ///
    /// [`CoreEvent::DriftAlarm`]: crate::core::CoreEvent::DriftAlarm
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> Scheduler {
        self.telemetry = Some(config);
        self
    }

    /// The telemetry configuration, when armed.
    pub fn telemetry(&self) -> Option<&TelemetryConfig> {
        self.telemetry.as_ref()
    }

    /// The policy this scheduler applies.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The grid this scheduler places jobs onto.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Run the event loop over a job stream (need not be sorted) and
    /// return outcomes, trace, and invariant report. Deterministic: the
    /// same grid, policy, and jobs produce a bit-identical result.
    ///
    /// This is now a thin wrapper over the extracted decision core:
    /// load every job into a fresh [`SchedCore`] exactly as the old
    /// batch loop indexed them, then drain. A job stream fed through
    /// [`SchedCore::submit`] one arrival at a time produces the same
    /// bit-identical result — arrivals bound the fluid integration
    /// horizon in both drivers, so neither ever splits a step the
    /// other took whole.
    pub fn run(&self, jobs: &[JobSpec]) -> SchedResult {
        let mut core = SchedCore::new(self.clone());
        core.submit_all(jobs);
        core.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::AppModel;
    use crate::workload::{LoadLevel, WorkloadSpec};
    use fg_cluster::Configuration;
    use fg_predict::{AppClasses, Profile};
    use fg_trace::SpanKind;

    fn model() -> AppModel {
        AppModel {
            profile: Profile {
                app: "kmeans".into(),
                data_nodes: 1,
                compute_nodes: 1,
                wan_bw: 1e6,
                dataset_bytes: 1_000_000,
                t_disk: 40.0,
                t_network: 20.0,
                t_compute: 100.0,
                t_ro: 0.0,
                t_g: 0.5,
                max_obj_bytes: 512,
                passes: 1,
                repo_machine: "pentium-700".into(),
                compute_machine: "pentium-700".into(),
            },
            classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
        }
    }

    fn grid() -> GridSpec {
        GridSpec::demo(vec![("kmeans".into(), model())])
    }

    fn job(id: usize, tenant: usize, bytes: u64, arrival: f64) -> JobSpec {
        JobSpec {
            id,
            tenant,
            app: "kmeans".into(),
            dataset_bytes: bytes,
            arrival,
            deadline_slack: 3.0,
        }
    }

    #[test]
    fn empty_workload_is_a_noop() {
        let r = Scheduler::new(grid(), Policy::Fcfs).run(&[]);
        assert!(r.outcomes.is_empty());
        assert_eq!(r.makespan, 0.0);
        assert!(r.violations.is_empty());
        assert_eq!(r.trace.metrics.counter("sched_jobs_submitted"), Some(0));
        r.trace.check_well_formed().unwrap();
    }

    #[test]
    fn a_lone_job_matches_its_prediction_exactly() {
        let r = Scheduler::new(grid(), Policy::Fcfs).run(&[job(0, 0, 2_000_000, 5.0)]);
        let o = &r.outcomes[0];
        assert!(o.admitted);
        assert_eq!(o.placed_at, Some(5.0));
        let predicted = o.predicted.unwrap();
        let finish = o.finish.unwrap();
        // Uncontended: the capacitated links never bind, so the fluid
        // network phase reproduces the predicted transfer time and the
        // job completes at placement + prediction.
        assert!(
            (finish - (5.0 + predicted)).abs() < 1e-6 * predicted,
            "finish {finish} vs predicted end {}",
            5.0 + predicted
        );
        assert_eq!(o.slowdown().map(|s| (s * 1e9).round() / 1e9), Some(1.0));
        assert!(r.violations.is_empty());
        r.trace.check_well_formed().unwrap();
    }

    #[test]
    fn overlapping_transfers_stretch_each_other() {
        // Two identical large jobs arriving together: both get placed
        // (plenty of nodes) and their network phases overlap on the
        // shared links, so at least one must finish later than its
        // uncontended prediction.
        let jobs = [job(0, 0, 60_000_000, 0.0), job(1, 1, 60_000_000, 0.0)];
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let lone = Scheduler::new(grid(), Policy::FcfsBackfill).run(&[job(0, 0, 60_000_000, 0.0)]);
        let lone_finish = lone.outcomes[0].finish.unwrap();
        let worst = r.outcomes.iter().map(|o| o.finish.unwrap()).fold(0.0f64, f64::max);
        assert!(
            worst > lone_finish + 1.0,
            "contention should stretch someone: worst {worst}, lone {lone_finish}"
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn contention_feeds_the_bandwidth_estimators() {
        // Two contended transfers stretch, degrading the repository's
        // bandwidth estimate. A third job arriving on an *idle* grid
        // afterwards is placed with a load-corrected prediction that is
        // strictly worse than the nominal standalone one — the feedback
        // loop, not queue backlog, accounts for the difference.
        let jobs = [
            job(0, 0, 60_000_000, 0.0),
            job(1, 1, 60_000_000, 0.0),
            job(2, 2, 20_000_000, 5_000.0),
        ];
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let pair_done = r.outcomes[0].finish.unwrap().max(r.outcomes[1].finish.unwrap());
        assert!(pair_done < 5_000.0, "late job must find an idle grid ({pair_done})");
        let o = &r.outcomes[2];
        assert!(o.admitted);
        assert_eq!(o.placed_at, Some(5_000.0));
        assert!(
            o.predicted.unwrap() > o.standalone.unwrap() + 1e-9,
            "corrected prediction {:?} should exceed nominal standalone {:?}",
            o.predicted,
            o.standalone
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 11).generate();
        for policy in Policy::ALL {
            let a = Scheduler::new(grid(), policy).run(&jobs);
            let b = Scheduler::new(grid(), policy).run(&jobs);
            assert_eq!(a.outcomes, b.outcomes, "policy {}", policy.name());
            assert_eq!(fg_trace::to_jsonl(&a.trace), fg_trace::to_jsonl(&b.trace));
        }
    }

    #[test]
    fn every_policy_preserves_the_invariants_under_load() {
        let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 3).generate();
        for policy in Policy::ALL {
            let r = Scheduler::new(grid(), policy).run(&jobs);
            assert!(r.violations.is_empty(), "{}: {:?}", policy.name(), r.violations);
            r.trace.check_well_formed().unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert_eq!(r.outcomes.len(), jobs.len());
            for o in &r.outcomes {
                if o.admitted {
                    let finish = o.finish.expect("admitted jobs complete");
                    assert!(finish >= o.arrival);
                    assert!(o.placed_at.unwrap() >= o.arrival - 1e-9);
                } else {
                    assert!(o.reject_reason.is_some());
                    assert!(o.finish.is_none());
                }
            }
        }
    }

    #[test]
    fn admission_control_rejects_hopeless_jobs() {
        // Saturate the grid, then submit a job with a tight deadline:
        // EDF admission must turn it away while FCFS would queue it.
        let mut jobs: Vec<JobSpec> = (0..12).map(|i| job(i, i % 3, 80_000_000, 0.0)).collect();
        let mut tight = job(12, 0, 80_000_000, 1.0);
        tight.deadline_slack = 1.01;
        jobs.push(tight);
        let edf = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
        let o = &edf.outcomes[12];
        assert!(!o.admitted, "tight job should be rejected: {:?}", o.reject_reason);
        assert!(o.reject_reason.as_deref().unwrap().starts_with("admission"));
        let fcfs = Scheduler::new(grid(), Policy::Fcfs).run(&jobs);
        assert!(fcfs.outcomes[12].admitted);
        assert_eq!(edf.trace.metrics.counter("sched_jobs_rejected"), Some(1));
    }

    #[test]
    fn unknown_apps_are_rejected_not_fatal() {
        let mut j = job(0, 0, 1_000_000, 0.0);
        j.app = "mystery".into();
        let r = Scheduler::new(grid(), Policy::Fcfs).run(&[j]);
        assert!(!r.outcomes[0].admitted);
        assert!(r.outcomes[0].reject_reason.as_deref().unwrap().contains("unknown app"));
    }

    #[test]
    fn cached_placement_matches_the_naive_scan_end_to_end() {
        // The engine's cache, pruning, and free-slice early-outs must
        // be invisible: a full run under every policy is bit-identical
        // to one answering each query with the exhaustive scan.
        let jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 11).generate();
        for policy in Policy::ALL {
            let fast = Scheduler::new(grid(), policy).run(&jobs);
            let naive = Scheduler::new(grid(), policy).with_naive_placement().run(&jobs);
            assert_eq!(fast.outcomes, naive.outcomes, "policy {}", policy.name());
            assert_eq!(fg_trace::to_jsonl(&fast.trace), fg_trace::to_jsonl(&naive.trace));
            let parallel = Scheduler::new(grid(), policy).with_parallel_scoring().run(&jobs);
            assert_eq!(fast.outcomes, parallel.outcomes, "policy {}", policy.name());
        }
    }

    #[test]
    fn cached_placement_matches_naive_with_every_feature_on() {
        // Preemption's hypothetical slices, migration's repository
        // switch, and quota rejections all route through the engine or
        // mutate the free-slice index; the equivalence must survive
        // them too.
        let mut jobs = WorkloadSpec::preset(LoadLevel::Heavy, &["kmeans"], 5).generate();
        for (i, j) in jobs.iter_mut().enumerate() {
            if i % 3 == 0 {
                j.deadline_slack = 1.5 + (i % 5) as f64 * 0.3;
            }
        }
        let build = || {
            Scheduler::new(grid(), Policy::EdfAdmit)
                .with_preemption(2.0)
                .with_migration(MigrationConfig::default())
                .with_quotas(vec![TenantQuota { capacity: 8.0, refill_per_sec: 0.01 }])
                .with_degradation(Degradation { repo: 0, start: 100.0, factor: 0.2 })
        };
        let fast = build().run(&jobs);
        let naive = build().with_naive_placement().run(&jobs);
        assert_eq!(fast.outcomes, naive.outcomes);
        assert_eq!(fg_trace::to_jsonl(&fast.trace), fg_trace::to_jsonl(&naive.trace));
    }

    #[test]
    fn tenants_share_slots_max_min_fairly() {
        // One greedy tenant floods the queue; a second tenant's lone job
        // must not wait behind the entire flood under a backfilling
        // policy with fair shares.
        let mut jobs: Vec<JobSpec> = (0..10).map(|i| job(i, 0, 40_000_000, 0.0)).collect();
        jobs.push(job(10, 1, 10_000_000, 1.0));
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let small = &r.outcomes[10];
        assert!(small.admitted);
        let flood_last_start =
            r.outcomes[..10].iter().filter_map(|o| o.placed_at).fold(0.0f64, f64::max);
        assert!(
            small.placed_at.unwrap() < flood_last_start,
            "tenant 1 should start before the flood fully drains ({} vs {})",
            small.placed_at.unwrap(),
            flood_last_start
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn slowdown_stays_finite_for_zero_duration_jobs() {
        // A degenerate prediction (empty dataset, free compute) must
        // not poison the slowdown histogram with NaN or infinity.
        let mut o = JobOutcome {
            id: 0,
            tenant: 0,
            app: "kmeans".into(),
            arrival: 10.0,
            dataset_bytes: 0,
            admitted: true,
            reject_reason: None,
            standalone: Some(0.0),
            deadline: Some(10.0),
            admission_estimate: Some(10.0),
            placement: None,
            placed_at: Some(10.0),
            predicted: Some(0.0),
            disk_end: Some(10.0),
            network_end: Some(10.0),
            finish: Some(10.0),
            preemptions: Vec::new(),
            migration: None,
        };
        assert_eq!(o.turnaround(), Some(0.0));
        assert!(o.slowdown().unwrap().is_finite());
        assert!(o.completion_error().unwrap().is_finite());
        // Nonzero turnaround over a zero standalone: huge but finite.
        o.finish = Some(15.0);
        assert!(o.slowdown().unwrap().is_finite());
        assert!(o.slowdown().unwrap() > 1.0);
    }

    #[test]
    fn token_bucket_rejects_past_capacity_and_refills() {
        let quotas = vec![TenantQuota { capacity: 1.0, refill_per_sec: 0.5 }];
        let jobs =
            [job(0, 0, 1_000_000, 0.0), job(1, 0, 1_000_000, 1.0), job(2, 0, 1_000_000, 4.0)];
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).with_quotas(quotas).run(&jobs);
        assert!(r.outcomes[0].admitted, "first job spends the initial token");
        assert!(!r.outcomes[1].admitted, "bucket only refilled to 0.5 by t=1");
        assert!(r.outcomes[1].reject_reason.as_deref().unwrap().starts_with("quota"));
        assert!(r.outcomes[2].admitted, "bucket refilled past 1 token by t=4");
        assert_eq!(r.trace.metrics.counter("sched_quota_rejections"), Some(1));
        assert_eq!(r.trace.metrics.counter("sched_quota_violations"), Some(0));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn zero_quota_tenant_starves_without_harming_others() {
        // Tenant 0 has a zero-capacity bucket: every submission is
        // rejected at arrival and never occupies the grid, so tenant
        // 1's outcomes are bit-identical to a run where tenant 0 never
        // submitted at all.
        let quotas = vec![TenantQuota { capacity: 0.0, refill_per_sec: 0.0 }];
        let mut jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 0, 30_000_000, i as f64)).collect();
        jobs.push(job(4, 1, 20_000_000, 0.5));
        jobs.push(job(5, 1, 10_000_000, 2.5));
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).with_quotas(quotas.clone()).run(&jobs);
        for o in &r.outcomes[..4] {
            assert!(!o.admitted);
            assert!(o.reject_reason.as_deref().unwrap().starts_with("quota"));
            assert!(o.placed_at.is_none(), "a quota-rejected job must never occupy the grid");
        }
        let alone = Scheduler::new(grid(), Policy::FcfsBackfill)
            .with_quotas(quotas)
            .run(&[job(4, 1, 20_000_000, 0.5), job(5, 1, 10_000_000, 2.5)]);
        for (a, b) in r.outcomes[4..].iter().zip(alone.outcomes.iter()) {
            assert_eq!(a.finish, b.finish, "starved tenant must not perturb others");
            assert_eq!(a.placed_at, b.placed_at);
        }
        assert_eq!(r.trace.metrics.counter("sched_quota_violations"), Some(0));
    }

    #[test]
    fn degradation_stretches_transfers() {
        let clean = Scheduler::new(grid(), Policy::Fcfs).run(&[job(0, 0, 8_000_000, 0.0)]);
        let degraded = Scheduler::new(grid(), Policy::Fcfs)
            .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.25 })
            .with_degradation(Degradation { repo: 1, start: 0.0, factor: 0.25 })
            .run(&[job(0, 0, 8_000_000, 0.0)]);
        let (cf, df) = (clean.outcomes[0].finish.unwrap(), degraded.outcomes[0].finish.unwrap());
        assert!(df > cf + 1.0, "degraded transfer should finish later: {df} vs {cf}");
        assert!(degraded.violations.is_empty(), "{:?}", degraded.violations);
        degraded.trace.check_well_formed().unwrap();
    }

    #[test]
    fn migration_escapes_a_degraded_repository() {
        // The fast repository's paths collapse to 5% of nominal before
        // the lone job's transfer begins. With migration enabled the
        // job checkpoints and switches to the slow replica; the run
        // beats the stay-put one and records the event.
        let spec = [job(0, 0, 8_000_000, 0.0)];
        let collapse = Degradation { repo: 0, start: 0.0, factor: 0.05 };
        let stay = Scheduler::new(grid(), Policy::Fcfs).with_degradation(collapse).run(&spec);
        let moved = Scheduler::new(grid(), Policy::Fcfs)
            .with_degradation(collapse)
            .with_migration(MigrationConfig::default())
            .run(&spec);
        let m = moved.outcomes[0].migration.as_ref().expect("collapse should trigger migration");
        assert_eq!(m.from_repo, "repo-a");
        assert_eq!(m.to_repo, "repo-b");
        assert!(m.until > m.at);
        let (sf, mf) = (stay.outcomes[0].finish.unwrap(), moved.outcomes[0].finish.unwrap());
        assert!(mf < sf, "migrating should beat staying put: {mf} vs {sf}");
        assert_eq!(moved.trace.metrics.counter("sched_migrations"), Some(1));
        assert_eq!(moved.trace.metrics.counter("sched_checkpoints"), Some(1));
        assert!(moved.violations.is_empty(), "{:?}", moved.violations);
        moved.trace.check_well_formed().unwrap();
        // The trace records the checkpoint marker and the switch window.
        let kinds: Vec<SpanKind> = moved.trace.spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::Checkpoint));
        assert!(kinds.contains(&SpanKind::Migrate));
    }

    #[test]
    fn stable_bandwidth_never_migrates() {
        // Hysteresis: an uncontended transfer achieves its predicted
        // rate exactly, so the deviation trigger must never fire.
        let jobs = [job(0, 0, 8_000_000, 0.0), job(1, 1, 4_000_000, 200.0)];
        let r = Scheduler::new(grid(), Policy::Fcfs)
            .with_migration(MigrationConfig::default())
            .run(&jobs);
        assert_eq!(r.trace.metrics.counter("sched_migrations"), Some(0));
        assert!(r.outcomes.iter().all(|o| o.migration.is_none()));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn preemption_lets_a_tight_deadline_jump_the_queue() {
        // A one-slot grid: the long loose-deadline job holds the only
        // node when a tight job arrives. With preemption on, the long
        // job is checkpointed off, the tight one runs, and the victim
        // resumes where it stopped (plus the restore overhead).
        let mut g = grid();
        g.sites.truncate(1);
        g.sites[0].site.max_nodes = 1;
        g.configs = vec![Configuration::new(1, 1)];
        let mut tight = job(1, 1, 1_000_000, 10.0);
        tight.deadline_slack = 1.5;
        let jobs = [job(0, 0, 20_000_000, 0.0), tight];
        let base = Scheduler::new(g.clone(), Policy::Fcfs).run(&jobs);
        let r = Scheduler::new(g, Policy::Fcfs).with_preemption(5.0).run(&jobs);
        let victim = &r.outcomes[0];
        assert_eq!(victim.preemptions.len(), 1, "long job should be preempted once");
        let p = &victim.preemptions[0];
        assert_eq!(p.preempted_at, 10.0);
        let resumed = p.resumed_at.expect("victim resumes after the tight job");
        assert!(resumed > 10.0);
        assert!(
            r.outcomes[1].finish.unwrap() < base.outcomes[1].finish.unwrap(),
            "the tight job should finish earlier than without preemption"
        );
        assert!(
            victim.finish.unwrap() > base.outcomes[0].finish.unwrap(),
            "the victim pays for being preempted"
        );
        assert!(r.outcomes[1].met_deadline().unwrap());
        assert_eq!(r.trace.metrics.counter("sched_preemptions"), Some(1));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        r.trace.check_well_formed().unwrap();
        let kinds: Vec<SpanKind> = r.trace.spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::Preempted));
        assert!(kinds.contains(&SpanKind::Checkpoint));
    }

    #[test]
    fn default_configuration_is_unchanged_by_the_new_features() {
        // The extended scheduler with everything off must reproduce the
        // plain scheduler bit-for-bit, counters included.
        let jobs = WorkloadSpec::preset(LoadLevel::Medium, &["kmeans"], 7).generate();
        let a = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
        let b = Scheduler::new(grid(), Policy::EdfAdmit).run(&jobs);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.trace.metrics.counter("sched_quota_rejections"), None);
        assert_eq!(a.trace.metrics.counter("sched_migrations"), None);
        assert_eq!(a.trace.metrics.counter("sched_preemptions"), None);
        assert_eq!(a.trace.metrics.gauge("workload_burst_depth_max"), None);
        assert!(a.outcomes.iter().all(|o| o.preemptions.is_empty() && o.migration.is_none()));
    }

    #[test]
    fn workload_metrics_describe_the_input_without_changing_the_run() {
        use crate::replay::stats_of;
        use crate::workload::WorkloadShape;
        let jobs = WorkloadSpec::shaped(WorkloadShape::Bursty, LoadLevel::Medium, &["kmeans"], 7)
            .generate();
        let plain = Scheduler::new(grid(), Policy::FcfsBackfill).run(&jobs);
        let r = Scheduler::new(grid(), Policy::FcfsBackfill).with_workload_metrics().run(&jobs);
        // The instruments are descriptive: scheduling is untouched.
        assert_eq!(plain.outcomes, r.outcomes);
        let m = &r.trace.metrics;
        let stats = stats_of(&jobs);
        assert_eq!(m.gauge("workload_burst_depth_max"), Some(stats.burst_depth_max as f64));
        assert_eq!(m.gauge("workload_tail_mass_top1"), Some(stats.tail_mass_top1));
        assert_eq!(m.gauge("workload_p99_dataset_mb"), Some(stats.p99_bytes as f64 / 1e6));
        assert_eq!(m.gauge("workload_mean_gap_secs"), Some(stats.mean_gap));
        let h = m.histogram("workload_dataset_mb").expect("size histogram");
        assert_eq!(h.count(), jobs.len() as u64);
    }
}
