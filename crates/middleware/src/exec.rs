//! The executor: drives an application over a deployment, pass by pass,
//! optionally under an injected fault schedule.
//!
//! # Fault model
//!
//! [`Executor::run_with_faults`] threads an [`fg_sim::FaultSchedule`]
//! through the phase structure:
//!
//! * **Data-node crashes** are detected during remote retrieval: fetches
//!   against a dead node time out per the [`RetryPolicy`], the detection
//!   delay is charged once per detection round (`fault_detection`), and
//!   the dead node's chunks are rebalanced contiguously over the
//!   surviving replica holders for this and later remote passes.
//! * **WAN degradation windows** scale the per-stream (and aggregate)
//!   bandwidth of the origin transfer by the window factor in force when
//!   the transfer starts.
//! * **Straggler compute nodes** stretch their local-reduction time by
//!   their slowdown factor. When a straggler's projected time exceeds
//!   [`FaultOptions::straggler_threshold`] times the slowest healthy
//!   node, the middleware completes in degraded mode: the master
//!   re-executes the straggler's chunks at spec speed after the healthy
//!   makespan (`straggler_recovery`). Object contents are unchanged, so
//!   the final reduction state equals the fault-free state.
//! * A [`PassController`] observes each pass and may **migrate** the run
//!   to a different replica (same compute site and node count); the
//!   switch costs [`FaultOptions::migration_overhead`] and redirects all
//!   later remote fetches.
//!
//! Chunk-to-compute-node assignment never changes under faults — only
//! the fetch side does — so every chunk is folded on the same node in
//! the same order as the fault-free run and the final state is
//! bit-identical by construction. With an empty schedule and no
//! controller, every fault branch is skipped and the report itself is
//! bit-identical to [`Executor::run`].

use crate::api::{PassOutcome, ReductionApp, ReductionObject};
use crate::checkpoint::{Checkpoint, ResumableOutcome, StopPoint};
use crate::comm::{self, TransferFlow};
use crate::computeserver::{self, CacheTraffic};
use crate::dataserver::{self, RetryPolicy};
use crate::meter::WorkMeter;
use crate::report::{CacheMode, ExecutionReport, PassReport};
use fg_chunks::{distribution, partition, Dataset};
use fg_cluster::Deployment;
use fg_sim::{FaultSchedule, SimDuration, SimTime};
use fg_trace::{NodeRef, SpanKind, Trace, Tracer};

/// Outcome of a full execution: the measured report plus the
/// application's final state.
pub struct RunResult<S> {
    /// Measured time breakdown.
    pub report: ExecutionReport,
    /// The application's final state (clusters found, features detected,
    /// ...).
    pub final_state: S,
}

/// Recovery tuning for fault-injected runs.
#[derive(Debug, Clone)]
pub struct FaultOptions {
    /// Per-chunk fetch timeout and retry policy (crash detection).
    pub retry: RetryPolicy,
    /// A straggler whose projected local-reduction time exceeds this
    /// multiple of the slowest healthy node is abandoned and its chunks
    /// re-executed at the master (`>= 1`).
    pub straggler_threshold: f64,
    /// Virtual-time cost of switching to a different replica.
    pub migration_overhead: SimDuration,
}

impl Default for FaultOptions {
    fn default() -> FaultOptions {
        FaultOptions {
            retry: RetryPolicy::default(),
            straggler_threshold: 3.0,
            migration_overhead: SimDuration::from_millis(500),
        }
    }
}

/// What a [`PassController`] sees after each pass.
#[derive(Debug, Clone)]
pub struct PassObservation {
    /// Index of the pass that just completed.
    pub pass_idx: usize,
    /// Virtual time when the pass's phases completed (before any
    /// migration overhead).
    pub elapsed: SimTime,
    /// Whether this pass fetched chunks over the WAN.
    pub remote: bool,
    /// Effective per-stream WAN bandwidth observed this pass
    /// (bytes/sec); `None` on cached passes, which see no WAN traffic.
    pub observed_wan_bw: Option<f64>,
    /// Whether the application finished on this pass.
    pub finished: bool,
}

/// A controller's verdict after observing a pass.
#[derive(Debug, Clone)]
pub enum PassAction {
    /// Keep the current replica.
    Continue,
    /// Switch subsequent remote fetches to this deployment (its compute
    /// site and node count must match the running one). Boxed: the rare
    /// migration verdict should not size every `Continue`.
    Migrate(Box<Deployment>),
}

/// Observes each pass of a fault-injected run and may migrate it to a
/// different replica — the hook `fg-predict` uses for mid-run
/// re-selection.
pub trait PassController {
    /// Called after every pass, including the last (where a migration
    /// request is ignored).
    fn after_pass(&mut self, obs: &PassObservation, current: &Deployment) -> PassAction;
}

/// The remote-fetch side of a pass: what each data node serves and the
/// resulting per-(data node, compute node) flows.
struct FetchPlan {
    dn_bytes: Vec<u64>,
    dn_chunks: Vec<usize>,
    flows: Vec<TransferFlow>,
}

/// Assign every chunk a serving data node (contiguous over the `n - dead`
/// survivors), honoring the fixed chunk-to-compute-node map `dest`.
fn fetch_plan(dataset: &Dataset, n: usize, dest: &[usize], dead: &[usize]) -> FetchPlan {
    fetch_plan_range(dataset, n, dest, dead, 0, dataset.num_chunks())
}

/// [`fetch_plan`] restricted to the chunks with global id in `[lo, hi)`:
/// the placement still spans the whole dataset (chunk-to-data-node
/// assignment is static), but only the segment's chunks contribute
/// bytes and flows. Resumable runs fetch each pass in such segments.
fn fetch_plan_range(
    dataset: &Dataset,
    n: usize,
    dest: &[usize],
    dead: &[usize],
    lo: usize,
    hi: usize,
) -> FetchPlan {
    let alive: Vec<usize> = (0..n).filter(|i| !dead.contains(i)).collect();
    assert!(
        !alive.is_empty(),
        "every data node of the serving replica has crashed; no survivor holds the data"
    );
    let placement = partition::contiguous(dataset.num_chunks(), alive.len());
    let mut dn_bytes = vec![0u64; n];
    let mut dn_chunks = vec![0usize; n];
    let mut flow_map = std::collections::BTreeMap::<(usize, usize), (u64, usize)>::new();
    for (ai, chunks) in placement.iter().enumerate() {
        let dn = alive[ai];
        for &k in chunks {
            if k < lo || k >= hi {
                continue;
            }
            dn_bytes[dn] += dataset.chunks[k].logical_bytes;
            dn_chunks[dn] += 1;
            let entry = flow_map.entry((dn, dest[k])).or_insert((0, 0));
            entry.0 += dataset.chunks[k].logical_bytes;
            entry.1 += 1;
        }
    }
    let flows: Vec<TransferFlow> = flow_map
        .into_iter()
        .map(|((dn, cn), (bytes, chunks))| TransferFlow {
            data_node: dn,
            compute_node: cn,
            bytes,
            chunks,
        })
        .collect();
    FetchPlan { dn_bytes, dn_chunks, flows }
}

/// The compute phase's shape under stragglers: the makespan, the
/// degraded-mode recovery time, and the per-node breakdown behind them
/// (for trace attribution).
struct StragglerPlan {
    /// Local-reduction makespan across the nodes that complete in-phase.
    makespan: SimDuration,
    /// Master re-execution time of the abandoned nodes' chunks.
    recovery: SimDuration,
    /// Each node's effective (slowdown-stretched) in-phase time; `None`
    /// for abandoned nodes, which do not contribute to the makespan.
    node_times: Vec<Option<SimDuration>>,
    /// Abandoned nodes with their spec-speed re-execution times, in
    /// node order (the master runs them serially in this order).
    abandoned: Vec<(usize, SimDuration)>,
}

/// Local-reduction makespan under stragglers, plus the degraded-mode
/// recovery time. A straggler whose stretched time would exceed
/// `threshold` times the slowest healthy node is abandoned; the master
/// re-executes its chunks at spec speed after the healthy nodes finish
/// (serially, one abandoned node after another). If every node
/// straggles there is no healthy baseline and nothing is abandoned.
fn straggler_plan(base: &[SimDuration], schedule: &FaultSchedule, threshold: f64) -> StragglerPlan {
    let slow: Vec<f64> = (0..base.len()).map(|i| schedule.slowdown(i)).collect();
    let healthy_max = base.iter().zip(&slow).filter(|&(_, &s)| s == 1.0).map(|(t, _)| *t).max();
    match healthy_max {
        None => {
            let node_times: Vec<Option<SimDuration>> =
                base.iter().zip(&slow).map(|(t, &s)| Some(t.mul_f64(s))).collect();
            StragglerPlan {
                makespan: node_times.iter().flatten().copied().max().unwrap_or(SimDuration::ZERO),
                recovery: SimDuration::ZERO,
                node_times,
                abandoned: Vec::new(),
            }
        }
        Some(hmax) => {
            let deadline = hmax.mul_f64(threshold);
            let mut makespan = SimDuration::ZERO;
            let mut recovery = SimDuration::ZERO;
            let mut node_times = Vec::with_capacity(base.len());
            let mut abandoned = Vec::new();
            for (i, (t, &s)) in base.iter().zip(&slow).enumerate() {
                let scaled = if s == 1.0 { *t } else { t.mul_f64(s) };
                if s > 1.0 && !hmax.is_zero() && scaled > deadline {
                    recovery += *t;
                    node_times.push(None);
                    abandoned.push((i, *t));
                } else {
                    makespan = makespan.max(scaled);
                    node_times.push(Some(scaled));
                }
            }
            StragglerPlan { makespan, recovery, node_times, abandoned }
        }
    }
}

/// Executes FREERIDE-G applications on a deployment.
pub struct Executor {
    deployment: Deployment,
}

impl Executor {
    /// An executor for the given deployment.
    pub fn new(deployment: Deployment) -> Executor {
        Executor { deployment }
    }

    /// The deployment this executor runs on.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Run `app` over `dataset` to completion.
    ///
    /// The dataset must have at least as many chunks as there are data
    /// nodes, so every data node holds data (a configuration that leaves
    /// repository nodes empty is a resource-selection bug, not a
    /// middleware condition).
    pub fn run<A: ReductionApp>(&self, app: &A, dataset: &Dataset) -> RunResult<A::State> {
        self.run_with_faults(app, dataset, &FaultSchedule::none(), &FaultOptions::default(), None)
    }

    /// [`Executor::run`], additionally recording a structured trace of
    /// where the virtual time went. The report is bit-identical to the
    /// untraced run's; the trace's component sums reproduce it exactly.
    pub fn run_traced<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
    ) -> (RunResult<A::State>, Trace) {
        self.run_with_faults_traced(
            app,
            dataset,
            &FaultSchedule::none(),
            &FaultOptions::default(),
            None,
        )
    }

    /// Run `app` over `dataset` under an injected fault `schedule`,
    /// recovering per `options`, with an optional mid-run re-selection
    /// `controller` (see the module docs for the fault model).
    ///
    /// With an empty schedule and no controller this is exactly
    /// [`Executor::run`]: same report, bit for bit, same final state.
    pub fn run_with_faults<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
        controller: Option<&mut dyn PassController>,
    ) -> RunResult<A::State> {
        self.run_inner(app, dataset, schedule, options, controller, None)
    }

    /// [`Executor::run_with_faults`] with trace capture; see
    /// [`Executor::run_traced`].
    pub fn run_with_faults_traced<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
        controller: Option<&mut dyn PassController>,
    ) -> (RunResult<A::State>, Trace) {
        let mut tracer = Tracer::new();
        let result = self.run_inner(app, dataset, schedule, options, controller, Some(&mut tracer));
        let meta = result.report.run_meta();
        (result, tracer.finish(Some(meta)))
    }

    /// Run `app` until `stop` is reached, suspending into a
    /// [`Checkpoint`] there — or to completion if the application
    /// finishes first.
    ///
    /// The stop point is a chunk boundary: chunks with global id below
    /// `stop.cursor` are folded in pass `stop.pass` before the snapshot
    /// is taken. Resuming the checkpoint (on this or another replica of
    /// the same dataset, via [`Executor::resume_from`]) yields a final
    /// state bit-identical to the uninterrupted
    /// [`Executor::run_with_faults`]: the chunk-to-compute-node map, the
    /// per-core fold interleave, and every merge order are preserved
    /// across the split.
    ///
    /// Checkpointed runs do not support non-local cache sites.
    pub fn run_resumable<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
        stop: StopPoint,
    ) -> ResumableOutcome<A::State, A::Obj> {
        assert!(
            stop.cursor <= dataset.num_chunks(),
            "stop cursor {} exceeds the dataset's {} chunks",
            stop.cursor,
            dataset.num_chunks()
        );
        self.run_segmented(app, dataset, schedule, options, None, Some(stop))
    }

    /// Continue a suspended run from its [`Checkpoint`] to completion.
    ///
    /// The executor's deployment may serve a *different replica* of the
    /// same dataset — that is a migration, charged
    /// [`FaultOptions::migration_overhead`] in the resumed pass — but
    /// the compute site and node count must match the checkpoint's.
    pub fn resume_from<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
        checkpoint: Checkpoint<A::State, A::Obj>,
        schedule: &FaultSchedule,
        options: &FaultOptions,
    ) -> RunResult<A::State> {
        match self.run_segmented(app, dataset, schedule, options, Some(checkpoint), None) {
            ResumableOutcome::Finished(result) => result,
            ResumableOutcome::Suspended(_) => unreachable!("resume has no stop point"),
        }
    }

    /// The segmented pass loop behind [`Executor::run_resumable`] and
    /// [`Executor::resume_from`]: each pass runs as one or two chunk
    /// segments (`[0, cursor)` then `[cursor, num_chunks)` around a
    /// split), with per-core partial objects carried across the split so
    /// fold and merge orders match the unsplit run exactly.
    fn run_segmented<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
        start: Option<Checkpoint<A::State, A::Obj>>,
        stop: Option<StopPoint>,
    ) -> ResumableOutcome<A::State, A::Obj> {
        let d = &self.deployment;
        let n = d.config.data_nodes;
        let c = d.config.compute_nodes;
        let num_chunks = dataset.num_chunks();
        assert!(
            num_chunks >= n,
            "dataset {} has {} chunks but the configuration uses {} data nodes",
            dataset.id,
            num_chunks,
            n
        );
        assert!(
            options.straggler_threshold >= 1.0,
            "straggler threshold below 1 would abandon healthy nodes"
        );
        assert!(d.cache.is_none(), "checkpointed runs do not support non-local cache sites");
        let inflation = dataset.work_inflation();
        let site = &d.compute;
        let machine = &site.machine;

        // Unpack the checkpoint (validating it against this executor) or
        // start fresh. `n0` is the data-node count that fixed the
        // chunk-to-compute-node map; migration may change the fetch-side
        // count `n` but never `n0`.
        let resumed = start.is_some();
        let (n0, start_pass, start_cursor, mut state, mut passes, stored_mode, migrated) =
            match &start {
                Some(ck) => {
                    assert_eq!(ck.app, app.name(), "checkpoint was taken by a different app");
                    assert_eq!(
                        ck.dataset, dataset.id,
                        "checkpoint was taken over a different dataset"
                    );
                    assert_eq!(ck.num_chunks, num_chunks, "checkpoint chunk count mismatch");
                    assert_eq!(ck.compute_nodes, c, "resume cannot change the compute-node count");
                    assert_eq!(
                        ck.compute_machine, machine.name,
                        "resume is a replica switch; the compute site stays"
                    );
                    assert!(ck.cursor <= num_chunks, "checkpoint cursor out of range");
                    assert_eq!(
                        ck.partials.len(),
                        c,
                        "checkpoint has one partial-object set per compute node"
                    );
                    let migrated = ck.repository != d.repository.name;
                    (
                        ck.data_nodes,
                        ck.pass_idx,
                        ck.cursor,
                        ck.state.clone(),
                        ck.completed.clone(),
                        Some(ck.cache_mode),
                        migrated,
                    )
                }
                None => (n, 0, 0, app.initial_state(), Vec::new(), None, false),
            };
        assert!(
            num_chunks >= n0,
            "checkpoint's original configuration used {n0} data nodes over {num_chunks} chunks"
        );
        let (mut carried, mut pending_prefix, mut now) = match start {
            Some(ck) => (Some(ck.partials), Some(ck.prefix), ck.elapsed),
            None => (None, None, SimTime::ZERO),
        };

        // Static plan, identical to the original run's: chunk -> data
        // node over `n0`, chunk -> compute node.
        let placement = partition::contiguous(num_chunks, n0);
        let dest = distribution::assign_destinations(&placement, c);
        let mut node_chunks: Vec<Vec<usize>> = vec![Vec::new(); c];
        for (k, &cn) in dest.iter().enumerate() {
            node_chunks[cn].push(k);
        }
        let node_bytes: Vec<u64> = node_chunks
            .iter()
            .map(|list| list.iter().map(|&k| dataset.chunks[k].logical_bytes).sum())
            .collect();
        let max_node_bytes = node_bytes.iter().copied().max().unwrap_or(0);
        let cache_mode = match stored_mode {
            // The cache-mode decision is sticky across a resume: the
            // compute-local cache survives the replica switch.
            Some(m) => m,
            None if !app.caches() => CacheMode::SinglePass,
            None if max_node_bytes <= site.node_storage_bytes => CacheMode::Local,
            None => CacheMode::Refetch,
        };

        // A resume on a different replica pays the restart overhead in
        // its first pass.
        let mut migration_due =
            if resumed && migrated { options.migration_overhead } else { SimDuration::ZERO };
        let mut known_dead: Vec<usize> = Vec::new();
        let mut pass_idx = start_pass;

        loop {
            assert!(
                pass_idx < app.max_passes(),
                "application {} exceeded its pass bound of {}",
                app.name(),
                app.max_passes()
            );
            let remote =
                pass_idx == 0 || matches!(cache_mode, CacheMode::SinglePass | CacheMode::Refetch);
            let lo = if pass_idx == start_pass { start_cursor } else { 0 };
            let stop_here = stop.is_some_and(|sp| sp.pass == pass_idx);
            let hi = if stop_here { stop.expect("checked").cursor } else { num_chunks };
            assert!(lo <= hi, "stop point precedes the resume cursor");

            // Crash detection, charged once per new dead set, as in the
            // unsplit run.
            let mut fault_detection = SimDuration::ZERO;
            let seg_remote = remote && hi > lo;
            if seg_remote && !schedule.crashes.is_empty() {
                let dead_now: Vec<usize> =
                    schedule.crashed_nodes(now).into_iter().filter(|&i| i < n).collect();
                if dead_now.iter().any(|i| !known_dead.contains(i)) {
                    fault_detection = options.retry.detection_delay();
                    known_dead = dead_now;
                }
            }

            // Phases 1-2 over the segment's chunks only: retrieval at the
            // serving replica, then the origin WAN transfer under
            // whatever degradation is in force.
            let (retrieval, network) = if seg_remote {
                let plan = fetch_plan_range(dataset, n, &dest, &known_dead, lo, hi);
                let read_times =
                    dataserver::retrieval_times(&d.repository, &plan.dn_bytes, &plan.dn_chunks);
                let retrieval =
                    read_times.iter().map(|&(_, t)| t).max().unwrap_or(SimDuration::ZERO);
                let net_factor = schedule.bandwidth_factor(now + fault_detection + retrieval);
                let flow_times = if net_factor == 1.0 {
                    comm::transfer_times(&d.wan, &d.repository.machine, machine, n, c, &plan.flows)
                } else {
                    let mut wan = d.wan.clone();
                    wan.stream_bw *= net_factor;
                    if let Some(cap) = wan.aggregate_cap.as_mut() {
                        *cap *= net_factor;
                    }
                    comm::transfer_times(&wan, &d.repository.machine, machine, n, c, &plan.flows)
                };
                let network = flow_times.iter().map(|&(_, t)| t).max().unwrap_or(SimDuration::ZERO);
                (retrieval, network)
            } else {
                (SimDuration::ZERO, SimDuration::ZERO)
            };

            // Phase 3 over the segment: per-core folds, seeded with the
            // carried partials when resuming mid-pass.
            let cache = if cache_mode != CacheMode::Local {
                CacheTraffic::None
            } else if pass_idx == 0 {
                CacheTraffic::Write
            } else {
                CacheTraffic::Read
            };
            let init = if pass_idx == start_pass { carried.take() } else { None };
            let segs = computeserver::run_segment_reductions(
                app,
                &state,
                dataset,
                &node_chunks,
                machine.cores,
                lo,
                hi,
                init,
            );
            let seg_times: Vec<SimDuration> = segs
                .iter()
                .map(|s| {
                    computeserver::segment_compute_time(s, machine, &site.costs, inflation, cache)
                })
                .collect();

            if stop_here {
                // Suspend: per-core partials stay unmerged so the resume
                // replays the exact merge tree.
                let (local_compute, straggler_recovery) = if schedule.stragglers.is_empty() {
                    (
                        seg_times.iter().copied().max().unwrap_or(SimDuration::ZERO),
                        SimDuration::ZERO,
                    )
                } else {
                    let plan = straggler_plan(&seg_times, schedule, options.straggler_threshold);
                    (plan.makespan, plan.recovery)
                };
                let prefix = PassReport {
                    retrieval,
                    network,
                    cache_disk: SimDuration::ZERO,
                    cache_network: SimDuration::ZERO,
                    local_compute,
                    t_ro: SimDuration::ZERO,
                    t_g: SimDuration::ZERO,
                    max_obj_bytes: 0,
                    fault_detection,
                    straggler_recovery,
                    migration: SimDuration::ZERO,
                };
                let elapsed = now
                    + fault_detection
                    + retrieval
                    + network
                    + local_compute
                    + straggler_recovery;
                return ResumableOutcome::Suspended(Checkpoint {
                    app: app.name().to_string(),
                    dataset: dataset.id.clone(),
                    num_chunks,
                    data_nodes: n0,
                    compute_nodes: c,
                    repository: d.repository.name.clone(),
                    compute_machine: machine.name.clone(),
                    cache_mode,
                    pass_idx,
                    cursor: hi,
                    state,
                    partials: segs.into_iter().map(|s| s.core_objs).collect(),
                    elapsed,
                    completed: passes,
                    prefix,
                });
            }

            // The pass completes here: node-local combination, then the
            // usual gather and global reduction.
            let mut objs = Vec::with_capacity(c);
            let mut node_times = Vec::with_capacity(c);
            for (seg_t, seg) in seg_times.iter().zip(segs) {
                let (obj, smp_merge) = computeserver::combine_segment(seg.core_objs);
                node_times.push(*seg_t + smp_merge.time_on(machine, inflation));
                objs.push(obj);
            }
            let (local_compute, straggler_recovery) = if schedule.stragglers.is_empty() {
                (node_times.iter().copied().max().unwrap_or(SimDuration::ZERO), SimDuration::ZERO)
            } else {
                let plan = straggler_plan(&node_times, schedule, options.straggler_threshold);
                (plan.makespan, plan.recovery)
            };

            let obj_bytes: Vec<u64> = objs.iter().map(|o| o.size().logical(inflation)).collect();
            let send_times = comm::gather_times(site, &obj_bytes[1..]);
            let t_ro: SimDuration = send_times.iter().copied().sum();
            let max_obj_bytes = obj_bytes.iter().copied().max().unwrap_or(0);

            let mut master_meter = WorkMeter::new();
            let mut iter = objs.into_iter();
            let mut merged = iter.next().expect("at least one compute node");
            for o in iter {
                merged.merge(&o, &mut master_meter);
            }
            let outcome = app.global_finalize(&state, merged, &mut master_meter);
            let (next_state, finished) = match outcome {
                PassOutcome::NextPass(s) => (s, false),
                PassOutcome::Finished(s) => (s, true),
            };
            let broadcast = if finished {
                SimDuration::ZERO
            } else {
                comm::broadcast_time(site, app.state_size(&next_state).logical(inflation), c)
            };
            let t_g = site.costs.obj_handling * c as u64
                + master_meter.time_on(machine, inflation)
                + broadcast;

            let migration = std::mem::replace(&mut migration_due, SimDuration::ZERO);
            let mut report = PassReport {
                retrieval,
                network,
                cache_disk: SimDuration::ZERO,
                cache_network: SimDuration::ZERO,
                local_compute,
                t_ro,
                t_g,
                max_obj_bytes,
                fault_detection,
                straggler_recovery,
                migration,
            };
            // A resumed split pass folds the checkpointed prefix's phase
            // components into its report, so the run has one report per
            // logical pass.
            if let Some(prefix) = pending_prefix.take() {
                report.retrieval += prefix.retrieval;
                report.network += prefix.network;
                report.local_compute += prefix.local_compute;
                report.fault_detection += prefix.fault_detection;
                report.straggler_recovery += prefix.straggler_recovery;
            }
            now = now
                + fault_detection
                + retrieval
                + network
                + local_compute
                + t_ro
                + t_g
                + migration
                + straggler_recovery;
            passes.push(report);
            state = next_state;
            if finished {
                let report = ExecutionReport {
                    app: app.name().to_string(),
                    dataset: dataset.id.clone(),
                    dataset_bytes: dataset.logical_bytes(),
                    data_nodes: n,
                    compute_nodes: c,
                    wan_bw: d.wan.stream_bw,
                    repo_machine: d.repository.machine.name.clone(),
                    compute_machine: machine.name.clone(),
                    cache_mode,
                    passes,
                };
                return ResumableOutcome::Finished(RunResult { report, final_state: state });
            }
            pass_idx += 1;
        }
    }

    fn run_inner<A: ReductionApp>(
        &self,
        app: &A,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
        mut controller: Option<&mut dyn PassController>,
        mut tracer: Option<&mut Tracer>,
    ) -> RunResult<A::State> {
        let d = &self.deployment;
        let n = d.config.data_nodes;
        let c = d.config.compute_nodes;
        assert!(
            dataset.num_chunks() >= n,
            "dataset {} has {} chunks but the configuration uses {} data nodes",
            dataset.id,
            dataset.num_chunks(),
            n
        );
        assert!(
            options.straggler_threshold >= 1.0,
            "straggler threshold below 1 would abandon healthy nodes"
        );
        let inflation = dataset.work_inflation();

        // Static plan: chunk -> data node, chunk -> compute node. The
        // chunk-to-compute-node map `dest` is fixed for the whole run
        // (faults only move the fetch side), so local reductions — and
        // hence the final state — never depend on the schedule.
        let placement = partition::contiguous(dataset.num_chunks(), n);
        let dest = distribution::assign_destinations(&placement, c);

        // The replica currently serving remote fetches; migration
        // replaces it. Compute-side phases always use `d`.
        let mut current: Deployment = d.clone();
        let mut plan = fetch_plan(dataset, n, &dest, &[]);
        // Data nodes already detected dead (crash indices follow node
        // positions, so they persist across migration).
        let mut known_dead: Vec<usize> = Vec::new();

        // Per-compute-node chunk lists, in chunk order.
        let mut node_chunks: Vec<Vec<usize>> = vec![Vec::new(); c];
        for (k, &cn) in dest.iter().enumerate() {
            node_chunks[cn].push(k);
        }

        // Per-compute-node volumes (for cache planning and cache-site
        // traffic).
        let node_bytes: Vec<u64> = node_chunks
            .iter()
            .map(|list| list.iter().map(|&k| dataset.chunks[k].logical_bytes).sum())
            .collect();
        let node_chunk_counts: Vec<usize> = node_chunks.iter().map(Vec::len).collect();

        let site = &d.compute;
        let machine = &site.machine;

        // Decide how chunks persist between passes: locally if every
        // node's share fits its scratch storage, at the non-local caching
        // site if one is attached, else by re-fetching from the origin.
        let max_node_bytes = node_bytes.iter().copied().max().unwrap_or(0);
        let cache_mode = if !app.caches() {
            CacheMode::SinglePass
        } else if max_node_bytes <= site.node_storage_bytes {
            CacheMode::Local
        } else if d.cache.is_some() {
            CacheMode::NonLocal
        } else {
            CacheMode::Refetch
        };

        // Cache-site traffic plan (compute node <-> cache node, banded).
        let cache_plan = d.cache.as_ref().map(|cs| {
            let eff_nodes = cs.nodes.min(c);
            let flows: Vec<TransferFlow> = (0..c)
                .filter(|&p| node_bytes[p] > 0)
                .map(|p| TransferFlow {
                    // `data_node` is the cache-site side of the stream.
                    data_node: p * eff_nodes / c,
                    compute_node: p,
                    bytes: node_bytes[p],
                    chunks: node_chunk_counts[p],
                })
                .collect();
            let mut per_node_bytes = vec![0u64; eff_nodes];
            let mut per_node_chunks = vec![0usize; eff_nodes];
            for f in &flows {
                per_node_bytes[f.data_node] += f.bytes;
                per_node_chunks[f.data_node] += f.chunks;
            }
            (cs, eff_nodes, flows, per_node_bytes, per_node_chunks)
        });

        let mut state = app.initial_state();
        let mut passes: Vec<PassReport> = Vec::new();
        // Virtual clock: faults materialize against the accumulated pass
        // time, so a crash at t=0 hits the first fetch and one past the
        // horizon never fires.
        let mut now = SimTime::ZERO;
        let run_span = tracer.as_deref_mut().map(|tr| tr.begin(SpanKind::Run, None, now));

        loop {
            assert!(
                passes.len() < app.max_passes(),
                "application {} exceeded its pass bound of {}",
                app.name(),
                app.max_passes()
            );
            let pass_idx = passes.len();
            // Caching runs fetch from the origin once; single-pass and
            // storage-starved (Refetch) runs fetch every pass (the paper:
            // "if caching was performed on the initial iteration, each
            // subsequent pass retrieves data chunks from local disk").
            let remote =
                pass_idx == 0 || matches!(cache_mode, CacheMode::SinglePass | CacheMode::Refetch);

            // Phase 0 (faults only): crash detection. Fetches against
            // nodes that died by now time out and exhaust their retries;
            // the timeouts run concurrently, so one detection delay
            // covers the round. Orphaned chunks are rebalanced over the
            // survivors before retrieval begins.
            let mut fault_detection = SimDuration::ZERO;
            if remote && !schedule.crashes.is_empty() {
                let n_cur = current.config.data_nodes;
                let dead_now: Vec<usize> =
                    schedule.crashed_nodes(now).into_iter().filter(|&i| i < n_cur).collect();
                if dead_now.iter().any(|i| !known_dead.contains(i)) {
                    fault_detection = options.retry.detection_delay();
                    known_dead = dead_now;
                    plan = fetch_plan(dataset, n_cur, &dest, &known_dead);
                }
            }

            // Phase 1: origin repository retrieval. The per-node times
            // feed trace attribution; the phase is their makespan.
            let read_times = if remote {
                dataserver::retrieval_times(&current.repository, &plan.dn_bytes, &plan.dn_chunks)
            } else {
                Vec::new()
            };
            let retrieval = read_times.iter().map(|&(_, t)| t).max().unwrap_or(SimDuration::ZERO);
            // Snapshot per-node shares before a migrating controller can
            // swap `plan` out at the end of the pass.
            let read_stats: Vec<(u64, usize)> =
                read_times.iter().map(|&(d, _)| (plan.dn_bytes[d], plan.dn_chunks[d])).collect();

            // Phase 2: origin WAN transfer, at whatever bandwidth the
            // degradation windows leave when the transfer starts.
            let net_factor = if remote {
                schedule.bandwidth_factor(now + fault_detection + retrieval)
            } else {
                1.0
            };
            let flow_times = if remote {
                let n_cur = current.config.data_nodes;
                if net_factor == 1.0 {
                    comm::transfer_times(
                        &current.wan,
                        &current.repository.machine,
                        machine,
                        n_cur,
                        c,
                        &plan.flows,
                    )
                } else {
                    let mut wan = current.wan.clone();
                    wan.stream_bw *= net_factor;
                    if let Some(cap) = wan.aggregate_cap.as_mut() {
                        *cap *= net_factor;
                    }
                    comm::transfer_times(
                        &wan,
                        &current.repository.machine,
                        machine,
                        n_cur,
                        c,
                        &plan.flows,
                    )
                }
            } else {
                Vec::new()
            };
            let network = flow_times.iter().map(|&(_, t)| t).max().unwrap_or(SimDuration::ZERO);

            // Non-local cache traffic: write-through on the first pass,
            // reads on later passes.
            let (cache_disk, cache_network) = if cache_mode == CacheMode::NonLocal {
                let (cs, eff_nodes, cache_flows, pnb, pnc) =
                    cache_plan.as_ref().expect("NonLocal implies a cache site");
                let disk = dataserver::retrieval_makespan(&cs.site, pnb, pnc);
                let net = if pass_idx == 0 {
                    // Compute nodes stream to the cache site.
                    comm::transfer_makespan(
                        &cs.wan,
                        machine,
                        &cs.site.machine,
                        c,
                        *eff_nodes,
                        &cache_flows
                            .iter()
                            .map(|f| TransferFlow {
                                data_node: f.compute_node,
                                compute_node: f.data_node,
                                bytes: f.bytes,
                                chunks: f.chunks,
                            })
                            .collect::<Vec<_>>(),
                    )
                } else {
                    // The cache site streams back to the compute nodes.
                    comm::transfer_makespan(
                        &cs.wan,
                        &cs.site.machine,
                        machine,
                        *eff_nodes,
                        c,
                        cache_flows,
                    )
                };
                (disk, net)
            } else {
                (SimDuration::ZERO, SimDuration::ZERO)
            };

            // Phase 3: local reductions (real execution; SMP nodes fold
            // on all cores and combine node-locally).
            let results = computeserver::run_local_reductions(
                app,
                &state,
                dataset,
                &node_chunks,
                machine.cores,
            );
            let cache = if cache_mode != CacheMode::Local {
                CacheTraffic::None
            } else if pass_idx == 0 {
                CacheTraffic::Write
            } else {
                CacheTraffic::Read
            };
            let base_times =
                computeserver::node_phase_times(&results, machine, &site.costs, inflation, cache);
            let (local_compute, straggler_recovery, node_times, abandoned) =
                if schedule.stragglers.is_empty() {
                    (
                        base_times.iter().copied().max().unwrap_or(SimDuration::ZERO),
                        SimDuration::ZERO,
                        base_times.iter().map(|&t| Some(t)).collect::<Vec<_>>(),
                        Vec::new(),
                    )
                } else {
                    let plan = straggler_plan(&base_times, schedule, options.straggler_threshold);
                    (plan.makespan, plan.recovery, plan.node_times, plan.abandoned)
                };

            // Phase 4: reduction-object communication (serialized
            // gather): t_ro is exactly the sum of the per-sender times.
            let obj_bytes: Vec<u64> =
                results.iter().map(|r| r.obj.size().logical(inflation)).collect();
            let send_times = comm::gather_times(site, &obj_bytes[1..]);
            let t_ro: SimDuration = send_times.iter().copied().sum();
            let max_obj_bytes = obj_bytes.iter().copied().max().unwrap_or(0);

            // Phase 5: global reduction at the master (node 0): handle
            // every object (the master's own included), merge, finalize,
            // broadcast the next state.
            let mut results = results;
            let mut master_meter = WorkMeter::new();
            let mut iter = results.drain(..);
            let mut merged = iter.next().expect("at least one compute node").obj;
            for r in iter {
                merged.merge(&r.obj, &mut master_meter);
            }
            let outcome = app.global_finalize(&state, merged, &mut master_meter);
            let (next_state, finished) = match outcome {
                PassOutcome::NextPass(s) => (s, false),
                PassOutcome::Finished(s) => (s, true),
            };
            let broadcast = if finished {
                SimDuration::ZERO
            } else {
                comm::broadcast_time(site, app.state_size(&next_state).logical(inflation), c)
            };
            let t_g = site.costs.obj_handling * c as u64
                + master_meter.time_on(machine, inflation)
                + broadcast;

            // The controller sees the pass and may migrate the fetch
            // side to another replica for subsequent remote passes.
            let mut migration = SimDuration::ZERO;
            let phases_done = now
                + fault_detection
                + retrieval
                + network
                + cache_disk
                + cache_network
                + local_compute
                + t_ro
                + t_g;
            if let Some(ctrl) = controller.as_deref_mut() {
                let obs = PassObservation {
                    pass_idx,
                    elapsed: phases_done,
                    remote,
                    observed_wan_bw: if remote {
                        Some(current.wan.stream_bw * net_factor)
                    } else {
                        None
                    },
                    finished,
                };
                match ctrl.after_pass(&obs, &current) {
                    PassAction::Continue => {}
                    PassAction::Migrate(new_d) => {
                        if !finished {
                            assert_eq!(
                                new_d.config.compute_nodes, c,
                                "migration cannot change the compute-node count"
                            );
                            assert_eq!(
                                new_d.compute.machine.name, d.compute.machine.name,
                                "migration is a replica switch; the compute site stays"
                            );
                            migration = options.migration_overhead;
                            current = *new_d;
                            plan = fetch_plan(
                                dataset,
                                current.config.data_nodes,
                                &dest,
                                &known_dead
                                    .iter()
                                    .copied()
                                    .filter(|&i| i < current.config.data_nodes)
                                    .collect::<Vec<_>>(),
                            );
                        }
                    }
                }
            }

            // Record the pass's span tree: one phase span per non-zero
            // phase, in clock order, with per-node children where the
            // phase has a breakdown. The cursor retraces exactly the
            // integer additions of `phases_done`, so span durations
            // reproduce the report bit for bit.
            if let Some(tr) = tracer.as_deref_mut() {
                let pass_span = tr.begin(SpanKind::Pass, None, now);
                let mut t = now;
                if !fault_detection.is_zero() {
                    tr.record(SpanKind::FaultDetection, None, t, t + fault_detection);
                    t += fault_detection;
                }
                if !retrieval.is_zero() {
                    let s = tr.begin(SpanKind::Retrieval, None, t);
                    for (&(d, dt), &(bytes, chunks)) in read_times.iter().zip(&read_stats) {
                        let id = tr.record(SpanKind::NodeRead, Some(NodeRef::data(d)), t, t + dt);
                        tr.attr(id, "bytes", bytes);
                        tr.attr(id, "chunks", chunks as u64);
                    }
                    tr.end(s, t + retrieval);
                    t += retrieval;
                }
                if !network.is_zero() {
                    let s = tr.begin(SpanKind::Network, None, t);
                    for &(f, dt) in &flow_times {
                        let id = tr.record(
                            SpanKind::NodeTransfer,
                            Some(NodeRef::data(f.data_node)),
                            t,
                            t + dt,
                        );
                        tr.attr(id, "bytes", f.bytes);
                        tr.attr(id, "chunks", f.chunks as u64);
                        tr.attr(id, "to_compute", f.compute_node as u64);
                    }
                    tr.end(s, t + network);
                    t += network;
                }
                if !cache_disk.is_zero() {
                    tr.record(SpanKind::CacheDisk, None, t, t + cache_disk);
                    t += cache_disk;
                }
                if !cache_network.is_zero() {
                    tr.record(SpanKind::CacheNetwork, None, t, t + cache_network);
                    t += cache_network;
                }
                if !local_compute.is_zero() {
                    let s = tr.begin(SpanKind::Compute, None, t);
                    for (p, nt) in node_times.iter().enumerate() {
                        if let Some(dt) = nt {
                            if !dt.is_zero() {
                                tr.record(
                                    SpanKind::NodeCompute,
                                    Some(NodeRef::compute(p)),
                                    t,
                                    t + *dt,
                                );
                            }
                        }
                    }
                    tr.end(s, t + local_compute);
                    t += local_compute;
                }
                if !t_ro.is_zero() {
                    let s = tr.begin(SpanKind::Gather, None, t);
                    let mut g = t;
                    for (i, &dt) in send_times.iter().enumerate() {
                        if !dt.is_zero() {
                            let id = tr.record(
                                SpanKind::NodeSend,
                                Some(NodeRef::compute(i + 1)),
                                g,
                                g + dt,
                            );
                            tr.attr(id, "obj_bytes", obj_bytes[i + 1]);
                        }
                        g += dt;
                    }
                    tr.end(s, t + t_ro);
                    t += t_ro;
                }
                if !t_g.is_zero() {
                    tr.record(SpanKind::GlobalReduce, Some(NodeRef::master()), t, t + t_g);
                    t += t_g;
                }
                if !migration.is_zero() {
                    tr.record(SpanKind::Migration, None, t, t + migration);
                    t += migration;
                }
                if !straggler_recovery.is_zero() {
                    let s = tr.begin(SpanKind::StragglerRecovery, None, t);
                    let mut g = t;
                    for &(p, dt) in &abandoned {
                        let id =
                            tr.record(SpanKind::NodeReexec, Some(NodeRef::master()), g, g + dt);
                        tr.attr(id, "node", p as u64);
                        g += dt;
                    }
                    tr.end(s, t + straggler_recovery);
                    t += straggler_recovery;
                }
                tr.attr(pass_span, "max_obj_bytes", max_obj_bytes);
                tr.attr(pass_span, "remote", u64::from(remote));
                tr.end(pass_span, t);

                tr.metrics.counter("passes").inc();
                if remote {
                    let (fb, fc) = flow_times
                        .iter()
                        .fold((0u64, 0u64), |(b, k), (f, _)| (b + f.bytes, k + f.chunks as u64));
                    tr.metrics.counter("bytes_fetched").add(fb);
                    tr.metrics.counter("chunks_fetched").add(fc);
                }
                if !fault_detection.is_zero() {
                    tr.metrics.counter("fault_detections").inc();
                    tr.metrics.gauge("dead_data_nodes").set(known_dead.len() as f64);
                }
                tr.metrics.counter("stragglers_abandoned").add(abandoned.len() as u64);
                if !migration.is_zero() {
                    tr.metrics.counter("migrations").inc();
                }
                tr.metrics
                    .histogram("pass_seconds", &[0.01, 0.1, 1.0, 10.0, 100.0, 1000.0])
                    .observe(t.saturating_since(now).as_secs_f64());
            }

            passes.push(PassReport {
                retrieval,
                network,
                cache_disk,
                cache_network,
                local_compute,
                t_ro,
                t_g,
                max_obj_bytes,
                fault_detection,
                straggler_recovery,
                migration,
            });
            now = phases_done + migration + straggler_recovery;
            state = next_state;
            if finished {
                break;
            }
        }

        if let (Some(tr), Some(id)) = (tracer, run_span) {
            tr.end(id, now);
        }

        let report = ExecutionReport {
            app: app.name().to_string(),
            dataset: dataset.id.clone(),
            dataset_bytes: dataset.logical_bytes(),
            data_nodes: n,
            compute_nodes: c,
            wan_bw: d.wan.stream_bw,
            repo_machine: d.repository.machine.name.clone(),
            compute_machine: machine.name.clone(),
            cache_mode,
            passes,
        };
        RunResult { report, final_state: state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ObjSize;
    use fg_chunks::{codec, DatasetBuilder};
    use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};
    use serde::{Deserialize, Serialize};

    /// Two-pass app: pass 1 sums elements, pass 2 counts elements above
    /// the mean. Exercises caching, state broadcast, and merge.
    struct TwoPass;

    #[derive(Clone, Serialize, Deserialize)]
    struct Acc {
        sum: f64,
        count: u64,
    }

    impl ReductionObject for Acc {
        fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
            self.sum += other.sum;
            self.count += other.count;
            meter.fixed_flops(2);
        }
        fn size(&self) -> ObjSize {
            ObjSize { fixed: 16, data: 0 }
        }
    }

    #[derive(Clone, Serialize, Deserialize)]
    enum Phase {
        ComputeMean,
        CountAbove(f64),
        Done(u64),
    }

    impl ReductionApp for TwoPass {
        type Obj = Acc;
        type State = Phase;
        fn name(&self) -> &str {
            "two-pass"
        }
        fn initial_state(&self) -> Phase {
            Phase::ComputeMean
        }
        fn new_object(&self, _: &Phase) -> Acc {
            Acc { sum: 0.0, count: 0 }
        }
        fn local_reduce(
            &self,
            state: &Phase,
            chunk: &fg_chunks::Chunk,
            obj: &mut Acc,
            meter: &mut WorkMeter,
        ) {
            let vals = codec::decode_f32s(&chunk.payload);
            match state {
                Phase::ComputeMean => {
                    for v in &vals {
                        obj.sum += *v as f64;
                        obj.count += 1;
                    }
                }
                Phase::CountAbove(mean) => {
                    for v in &vals {
                        if (*v as f64) > *mean {
                            obj.count += 1;
                        }
                    }
                }
                Phase::Done(_) => unreachable!("no pass after Done"),
            }
            meter.data_flops(vals.len() as u64);
        }
        fn global_finalize(
            &self,
            state: &Phase,
            merged: Acc,
            _: &mut WorkMeter,
        ) -> PassOutcome<Phase> {
            match state {
                Phase::ComputeMean => {
                    PassOutcome::NextPass(Phase::CountAbove(merged.sum / merged.count as f64))
                }
                Phase::CountAbove(_) => PassOutcome::Finished(Phase::Done(merged.count)),
                Phase::Done(_) => unreachable!(),
            }
        }
        fn state_size(&self, _: &Phase) -> ObjSize {
            ObjSize { fixed: 8, data: 0 }
        }
        fn caches(&self) -> bool {
            true
        }
    }

    fn dataset(chunks: usize, per_chunk: usize) -> Dataset {
        let mut b = DatasetBuilder::new("d", "t", 1.0);
        let mut x = 0u32;
        for _ in 0..chunks {
            let vals: Vec<f32> = (0..per_chunk)
                .map(|_| {
                    x += 1;
                    x as f32
                })
                .collect();
            b.push_chunk(codec::encode_f32s(&vals), per_chunk as u64, None);
        }
        b.build()
    }

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    #[test]
    fn two_pass_app_gets_right_answer_on_any_configuration() {
        let ds = dataset(8, 100); // values 1..=800, mean 400.5 -> 400 above
        for (n, c) in [(1, 1), (2, 4), (4, 8), (8, 16)] {
            let result = Executor::new(deployment(n, c)).run(&TwoPass, &ds);
            match result.final_state {
                Phase::Done(count) => assert_eq!(count, 400, "config {n}-{c}"),
                _ => panic!("did not finish"),
            }
            assert_eq!(result.report.num_passes(), 2);
        }
    }

    #[test]
    fn caching_suppresses_second_pass_io() {
        let ds = dataset(8, 100);
        let r = Executor::new(deployment(2, 2)).run(&TwoPass, &ds).report;
        assert!(!r.passes[0].retrieval.is_zero());
        assert!(!r.passes[0].network.is_zero());
        assert!(r.passes[1].retrieval.is_zero());
        assert!(r.passes[1].network.is_zero());
    }

    #[test]
    fn single_node_has_no_gather_cost() {
        let ds = dataset(4, 10);
        let r = Executor::new(deployment(1, 1)).run(&TwoPass, &ds).report;
        assert!(r.t_ro().is_zero());
        // But t_g is nonzero: the master still handles its own object.
        assert!(!r.t_g().is_zero());
    }

    #[test]
    fn gather_cost_grows_with_compute_nodes() {
        let ds = dataset(16, 10);
        let r2 = Executor::new(deployment(1, 2)).run(&TwoPass, &ds).report;
        let r8 = Executor::new(deployment(1, 8)).run(&TwoPass, &ds).report;
        assert!(r8.t_ro() > r2.t_ro());
        assert!(r8.t_g() > r2.t_g());
    }

    #[test]
    fn more_data_nodes_speed_up_retrieval() {
        let ds = dataset(16, 1000);
        let r1 = Executor::new(deployment(1, 4)).run(&TwoPass, &ds).report;
        let r4 = Executor::new(deployment(4, 4)).run(&TwoPass, &ds).report;
        assert!(r4.t_disk() < r1.t_disk());
        assert!(r4.t_network() < r1.t_network());
    }

    #[test]
    fn report_identifies_the_run() {
        let ds = dataset(4, 10);
        let r = Executor::new(deployment(2, 4)).run(&TwoPass, &ds).report;
        assert_eq!(r.app, "two-pass");
        assert_eq!(r.data_nodes, 2);
        assert_eq!(r.compute_nodes, 4);
        assert_eq!(r.dataset_bytes, ds.logical_bytes());
        assert_eq!(r.repo_machine, "pentium-700");
    }

    #[test]
    #[should_panic(expected = "chunks but the configuration")]
    fn too_few_chunks_rejected() {
        let ds = dataset(2, 10);
        Executor::new(deployment(4, 4)).run(&TwoPass, &ds);
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = dataset(8, 50);
        let a = Executor::new(deployment(2, 8)).run(&TwoPass, &ds).report;
        let b = Executor::new(deployment(2, 8)).run(&TwoPass, &ds).report;
        assert_eq!(a.total(), b.total());
        assert_eq!(a.t_ro(), b.t_ro());
        assert_eq!(a.t_g(), b.t_g());
    }

    fn final_count(state: &Phase) -> u64 {
        match state {
            Phase::Done(count) => *count,
            _ => panic!("did not finish"),
        }
    }

    use fg_sim::{FaultSchedule, SimTime};

    #[test]
    fn empty_schedule_is_bit_identical_to_run() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let plain = ex.run(&TwoPass, &ds);
        let faulty = ex.run_with_faults(
            &TwoPass,
            &ds,
            &FaultSchedule::none(),
            &FaultOptions::default(),
            None,
        );
        assert_eq!(plain.report, faulty.report);
        assert_eq!(final_count(&plain.final_state), final_count(&faulty.final_state));
        assert_eq!(faulty.report.t_recovery(), SimDuration::ZERO);
    }

    #[test]
    fn crash_charges_detection_and_reroutes_to_survivors() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(4, 4));
        let plain = ex.run(&TwoPass, &ds);
        let opts = FaultOptions::default();
        let s = FaultSchedule::none().crash(1, SimTime::ZERO).crash(3, SimTime::ZERO);
        let faulty = ex.run_with_faults(&TwoPass, &ds, &s, &opts, None);
        // Both crashes are found in one concurrent detection round.
        assert_eq!(faulty.report.passes[0].fault_detection, opts.retry.detection_delay());
        // Cached second pass touches no data nodes: nothing to detect.
        assert_eq!(faulty.report.passes[1].fault_detection, SimDuration::ZERO);
        // Two survivors serve what four nodes did: retrieval slows down.
        assert!(faulty.report.passes[0].retrieval > plain.report.passes[0].retrieval);
        assert!(faulty.report.total() > plain.report.total());
        // The answer is unaffected.
        assert_eq!(final_count(&faulty.final_state), final_count(&plain.final_state));
    }

    #[test]
    #[should_panic(expected = "no survivor holds the data")]
    fn losing_every_data_node_is_fatal() {
        let ds = dataset(8, 10);
        let s = FaultSchedule::none().crash(0, SimTime::ZERO).crash(1, SimTime::ZERO);
        Executor::new(deployment(2, 2)).run_with_faults(
            &TwoPass,
            &ds,
            &s,
            &FaultOptions::default(),
            None,
        );
    }

    #[test]
    fn crash_after_the_only_remote_pass_changes_nothing() {
        // Local caching fetches remotely on pass 0 only; a node dying
        // one instant later is never even detected.
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let plain = ex.run(&TwoPass, &ds);
        let s = FaultSchedule::none().crash(1, SimTime::from_nanos(1));
        let faulty = ex.run_with_faults(&TwoPass, &ds, &s, &FaultOptions::default(), None);
        assert_eq!(plain.report, faulty.report);
    }

    #[test]
    fn degradation_window_slows_the_transfer() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let plain = ex.run(&TwoPass, &ds);
        let s = FaultSchedule::none().degrade(SimTime::ZERO, SimTime::MAX, 0.5);
        let faulty = ex.run_with_faults(&TwoPass, &ds, &s, &FaultOptions::default(), None);
        assert!(faulty.report.passes[0].network > plain.report.passes[0].network);
        assert_eq!(faulty.report.passes[0].retrieval, plain.report.passes[0].retrieval);
        assert_eq!(final_count(&faulty.final_state), final_count(&plain.final_state));
    }

    #[test]
    fn mild_straggler_stretches_compute_within_threshold() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let plain = ex.run(&TwoPass, &ds);
        let s = FaultSchedule::none().straggler(2, 1.5);
        let faulty = ex.run_with_faults(&TwoPass, &ds, &s, &FaultOptions::default(), None);
        assert!(faulty.report.passes[0].local_compute >= plain.report.passes[0].local_compute);
        assert_eq!(faulty.report.t_straggler_recovery(), SimDuration::ZERO);
        assert_eq!(final_count(&faulty.final_state), final_count(&plain.final_state));
    }

    #[test]
    fn extreme_straggler_is_abandoned_and_reexecuted() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let plain = ex.run(&TwoPass, &ds);
        let s = FaultSchedule::none().straggler(2, 100.0);
        let faulty = ex.run_with_faults(&TwoPass, &ds, &s, &FaultOptions::default(), None);
        // Degraded-mode completion: the healthy nodes bound the phase,
        // and the master re-runs the abandoned share afterwards.
        assert!(!faulty.report.t_straggler_recovery().is_zero());
        assert!(faulty.report.passes[0].local_compute <= plain.report.passes[0].local_compute);
        assert_eq!(final_count(&faulty.final_state), final_count(&plain.final_state));
    }

    /// Migrates to a fixed replica after the first pass, once.
    struct MigrateOnce {
        target: Option<Deployment>,
        observed: Vec<Option<f64>>,
    }

    impl PassController for MigrateOnce {
        fn after_pass(&mut self, obs: &PassObservation, _: &Deployment) -> PassAction {
            self.observed.push(obs.observed_wan_bw);
            match self.target.take() {
                Some(d) if !obs.finished => PassAction::Migrate(Box::new(d)),
                _ => PassAction::Continue,
            }
        }
    }

    fn refetch_deployment(n: usize, c: usize, wan_bw: f64) -> Deployment {
        let mut site = ComputeSite::pentium_myrinet("cs", 16);
        site.node_storage_bytes = 0; // forces CacheMode::Refetch
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            site,
            Wan::per_stream(wan_bw),
            Configuration::new(n, c),
        )
    }

    #[test]
    fn controller_migration_redirects_later_passes() {
        let ds = dataset(8, 100);
        let slow = refetch_deployment(2, 4, 1e5);
        let fast = refetch_deployment(2, 4, 1e6);
        let mut ctrl = MigrateOnce { target: Some(fast), observed: Vec::new() };
        let opts = FaultOptions::default();
        let r = Executor::new(slow)
            .run_with_faults(&TwoPass, &ds, &FaultSchedule::none(), &opts, Some(&mut ctrl))
            .report;
        assert_eq!(r.passes[0].migration, opts.migration_overhead);
        assert_eq!(r.passes[1].migration, SimDuration::ZERO);
        // Refetch mode keeps every pass remote; the new replica's faster
        // WAN shows up immediately.
        assert!(r.passes[1].network < r.passes[0].network);
        // The controller observed the per-stream bandwidth of each pass.
        assert_eq!(ctrl.observed, vec![Some(1e5), Some(1e6)]);
    }

    #[test]
    fn traced_run_matches_untraced_bit_for_bit() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let plain = ex.run(&TwoPass, &ds);
        let (traced, trace) = ex.run_traced(&TwoPass, &ds);
        assert_eq!(plain.report, traced.report);
        assert_eq!(final_count(&plain.final_state), final_count(&traced.final_state));
        trace.check_well_formed().expect("trace must be well-formed");
        assert_eq!(trace.passes().len(), traced.report.num_passes());
    }

    #[test]
    fn trace_component_sums_equal_report_components() {
        let ds = dataset(8, 100);
        let (result, trace) = Executor::new(deployment(2, 4)).run_traced(&TwoPass, &ds);
        let r = &result.report;
        assert_eq!(
            trace.component_sum(SpanKind::Retrieval) + trace.component_sum(SpanKind::CacheDisk),
            r.t_disk()
        );
        assert_eq!(
            trace.component_sum(SpanKind::Network) + trace.component_sum(SpanKind::CacheNetwork),
            r.t_network()
        );
        assert_eq!(trace.component_sum(SpanKind::Compute) + r.t_ro() + r.t_g(), r.t_compute());
        assert_eq!(trace.component_sum(SpanKind::Gather), r.t_ro());
        assert_eq!(trace.component_sum(SpanKind::GlobalReduce), r.t_g());
        // The run span covers the whole execution.
        let root = trace.root().expect("run span");
        assert_eq!(root.duration(), r.total());
    }

    #[test]
    fn report_round_trips_through_its_trace() {
        let ds = dataset(8, 100);
        let (result, trace) = Executor::new(deployment(2, 4)).run_traced(&TwoPass, &ds);
        let rebuilt = crate::ExecutionReport::from_trace(&trace).expect("reconstructable");
        assert_eq!(rebuilt, result.report);
    }

    #[test]
    fn traced_empty_fault_schedule_matches_plain_traced_run() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let (_, plain) = ex.run_traced(&TwoPass, &ds);
        let (_, faulty) = ex.run_with_faults_traced(
            &TwoPass,
            &ds,
            &FaultSchedule::none(),
            &FaultOptions::default(),
            None,
        );
        assert_eq!(plain.spans, faulty.spans);
        assert_eq!(plain.meta, faulty.meta);
    }

    #[test]
    fn faulted_trace_records_recovery_spans() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(4, 4));
        let s = FaultSchedule::none().crash(1, SimTime::ZERO).straggler(2, 100.0);
        let (result, trace) =
            ex.run_with_faults_traced(&TwoPass, &ds, &s, &FaultOptions::default(), None);
        trace.check_well_formed().expect("faulted trace must be well-formed");
        let r = &result.report;
        assert_eq!(trace.component_sum(SpanKind::FaultDetection), r.t_fault_detection());
        assert_eq!(trace.component_sum(SpanKind::StragglerRecovery), r.t_straggler_recovery());
        assert!(!r.t_straggler_recovery().is_zero());
        // The abandoned straggler's re-execution is attributed to the master.
        let reexec: Vec<_> =
            trace.spans.iter().filter(|sp| sp.kind == SpanKind::NodeReexec).collect();
        assert!(!reexec.is_empty());
        assert_eq!(
            reexec.iter().map(|sp| sp.duration()).sum::<SimDuration>(),
            r.t_straggler_recovery()
        );
        let rebuilt = crate::ExecutionReport::from_trace(&trace).expect("reconstructable");
        assert_eq!(rebuilt, *r);
    }

    #[test]
    fn traced_migration_records_its_overhead() {
        let ds = dataset(8, 100);
        let fast = refetch_deployment(2, 4, 1e6);
        let mut ctrl = MigrateOnce { target: Some(fast), observed: Vec::new() };
        let opts = FaultOptions::default();
        let (result, trace) = Executor::new(refetch_deployment(2, 4, 1e5)).run_with_faults_traced(
            &TwoPass,
            &ds,
            &FaultSchedule::none(),
            &opts,
            Some(&mut ctrl),
        );
        trace.check_well_formed().expect("migrated trace must be well-formed");
        assert_eq!(trace.component_sum(SpanKind::Migration), opts.migration_overhead);
        let rebuilt = crate::ExecutionReport::from_trace(&trace).expect("reconstructable");
        assert_eq!(rebuilt, result.report);
    }

    #[test]
    fn traced_run_collects_metrics() {
        let ds = dataset(8, 100);
        let (result, trace) = Executor::new(deployment(2, 4)).run_traced(&TwoPass, &ds);
        assert_eq!(trace.metrics.counter("passes"), Some(result.report.num_passes() as u64));
        let fetched = trace.metrics.counter("bytes_fetched").unwrap_or(0);
        assert_eq!(fetched, ds.logical_bytes(), "pass 0 fetches the whole dataset once");
    }

    #[test]
    #[should_panic(expected = "cannot change the compute-node count")]
    fn migration_to_different_compute_count_is_rejected() {
        let ds = dataset(8, 10);
        let mut ctrl =
            MigrateOnce { target: Some(refetch_deployment(2, 8, 1e6)), observed: Vec::new() };
        Executor::new(refetch_deployment(2, 4, 1e5)).run_with_faults(
            &TwoPass,
            &ds,
            &FaultSchedule::none(),
            &FaultOptions::default(),
            Some(&mut ctrl),
        );
    }

    /// [`refetch_deployment`] pointed at a different replica of the same
    /// dataset (resuming here is a migration).
    fn refetch_replica(n: usize, c: usize, wan_bw: f64) -> Deployment {
        let mut site = ComputeSite::pentium_myrinet("cs", 16);
        site.node_storage_bytes = 0;
        Deployment::new(
            RepositorySite::pentium_repository("repo-b", 8),
            site,
            Wan::per_stream(wan_bw),
            Configuration::new(n, c),
        )
    }

    #[test]
    fn resumable_split_is_bit_identical_at_every_boundary() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let opts = FaultOptions::default();
        let sched = FaultSchedule::none();
        let unsplit = ex.run(&TwoPass, &ds);
        for pass in 0..2 {
            for cursor in 0..=ds.num_chunks() {
                let ck = ex
                    .run_resumable(&TwoPass, &ds, &sched, &opts, StopPoint { pass, cursor })
                    .expect_suspended("two-pass app suspends inside either pass");
                assert_eq!(ck.pass_idx, pass);
                assert_eq!(ck.cursor, cursor);
                let resumed = ex.resume_from(&TwoPass, &ds, ck, &sched, &opts);
                assert_eq!(
                    final_count(&resumed.final_state),
                    final_count(&unsplit.final_state),
                    "split at pass {pass} chunk {cursor}"
                );
                assert_eq!(resumed.report.num_passes(), unsplit.report.num_passes());
                // Resuming on the same replica is not a migration.
                assert_eq!(resumed.report.passes[pass].migration, SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn unreached_stop_point_finishes_with_the_unsplit_report() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let unsplit = ex.run(&TwoPass, &ds);
        let outcome = ex.run_resumable(
            &TwoPass,
            &ds,
            &FaultSchedule::none(),
            &FaultOptions::default(),
            StopPoint { pass: 7, cursor: 0 },
        );
        match outcome {
            ResumableOutcome::Finished(r) => {
                assert_eq!(r.report, unsplit.report);
                assert_eq!(final_count(&r.final_state), final_count(&unsplit.final_state));
            }
            ResumableOutcome::Suspended(_) => panic!("two passes never reach pass 7"),
        }
    }

    #[test]
    fn resume_on_another_replica_charges_the_migration_overhead() {
        let ds = dataset(8, 100);
        let opts = FaultOptions::default();
        let sched = FaultSchedule::none();
        let home = Executor::new(refetch_deployment(2, 4, 1e5));
        let unsplit = home.run(&TwoPass, &ds);
        let ck = home
            .run_resumable(&TwoPass, &ds, &sched, &opts, StopPoint { pass: 1, cursor: 3 })
            .expect_suspended("stops mid second pass");
        // A faster replica serves the remaining fraction after the
        // switch; the answer is unchanged and the overhead is charged to
        // the resumed pass.
        let away = Executor::new(refetch_replica(2, 4, 1e6));
        let resumed = away.resume_from(&TwoPass, &ds, ck, &sched, &opts);
        assert_eq!(final_count(&resumed.final_state), final_count(&unsplit.final_state));
        assert_eq!(resumed.report.passes[1].migration, opts.migration_overhead);
    }

    #[test]
    fn resumable_split_under_faults_matches_the_uninterrupted_run() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(4, 4));
        let opts = FaultOptions::default();
        let sched = FaultSchedule::none()
            .crash(1, SimTime::ZERO)
            .degrade(SimTime::ZERO, SimTime::MAX, 0.5)
            .straggler(2, 100.0);
        let unsplit = ex.run_with_faults(&TwoPass, &ds, &sched, &opts, None);
        for (pass, cursor) in [(0, 1), (0, 5), (1, 4), (1, 8)] {
            let ck = ex
                .run_resumable(&TwoPass, &ds, &sched, &opts, StopPoint { pass, cursor })
                .expect_suspended("stops inside the run");
            let resumed = ex.resume_from(&TwoPass, &ds, ck, &sched, &opts);
            assert_eq!(
                final_count(&resumed.final_state),
                final_count(&unsplit.final_state),
                "split at pass {pass} chunk {cursor} under faults"
            );
        }
    }

    #[test]
    fn checkpoint_resumes_after_a_serialization_roundtrip() {
        let ds = dataset(8, 100);
        let ex = Executor::new(deployment(2, 4));
        let opts = FaultOptions::default();
        let sched = FaultSchedule::none();
        let unsplit = ex.run(&TwoPass, &ds);
        let ck = ex
            .run_resumable(&TwoPass, &ds, &sched, &opts, StopPoint { pass: 1, cursor: 5 })
            .expect_suspended("stops mid second pass");
        let value = ck.to_value();
        let back: Checkpoint<Phase, Acc> =
            Deserialize::from_value(&value).expect("checkpoint round-trips");
        let resumed = ex.resume_from(&TwoPass, &ds, back, &sched, &opts);
        assert_eq!(final_count(&resumed.final_state), final_count(&unsplit.final_state));
    }

    #[test]
    #[should_panic(expected = "resume cannot change the compute-node count")]
    fn resume_with_a_different_compute_count_is_rejected() {
        let ds = dataset(8, 100);
        let ck = Executor::new(deployment(2, 4))
            .run_resumable(
                &TwoPass,
                &ds,
                &FaultSchedule::none(),
                &FaultOptions::default(),
                StopPoint { pass: 0, cursor: 4 },
            )
            .expect_suspended("stops mid first pass");
        Executor::new(deployment(2, 8)).resume_from(
            &TwoPass,
            &ds,
            ck,
            &FaultSchedule::none(),
            &FaultOptions::default(),
        );
    }
}
