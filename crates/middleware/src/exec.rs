//! The executor: drives an application over a deployment, pass by pass.

use crate::api::{PassOutcome, ReductionApp, ReductionObject};
use crate::comm::{self, TransferFlow};
use crate::computeserver::{self, CacheTraffic};
use crate::dataserver;
use crate::meter::WorkMeter;
use crate::report::{CacheMode, ExecutionReport, PassReport};
use fg_chunks::{distribution, partition, Dataset};
use fg_cluster::Deployment;
use fg_sim::SimDuration;

/// Outcome of a full execution: the measured report plus the
/// application's final state.
pub struct RunResult<S> {
    /// Measured time breakdown.
    pub report: ExecutionReport,
    /// The application's final state (clusters found, features detected,
    /// ...).
    pub final_state: S,
}

/// Executes FREERIDE-G applications on a deployment.
pub struct Executor {
    deployment: Deployment,
}

impl Executor {
    /// An executor for the given deployment.
    pub fn new(deployment: Deployment) -> Executor {
        Executor { deployment }
    }

    /// The deployment this executor runs on.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Run `app` over `dataset` to completion.
    ///
    /// The dataset must have at least as many chunks as there are data
    /// nodes, so every data node holds data (a configuration that leaves
    /// repository nodes empty is a resource-selection bug, not a
    /// middleware condition).
    pub fn run<A: ReductionApp>(&self, app: &A, dataset: &Dataset) -> RunResult<A::State> {
        let d = &self.deployment;
        let n = d.config.data_nodes;
        let c = d.config.compute_nodes;
        assert!(
            dataset.num_chunks() >= n,
            "dataset {} has {} chunks but the configuration uses {} data nodes",
            dataset.id,
            dataset.num_chunks(),
            n
        );
        let inflation = dataset.work_inflation();

        // Static plan: chunk -> data node, chunk -> compute node.
        let placement = partition::contiguous(dataset.num_chunks(), n);
        let dest = distribution::assign_destinations(&placement, c);

        // Per-data-node retrieval shares.
        let mut dn_bytes = vec![0u64; n];
        let mut dn_chunks = vec![0usize; n];
        for (dn, chunks) in placement.iter().enumerate() {
            for &k in chunks {
                dn_bytes[dn] += dataset.chunks[k].logical_bytes;
                dn_chunks[dn] += 1;
            }
        }

        // Per-(data node, compute node) transfer flows.
        let mut flow_map = std::collections::BTreeMap::<(usize, usize), (u64, usize)>::new();
        for (dn, chunks) in placement.iter().enumerate() {
            for &k in chunks {
                let entry = flow_map.entry((dn, dest[k])).or_insert((0, 0));
                entry.0 += dataset.chunks[k].logical_bytes;
                entry.1 += 1;
            }
        }
        let flows: Vec<TransferFlow> = flow_map
            .into_iter()
            .map(|((dn, cn), (bytes, chunks))| TransferFlow {
                data_node: dn,
                compute_node: cn,
                bytes,
                chunks,
            })
            .collect();

        // Per-compute-node chunk lists, in chunk order.
        let mut node_chunks: Vec<Vec<usize>> = vec![Vec::new(); c];
        for (k, &cn) in dest.iter().enumerate() {
            node_chunks[cn].push(k);
        }

        // Per-compute-node volumes (for cache planning and cache-site
        // traffic).
        let node_bytes: Vec<u64> = node_chunks
            .iter()
            .map(|list| list.iter().map(|&k| dataset.chunks[k].logical_bytes).sum())
            .collect();
        let node_chunk_counts: Vec<usize> = node_chunks.iter().map(Vec::len).collect();

        let site = &d.compute;
        let machine = &site.machine;

        // Decide how chunks persist between passes: locally if every
        // node's share fits its scratch storage, at the non-local caching
        // site if one is attached, else by re-fetching from the origin.
        let max_node_bytes = node_bytes.iter().copied().max().unwrap_or(0);
        let cache_mode = if !app.caches() {
            CacheMode::SinglePass
        } else if max_node_bytes <= site.node_storage_bytes {
            CacheMode::Local
        } else if d.cache.is_some() {
            CacheMode::NonLocal
        } else {
            CacheMode::Refetch
        };

        // Cache-site traffic plan (compute node <-> cache node, banded).
        let cache_plan = d.cache.as_ref().map(|cs| {
            let eff_nodes = cs.nodes.min(c);
            let flows: Vec<TransferFlow> = (0..c)
                .filter(|&p| node_bytes[p] > 0)
                .map(|p| TransferFlow {
                    // `data_node` is the cache-site side of the stream.
                    data_node: p * eff_nodes / c,
                    compute_node: p,
                    bytes: node_bytes[p],
                    chunks: node_chunk_counts[p],
                })
                .collect();
            let mut per_node_bytes = vec![0u64; eff_nodes];
            let mut per_node_chunks = vec![0usize; eff_nodes];
            for f in &flows {
                per_node_bytes[f.data_node] += f.bytes;
                per_node_chunks[f.data_node] += f.chunks;
            }
            (cs, eff_nodes, flows, per_node_bytes, per_node_chunks)
        });

        let mut state = app.initial_state();
        let mut passes: Vec<PassReport> = Vec::new();

        loop {
            assert!(
                passes.len() < app.max_passes(),
                "application {} exceeded its pass bound of {}",
                app.name(),
                app.max_passes()
            );
            let pass_idx = passes.len();
            // Caching runs fetch from the origin once; single-pass and
            // storage-starved (Refetch) runs fetch every pass (the paper:
            // "if caching was performed on the initial iteration, each
            // subsequent pass retrieves data chunks from local disk").
            let remote = pass_idx == 0
                || matches!(cache_mode, CacheMode::SinglePass | CacheMode::Refetch);

            // Phase 1: origin repository retrieval.
            let retrieval = if remote {
                dataserver::retrieval_makespan(&d.repository, &dn_bytes, &dn_chunks)
            } else {
                SimDuration::ZERO
            };

            // Phase 2: origin WAN transfer.
            let network = if remote {
                comm::transfer_makespan(&d.wan, &d.repository.machine, machine, n, c, &flows)
            } else {
                SimDuration::ZERO
            };

            // Non-local cache traffic: write-through on the first pass,
            // reads on later passes.
            let (cache_disk, cache_network) = if cache_mode == CacheMode::NonLocal {
                let (cs, eff_nodes, cache_flows, pnb, pnc) =
                    cache_plan.as_ref().expect("NonLocal implies a cache site");
                let disk = dataserver::retrieval_makespan(&cs.site, pnb, pnc);
                let net = if pass_idx == 0 {
                    // Compute nodes stream to the cache site.
                    comm::transfer_makespan(&cs.wan, machine, &cs.site.machine, c, *eff_nodes,
                        &cache_flows.iter().map(|f| TransferFlow {
                            data_node: f.compute_node,
                            compute_node: f.data_node,
                            bytes: f.bytes,
                            chunks: f.chunks,
                        }).collect::<Vec<_>>())
                } else {
                    // The cache site streams back to the compute nodes.
                    comm::transfer_makespan(
                        &cs.wan,
                        &cs.site.machine,
                        machine,
                        *eff_nodes,
                        c,
                        cache_flows,
                    )
                };
                (disk, net)
            } else {
                (SimDuration::ZERO, SimDuration::ZERO)
            };

            // Phase 3: local reductions (real execution; SMP nodes fold
            // on all cores and combine node-locally).
            let results = computeserver::run_local_reductions(
                app,
                &state,
                dataset,
                &node_chunks,
                machine.cores,
            );
            let cache = if cache_mode != CacheMode::Local {
                CacheTraffic::None
            } else if pass_idx == 0 {
                CacheTraffic::Write
            } else {
                CacheTraffic::Read
            };
            let local_compute = results
                .iter()
                .map(|r| computeserver::node_compute_time(r, machine, &site.costs, inflation, cache))
                .max()
                .unwrap_or(SimDuration::ZERO);

            // Phase 4: reduction-object communication (serialized gather).
            let obj_bytes: Vec<u64> = results
                .iter()
                .map(|r| r.obj.size().logical(inflation))
                .collect();
            let t_ro = comm::gather_time(site, &obj_bytes[1..]);
            let max_obj_bytes = obj_bytes.iter().copied().max().unwrap_or(0);

            // Phase 5: global reduction at the master (node 0): handle
            // every object (the master's own included), merge, finalize,
            // broadcast the next state.
            let mut results = results;
            let mut master_meter = WorkMeter::new();
            let mut iter = results.drain(..);
            let mut merged = iter.next().expect("at least one compute node").obj;
            for r in iter {
                merged.merge(&r.obj, &mut master_meter);
            }
            let outcome = app.global_finalize(&state, merged, &mut master_meter);
            let (next_state, finished) = match outcome {
                PassOutcome::NextPass(s) => (s, false),
                PassOutcome::Finished(s) => (s, true),
            };
            let broadcast = if finished {
                SimDuration::ZERO
            } else {
                comm::broadcast_time(
                    site,
                    app.state_size(&next_state).logical(inflation),
                    c,
                )
            };
            let t_g = site.costs.obj_handling * c as u64
                + master_meter.time_on(machine, inflation)
                + broadcast;

            passes.push(PassReport {
                retrieval,
                network,
                cache_disk,
                cache_network,
                local_compute,
                t_ro,
                t_g,
                max_obj_bytes,
            });
            state = next_state;
            if finished {
                break;
            }
        }

        let report = ExecutionReport {
            app: app.name().to_string(),
            dataset: dataset.id.clone(),
            dataset_bytes: dataset.logical_bytes(),
            data_nodes: n,
            compute_nodes: c,
            wan_bw: d.wan.stream_bw,
            repo_machine: d.repository.machine.name.clone(),
            compute_machine: machine.name.clone(),
            cache_mode,
            passes,
        };
        RunResult { report, final_state: state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ObjSize;
    use fg_chunks::{codec, DatasetBuilder};
    use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};

    /// Two-pass app: pass 1 sums elements, pass 2 counts elements above
    /// the mean. Exercises caching, state broadcast, and merge.
    struct TwoPass;

    #[derive(Clone)]
    struct Acc {
        sum: f64,
        count: u64,
    }

    impl ReductionObject for Acc {
        fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
            self.sum += other.sum;
            self.count += other.count;
            meter.fixed_flops(2);
        }
        fn size(&self) -> ObjSize {
            ObjSize { fixed: 16, data: 0 }
        }
    }

    #[derive(Clone)]
    enum Phase {
        ComputeMean,
        CountAbove(f64),
        Done(u64),
    }

    impl ReductionApp for TwoPass {
        type Obj = Acc;
        type State = Phase;
        fn name(&self) -> &str {
            "two-pass"
        }
        fn initial_state(&self) -> Phase {
            Phase::ComputeMean
        }
        fn new_object(&self, _: &Phase) -> Acc {
            Acc { sum: 0.0, count: 0 }
        }
        fn local_reduce(&self, state: &Phase, chunk: &fg_chunks::Chunk, obj: &mut Acc, meter: &mut WorkMeter) {
            let vals = codec::decode_f32s(&chunk.payload);
            match state {
                Phase::ComputeMean => {
                    for v in &vals {
                        obj.sum += *v as f64;
                        obj.count += 1;
                    }
                }
                Phase::CountAbove(mean) => {
                    for v in &vals {
                        if (*v as f64) > *mean {
                            obj.count += 1;
                        }
                    }
                }
                Phase::Done(_) => unreachable!("no pass after Done"),
            }
            meter.data_flops(vals.len() as u64);
        }
        fn global_finalize(&self, state: &Phase, merged: Acc, _: &mut WorkMeter) -> PassOutcome<Phase> {
            match state {
                Phase::ComputeMean => {
                    PassOutcome::NextPass(Phase::CountAbove(merged.sum / merged.count as f64))
                }
                Phase::CountAbove(_) => PassOutcome::Finished(Phase::Done(merged.count)),
                Phase::Done(_) => unreachable!(),
            }
        }
        fn state_size(&self, _: &Phase) -> ObjSize {
            ObjSize { fixed: 8, data: 0 }
        }
        fn caches(&self) -> bool {
            true
        }
    }

    fn dataset(chunks: usize, per_chunk: usize) -> Dataset {
        let mut b = DatasetBuilder::new("d", "t", 1.0);
        let mut x = 0u32;
        for _ in 0..chunks {
            let vals: Vec<f32> = (0..per_chunk)
                .map(|_| {
                    x += 1;
                    x as f32
                })
                .collect();
            b.push_chunk(codec::encode_f32s(&vals), per_chunk as u64, None);
        }
        b.build()
    }

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(1e6),
            Configuration::new(n, c),
        )
    }

    #[test]
    fn two_pass_app_gets_right_answer_on_any_configuration() {
        let ds = dataset(8, 100); // values 1..=800, mean 400.5 -> 400 above
        for (n, c) in [(1, 1), (2, 4), (4, 8), (8, 16)] {
            let result = Executor::new(deployment(n, c)).run(&TwoPass, &ds);
            match result.final_state {
                Phase::Done(count) => assert_eq!(count, 400, "config {n}-{c}"),
                _ => panic!("did not finish"),
            }
            assert_eq!(result.report.num_passes(), 2);
        }
    }

    #[test]
    fn caching_suppresses_second_pass_io() {
        let ds = dataset(8, 100);
        let r = Executor::new(deployment(2, 2)).run(&TwoPass, &ds).report;
        assert!(!r.passes[0].retrieval.is_zero());
        assert!(!r.passes[0].network.is_zero());
        assert!(r.passes[1].retrieval.is_zero());
        assert!(r.passes[1].network.is_zero());
    }

    #[test]
    fn single_node_has_no_gather_cost() {
        let ds = dataset(4, 10);
        let r = Executor::new(deployment(1, 1)).run(&TwoPass, &ds).report;
        assert!(r.t_ro().is_zero());
        // But t_g is nonzero: the master still handles its own object.
        assert!(!r.t_g().is_zero());
    }

    #[test]
    fn gather_cost_grows_with_compute_nodes() {
        let ds = dataset(16, 10);
        let r2 = Executor::new(deployment(1, 2)).run(&TwoPass, &ds).report;
        let r8 = Executor::new(deployment(1, 8)).run(&TwoPass, &ds).report;
        assert!(r8.t_ro() > r2.t_ro());
        assert!(r8.t_g() > r2.t_g());
    }

    #[test]
    fn more_data_nodes_speed_up_retrieval() {
        let ds = dataset(16, 1000);
        let r1 = Executor::new(deployment(1, 4)).run(&TwoPass, &ds).report;
        let r4 = Executor::new(deployment(4, 4)).run(&TwoPass, &ds).report;
        assert!(r4.t_disk() < r1.t_disk());
        assert!(r4.t_network() < r1.t_network());
    }

    #[test]
    fn report_identifies_the_run() {
        let ds = dataset(4, 10);
        let r = Executor::new(deployment(2, 4)).run(&TwoPass, &ds).report;
        assert_eq!(r.app, "two-pass");
        assert_eq!(r.data_nodes, 2);
        assert_eq!(r.compute_nodes, 4);
        assert_eq!(r.dataset_bytes, ds.logical_bytes());
        assert_eq!(r.repo_machine, "pentium-700");
    }

    #[test]
    #[should_panic(expected = "chunks but the configuration")]
    fn too_few_chunks_rejected() {
        let ds = dataset(2, 10);
        Executor::new(deployment(4, 4)).run(&TwoPass, &ds);
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = dataset(8, 50);
        let a = Executor::new(deployment(2, 8)).run(&TwoPass, &ds).report;
        let b = Executor::new(deployment(2, 8)).run(&TwoPass, &ds).report;
        assert_eq!(a.total(), b.total());
        assert_eq!(a.t_ro(), b.t_ro());
        assert_eq!(a.t_g(), b.t_g());
    }
}
