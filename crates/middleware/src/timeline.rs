//! Text timelines of execution reports.
//!
//! Renders the phase structure of a run as a proportional text Gantt
//! chart — the quickest way to see where a configuration's time goes
//! and why the prediction model treats components the way it does.

use crate::report::ExecutionReport;
use fg_sim::SimDuration;
use std::fmt::Write as _;

/// Width of the bar area in characters.
const BAR_WIDTH: usize = 60;

/// Phase kinds shown in the timeline, with their bar glyphs.
const PHASES: [(&str, char); 7] = [
    ("retrieval", 'D'),
    ("network", 'N'),
    ("cache i/o", 'K'),
    ("compute", 'C'),
    ("gather", 'R'),
    ("global", 'G'),
    ("recovery", 'F'),
];

/// Render the report as a per-pass Gantt chart plus a component summary.
pub fn render(report: &ExecutionReport) -> String {
    let total = report.total().as_secs_f64().max(1e-12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {}-{} ({} x {}): {:.2}s total, {:?} caching",
        report.app,
        report.data_nodes,
        report.compute_nodes,
        report.compute_machine,
        report.repo_machine,
        total,
        report.cache_mode,
    );
    for (i, pass) in report.passes.iter().enumerate() {
        let spans = [
            pass.retrieval,
            pass.network,
            pass.cache_disk + pass.cache_network,
            pass.local_compute,
            pass.t_ro,
            pass.t_g,
            pass.recovery(),
        ];
        // Round cumulatively: each phase draws up to its running total's
        // rounded cell count, so the bar never exceeds BAR_WIDTH no
        // matter how the per-phase fractions round.
        let mut bar = String::new();
        let mut acc = 0.0;
        for (dur, (_, glyph)) in spans.iter().zip(PHASES.iter()) {
            acc += dur.as_secs_f64();
            let target = ((acc / total * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
            let cells = target.saturating_sub(bar.len());
            for _ in 0..cells {
                bar.push(*glyph);
            }
        }
        let _ = writeln!(out, "pass {i:>3} |{bar:<BAR_WIDTH$}| {:.2}s", pass.total().as_secs_f64());
    }
    let components: [(&str, SimDuration); 6] = [
        ("T_disk", report.t_disk()),
        ("T_network", report.t_network()),
        ("T_compute", report.t_compute()),
        ("  of which T_ro", report.t_ro()),
        ("  of which T_g", report.t_g()),
        ("T_recovery", report.t_recovery()),
    ];
    for (name, dur) in components {
        let _ = writeln!(
            out,
            "{name:>16}: {:>10.2}s ({:>5.1}%)",
            dur.as_secs_f64(),
            dur.as_secs_f64() / total * 100.0
        );
    }
    let _ = writeln!(out, "legend: {}", PHASES.map(|(name, g)| format!("{g}={name}")).join("  "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CacheMode, PassReport};

    fn report() -> ExecutionReport {
        ExecutionReport {
            app: "kmeans".into(),
            dataset: "d".into(),
            dataset_bytes: 1000,
            data_nodes: 2,
            compute_nodes: 4,
            wan_bw: 1e6,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
            cache_mode: CacheMode::Local,
            passes: vec![
                PassReport {
                    retrieval: SimDuration::from_secs(10),
                    network: SimDuration::from_secs(10),
                    cache_disk: SimDuration::ZERO,
                    cache_network: SimDuration::ZERO,
                    local_compute: SimDuration::from_secs(30),
                    t_ro: SimDuration::from_secs(5),
                    t_g: SimDuration::from_secs(5),
                    max_obj_bytes: 8,
                    ..PassReport::default()
                },
                PassReport {
                    retrieval: SimDuration::ZERO,
                    network: SimDuration::ZERO,
                    cache_disk: SimDuration::ZERO,
                    cache_network: SimDuration::ZERO,
                    local_compute: SimDuration::from_secs(35),
                    t_ro: SimDuration::from_secs(2),
                    t_g: SimDuration::from_secs(3),
                    max_obj_bytes: 8,
                    ..PassReport::default()
                },
            ],
        }
    }

    #[test]
    fn renders_all_passes_and_components() {
        let s = render(&report());
        assert!(s.contains("pass   0"));
        assert!(s.contains("pass   1"));
        assert!(s.contains("T_disk"));
        assert!(s.contains("T_network"));
        assert!(s.contains("of which T_ro"));
        assert!(s.contains("legend:"));
    }

    #[test]
    fn bar_lengths_are_proportional() {
        let s = render(&report());
        let pass0 = s.lines().find(|l| l.starts_with("pass   0")).unwrap();
        // 30s compute of 100s total over 60 cells = 18 'C' glyphs.
        let c_count = pass0.chars().filter(|&c| c == 'C').count();
        assert_eq!(c_count, 18, "line: {pass0}");
        let d_count = pass0.chars().filter(|&c| c == 'D').count();
        assert_eq!(d_count, 6);
    }

    #[test]
    fn zero_phases_render_no_glyphs() {
        let s = render(&report());
        let pass1 = s.lines().find(|l| l.starts_with("pass   1")).unwrap();
        assert_eq!(pass1.chars().filter(|&c| c == 'D').count(), 0);
        assert_eq!(pass1.chars().filter(|&c| c == 'N').count(), 0);
        // Fault-free runs show no recovery glyphs at all.
        assert_eq!(s.chars().filter(|&c| c == 'F').count(), 1); // legend only
    }

    #[test]
    fn bar_never_exceeds_width_at_adversarial_ratios() {
        // Seven equal phases: each is 60/7 ~= 8.571 cells, which rounds up
        // to 9 — independent rounding would emit 63 glyphs into a 60-cell
        // bar. Cumulative rounding must land on exactly BAR_WIDTH.
        let r = ExecutionReport {
            passes: vec![PassReport {
                retrieval: SimDuration::from_secs(1),
                network: SimDuration::from_secs(1),
                cache_disk: SimDuration::from_secs(1),
                cache_network: SimDuration::ZERO,
                local_compute: SimDuration::from_secs(1),
                t_ro: SimDuration::from_secs(1),
                t_g: SimDuration::from_secs(1),
                fault_detection: SimDuration::from_secs(1),
                ..PassReport::default()
            }],
            ..report()
        };
        let s = render(&r);
        let pass0 = s.lines().find(|l| l.starts_with("pass   0")).unwrap();
        let bar = pass0.split('|').nth(1).unwrap();
        assert_eq!(bar.len(), BAR_WIDTH, "line: {pass0}");
        assert_eq!(bar.trim_end().len(), BAR_WIDTH, "bar underfilled: {pass0}");
        // Every phase still appears, within a cell of its fair share.
        for glyph in ['D', 'N', 'K', 'C', 'R', 'G', 'F'] {
            let n = bar.chars().filter(|&c| c == glyph).count();
            assert!((8..=9).contains(&n), "{glyph} drew {n} cells: {pass0}");
        }
    }

    #[test]
    fn recovery_time_renders_its_own_phase() {
        let mut r = report();
        // 20s of a 120s total over 60 cells = 10 'F' glyphs.
        r.passes[0].fault_detection = SimDuration::from_secs(12);
        r.passes[0].straggler_recovery = SimDuration::from_secs(8);
        let s = render(&r);
        let pass0 = s.lines().find(|l| l.starts_with("pass   0")).unwrap();
        assert_eq!(pass0.chars().filter(|&c| c == 'F').count(), 10, "line: {pass0}");
        assert!(s.contains("T_recovery"));
        assert!(s.contains("F=recovery"));
    }
}
