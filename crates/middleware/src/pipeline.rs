//! Pipelined (overlapped) execution — an extension beyond the paper.
//!
//! The paper's additive model, `T_exec = T_disk + T_network + T_compute`,
//! matches a *phase-structured* runtime: all chunks are retrieved, then
//! shipped, then processed. A streaming middleware can instead overlap
//! the stages: a chunk is transferred while the next is read, and
//! processed while others are in flight. This module implements that
//! mode as a chunk-level queueing simulation (per-data-node disk and
//! uplink servers, per-compute-node core pools, serialized gather at the
//! master) and reports how much the overlap saves — i.e. how far the
//! additive model would over-predict on a pipelined system.
//!
//! Results (the application's final state) are identical to the
//! phase-based executor: the same chunks are folded in the same per-node
//! order; only the virtual-time accounting differs.
//!
//! Limitations (asserted): local or no caching only — the non-local
//! caching extension remains phase-based.

use crate::api::{PassOutcome, ReductionApp, ReductionObject};
use crate::comm;
use crate::meter::WorkMeter;
use crate::report::CacheMode;
use fg_chunks::{distribution, partition, Dataset};
use fg_cluster::Deployment;
use fg_sim::{FifoServer, ServerPool, SimDuration, SimTime};
use fg_trace::{NodeRef, RunMeta, SpanKind, Trace, Tracer};
use rayon::prelude::*;

/// Outcome of a pipelined execution.
pub struct PipelinedRun<S> {
    /// End-to-end virtual time.
    pub total: SimDuration,
    /// Per-pass completion spans.
    pub pass_totals: Vec<SimDuration>,
    /// The cache mode used (Local or SinglePass).
    pub cache_mode: CacheMode,
    /// The application's final state.
    pub final_state: S,
}

/// Run `app` over `dataset` with chunk-level stage overlap.
pub fn run_pipelined<A: ReductionApp>(
    deployment: &Deployment,
    app: &A,
    dataset: &Dataset,
) -> PipelinedRun<A::State> {
    run_pipelined_inner(deployment, app, dataset, None)
}

/// [`run_pipelined`] with trace capture. Stage overlap has no
/// phase-makespan structure, so the trace is coarser than the phased
/// executor's: per-pass spans with per-node compute completion, the
/// gather window, and the global reduction, on the cumulative clock.
pub fn run_pipelined_traced<A: ReductionApp>(
    deployment: &Deployment,
    app: &A,
    dataset: &Dataset,
) -> (PipelinedRun<A::State>, Trace) {
    let mut tracer = Tracer::new();
    let run = run_pipelined_inner(deployment, app, dataset, Some(&mut tracer));
    let meta = RunMeta {
        app: app.name().to_string(),
        dataset: dataset.id.clone(),
        dataset_bytes: dataset.logical_bytes(),
        data_nodes: deployment.config.data_nodes,
        compute_nodes: deployment.config.compute_nodes,
        wan_bw: deployment.wan.stream_bw,
        repo_machine: deployment.repository.machine.name.clone(),
        compute_machine: deployment.compute.machine.name.clone(),
        cache_mode: run.cache_mode.label().to_string(),
    };
    (run, tracer.finish(Some(meta)))
}

fn run_pipelined_inner<A: ReductionApp>(
    deployment: &Deployment,
    app: &A,
    dataset: &Dataset,
    mut tracer: Option<&mut Tracer>,
) -> PipelinedRun<A::State> {
    let d = deployment;
    assert!(
        d.cache.is_none(),
        "pipelined execution supports local caching only; remove the cache site"
    );
    let n = d.config.data_nodes;
    let c = d.config.compute_nodes;
    assert!(dataset.num_chunks() >= n, "fewer chunks than data nodes");
    let inflation = dataset.work_inflation();

    let placement = partition::contiguous(dataset.num_chunks(), n);
    let dest = distribution::assign_destinations(&placement, c);
    let mut node_chunks: Vec<Vec<usize>> = vec![Vec::new(); c];
    for (k, &cn) in dest.iter().enumerate() {
        node_chunks[cn].push(k);
    }
    // Which data node owns each chunk.
    let mut owner = vec![0usize; dataset.num_chunks()];
    for (dn, chunks) in placement.iter().enumerate() {
        for &k in chunks {
            owner[k] = dn;
        }
    }

    let site = &d.compute;
    let machine = &site.machine;
    let repo = &d.repository;
    // Effective per-node disk rate under the backplane cap, assuming all
    // n nodes stream concurrently (they do, in steady state).
    let disk_rate = repo.machine.disk_bw.min(repo.backplane_bw / n as f64);
    let uplink_rate = d.wan.stream_bw.min(repo.machine.nic_bw);

    let max_node_bytes: u64 = node_chunks
        .iter()
        .map(|list| list.iter().map(|&k| dataset.chunks[k].logical_bytes).sum())
        .max()
        .unwrap_or(0);
    let cache_mode = if !app.caches() {
        CacheMode::SinglePass
    } else {
        assert!(
            max_node_bytes <= site.node_storage_bytes,
            "pipelined execution requires chunks to fit compute-node storage"
        );
        CacheMode::Local
    };

    let mut state = app.initial_state();
    let mut pass_totals: Vec<SimDuration> = Vec::new();
    let mut total = SimDuration::ZERO;
    let run_span = tracer.as_deref_mut().map(|tr| tr.begin(SpanKind::Run, None, SimTime::ZERO));

    loop {
        assert!(pass_totals.len() < app.max_passes(), "pass bound exceeded");
        let pass_idx = pass_totals.len();
        let remote = pass_idx == 0 || cache_mode == CacheMode::SinglePass;

        // Fold chunks per node (real execution, per-chunk meters so each
        // chunk has its own service time). Parallel over nodes.
        struct NodeOutcome<O> {
            obj: O,
            chunk_times: Vec<SimDuration>,
        }
        let outcomes: Vec<NodeOutcome<A::Obj>> = node_chunks
            .par_iter()
            .map(|chunks| {
                let mut obj = app.new_object(&state);
                let mut chunk_times = Vec::with_capacity(chunks.len());
                for &k in chunks {
                    let mut meter = WorkMeter::new();
                    app.local_reduce(&state, &dataset.chunks[k], &mut obj, &mut meter);
                    chunk_times.push(meter.time_on(machine, inflation) + site.costs.chunk_dispatch);
                }
                NodeOutcome { obj, chunk_times }
            })
            .collect();

        // Queueing simulation of the pass: per-data-node disk and uplink
        // servers, per-compute-node core pools; chunks traverse
        // disk -> uplink -> cores in index order.
        let mut disks: Vec<FifoServer> = (0..n).map(|_| FifoServer::new()).collect();
        let mut uplinks: Vec<FifoServer> = (0..n).map(|_| FifoServer::new()).collect();
        let mut cores: Vec<ServerPool> =
            (0..c).map(|_| ServerPool::new(machine.cores.max(1))).collect();
        // Position of each chunk within its compute node's fold order.
        let mut chunk_pos = vec![0usize; dataset.num_chunks()];
        for chunks in &node_chunks {
            for (i, &k) in chunks.iter().enumerate() {
                chunk_pos[k] = i;
            }
        }
        let mut node_done = vec![SimTime::ZERO; c];
        for k in 0..dataset.num_chunks() {
            let chunk = &dataset.chunks[k];
            let cn = dest[k];
            let arrival_at_compute = if remote {
                let dn = owner[k];
                let read_service = repo.machine.disk_seek
                    + SimDuration::from_secs_f64(chunk.logical_bytes as f64 / disk_rate);
                let read = disks[dn].submit(SimTime::ZERO, read_service);
                let ship_service = d.wan.latency
                    + SimDuration::from_secs_f64(chunk.logical_bytes as f64 / uplink_rate);
                uplinks[dn].submit(read.end, ship_service).end
            } else {
                // Local cache read on the compute node's disk: model as a
                // per-chunk delay before the fold (the node's disk streams
                // ahead of the cores).
                SimTime::ZERO
                    + (machine.disk_seek
                        + site.costs.cache_chunk_overhead
                        + SimDuration::from_secs_f64(chunk.logical_bytes as f64 / machine.disk_bw))
                        * (chunk_pos[k] as u64 + 1)
            };
            let mut service = outcomes[cn].chunk_times[chunk_pos[k]];
            if cache_mode == CacheMode::Local && remote {
                // Write-through to the local cache overlaps the fold but
                // occupies the core's chunk slot.
                service += machine.disk_seek
                    + site.costs.cache_chunk_overhead
                    + SimDuration::from_secs_f64(chunk.logical_bytes as f64 / machine.disk_bw);
            }
            let (_, interval) = cores[cn].submit(arrival_at_compute, service);
            node_done[cn] = node_done[cn].max(interval.end);
        }

        // Gather: serialized at the master, each object sent when its
        // node finishes; the master receives them FIFO.
        let obj_sizes: Vec<u64> =
            outcomes.iter().map(|o| o.obj.size().logical(inflation)).collect();
        let mut gather = FifoServer::new();
        // Master's own object is ready at node_done[0].
        let mut order: Vec<usize> = (1..c).collect();
        order.sort_by_key(|&p| (node_done[p], p));
        let mut gather_end = node_done[0];
        for &p in &order {
            let service = site.costs.gather_latency
                + SimDuration::from_secs_f64(obj_sizes[p] as f64 / site.interconnect_bw);
            let interval = gather.submit(node_done[p], service);
            gather_end = gather_end.max(interval.end);
        }

        // Global reduction (same real merges as the phased path).
        let mut results = outcomes;
        let mut master_meter = WorkMeter::new();
        let mut iter = results.drain(..);
        let mut merged = iter.next().expect("at least one node").obj;
        for r in iter {
            merged.merge(&r.obj, &mut master_meter);
        }
        let outcome = app.global_finalize(&state, merged, &mut master_meter);
        let (next_state, finished) = match outcome {
            PassOutcome::NextPass(s) => (s, false),
            PassOutcome::Finished(s) => (s, true),
        };
        let broadcast = if finished {
            SimDuration::ZERO
        } else {
            comm::broadcast_time(site, app.state_size(&next_state).logical(inflation), c)
        };
        let t_g = site.costs.obj_handling * c as u64
            + master_meter.time_on(machine, inflation)
            + broadcast;
        let pass_total = gather_end.saturating_since(SimTime::ZERO) + t_g;

        // The pass's internal sim runs from its own zero; spans shift it
        // onto the cumulative clock.
        if let Some(tr) = tracer.as_deref_mut() {
            let start = SimTime::ZERO + total;
            let pass_span = tr.begin(SpanKind::Pass, None, start);
            for (p, done) in node_done.iter().enumerate() {
                let dt = done.saturating_since(SimTime::ZERO);
                if !dt.is_zero() {
                    tr.record(SpanKind::NodeCompute, Some(NodeRef::compute(p)), start, start + dt);
                }
            }
            if let Some(first_send) = order.iter().map(|&p| node_done[p]).min() {
                let g0 = start + first_send.saturating_since(SimTime::ZERO);
                let g1 = start + gather_end.saturating_since(SimTime::ZERO);
                if g1 > g0 {
                    tr.record(SpanKind::Gather, None, g0, g1);
                }
            }
            if !t_g.is_zero() {
                let g1 = start + gather_end.saturating_since(SimTime::ZERO);
                tr.record(SpanKind::GlobalReduce, Some(NodeRef::master()), g1, g1 + t_g);
            }
            tr.end(pass_span, start + pass_total);
            tr.metrics.counter("passes").inc();
        }

        pass_totals.push(pass_total);
        total += pass_total;
        state = next_state;
        if finished {
            break;
        }
    }

    if let (Some(tr), Some(id)) = (tracer, run_span) {
        tr.end(id, SimTime::ZERO + total);
    }

    PipelinedRun { total, pass_totals, cache_mode, final_state: state }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};

    // Reuse the sum app from the compute server tests via a local copy.
    use crate::api::ObjSize;
    use fg_chunks::{codec, DatasetBuilder};

    struct SumApp {
        passes: usize,
    }

    #[derive(Clone)]
    struct SumObj(f64);

    impl ReductionObject for SumObj {
        fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
            self.0 += other.0;
            meter.fixed_flops(1);
        }
        fn size(&self) -> ObjSize {
            ObjSize { fixed: 8, data: 0 }
        }
    }

    impl ReductionApp for SumApp {
        type Obj = SumObj;
        type State = (usize, f64);
        fn name(&self) -> &str {
            "sum"
        }
        fn initial_state(&self) -> (usize, f64) {
            (0, 0.0)
        }
        fn new_object(&self, _: &(usize, f64)) -> SumObj {
            SumObj(0.0)
        }
        fn local_reduce(
            &self,
            _: &(usize, f64),
            chunk: &fg_chunks::Chunk,
            obj: &mut SumObj,
            meter: &mut WorkMeter,
        ) {
            let vals = codec::decode_f32s(&chunk.payload);
            for v in &vals {
                obj.0 += *v as f64;
            }
            meter.data_flops(vals.len() as u64 * 50);
            meter.data_mem(vals.len() as u64 * 10);
        }
        fn global_finalize(
            &self,
            state: &(usize, f64),
            merged: SumObj,
            _: &mut WorkMeter,
        ) -> PassOutcome<(usize, f64)> {
            let next = (state.0 + 1, merged.0);
            if next.0 >= self.passes {
                PassOutcome::Finished(next)
            } else {
                PassOutcome::NextPass(next)
            }
        }
        fn state_size(&self, _: &(usize, f64)) -> ObjSize {
            ObjSize { fixed: 16, data: 0 }
        }
        fn caches(&self) -> bool {
            self.passes > 1
        }
    }

    fn dataset(chunks: usize, per_chunk: usize) -> Dataset {
        let mut b = DatasetBuilder::new("d", "t", 0.01);
        let mut x = 0u32;
        for _ in 0..chunks {
            let vals: Vec<f32> = (0..per_chunk)
                .map(|_| {
                    x = x.wrapping_mul(1103515245).wrapping_add(12345) & 0xffff;
                    (x % 100) as f32
                })
                .collect();
            b.push_chunk(codec::encode_f32s(&vals), per_chunk as u64, None);
        }
        b.build()
    }

    fn deployment(n: usize, c: usize) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(40e6),
            Configuration::new(n, c),
        )
    }

    #[test]
    fn pipelining_preserves_the_answer() {
        let ds = dataset(32, 500);
        let app = SumApp { passes: 3 };
        let phased = Executor::new(deployment(2, 4)).run(&app, &ds);
        let piped = run_pipelined(&deployment(2, 4), &app, &ds);
        assert_eq!(phased.final_state.1, piped.final_state.1);
        assert_eq!(piped.pass_totals.len(), 3);
    }

    #[test]
    fn overlap_never_loses_to_phases() {
        let ds = dataset(64, 500);
        for (n, c) in [(1, 1), (2, 4), (4, 8)] {
            for passes in [1usize, 3] {
                let app = SumApp { passes };
                let phased = Executor::new(deployment(n, c)).run(&app, &ds).report.total();
                let piped = run_pipelined(&deployment(n, c), &app, &ds).total;
                assert!(
                    piped <= phased,
                    "pipelined ({piped}) slower than phased ({phased}) at {n}-{c} x{passes}"
                );
            }
        }
    }

    #[test]
    fn overlap_is_bounded_below_by_the_slowest_stage() {
        let ds = dataset(64, 500);
        let app = SumApp { passes: 1 };
        let dep = deployment(2, 4);
        let phased = Executor::new(dep.clone()).run(&app, &ds).report;
        let piped = run_pipelined(&dep, &app, &ds).total;
        // Can't beat any single stage's makespan.
        let floor = phased
            .t_disk()
            .max(phased.t_network())
            .max(phased.passes.iter().map(|p| p.local_compute).sum());
        assert!(piped >= floor, "pipelined ({piped}) beat the slowest stage ({floor})");
    }

    #[test]
    fn overlap_saves_meaningfully_when_stages_are_balanced() {
        // I/O-heavy single pass: disk, network, and compute all
        // comparable; overlap should cut a visible fraction.
        let ds = dataset(64, 2000);
        let app = SumApp { passes: 1 };
        let dep = deployment(2, 2);
        let phased = Executor::new(dep.clone()).run(&app, &ds).report.total();
        let piped = run_pipelined(&dep, &app, &ds).total;
        let ratio = piped.as_secs_f64() / phased.as_secs_f64();
        assert!(ratio < 0.9, "expected >10% overlap savings, got ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "cache site")]
    fn cache_sites_are_rejected() {
        let ds = dataset(16, 10);
        let app = SumApp { passes: 2 };
        let mut dep = deployment(1, 1);
        dep.cache = Some(fg_cluster::CacheSite::new(
            RepositorySite::pentium_repository("cache", 4),
            2,
            Wan::per_stream(1e6),
        ));
        run_pipelined(&dep, &app, &ds);
    }
}
