//! Data movement: WAN chunk transfers, reduction-object gather, and
//! state broadcast.

use fg_cluster::{ComputeSite, MachineSpec, Wan};
use fg_sim::{FairShareSim, Flow, ResourceId, SimDuration, SimTime};

/// One sender→receiver aggregate transfer within a pass.
#[derive(Debug, Clone, Copy)]
pub struct TransferFlow {
    /// Sending data node.
    pub data_node: usize,
    /// Receiving compute node.
    pub compute_node: usize,
    /// Logical bytes moved.
    pub bytes: u64,
    /// Number of chunks (each pays the WAN per-chunk latency, serially
    /// within the stream).
    pub chunks: usize,
}

/// Virtual time to move all chunks of a pass from the repository to the
/// compute nodes.
///
/// Resource model: each data node's WAN uplink sustains
/// `min(nic, wan.stream_bw)` — the paper's per-path achievable bandwidth
/// `b`; each compute node's NIC caps its downlink; an optional aggregate
/// WAN cap (ablation only) throttles the sum of all streams. Flows from
/// one sender to its several receivers share that sender's uplink
/// max-min fairly.
pub fn transfer_makespan(
    wan: &Wan,
    sender: &MachineSpec,
    receiver: &MachineSpec,
    data_nodes: usize,
    compute_nodes: usize,
    flows: &[TransferFlow],
) -> SimDuration {
    transfer_times(wan, sender, receiver, data_nodes, compute_nodes, flows)
        .into_iter()
        .map(|(_, t)| t)
        .max()
        .unwrap_or(SimDuration::ZERO)
}

/// Per-flow completion times for one pass's WAN transfer: `(flow, time)`
/// for every flow with bytes to move, under the same resource model as
/// [`transfer_makespan`] (which is the maximum entry). The per-flow
/// breakdown feeds trace attribution.
pub fn transfer_times(
    wan: &Wan,
    sender: &MachineSpec,
    receiver: &MachineSpec,
    data_nodes: usize,
    compute_nodes: usize,
    flows: &[TransferFlow],
) -> Vec<(TransferFlow, SimDuration)> {
    let live: Vec<&TransferFlow> = flows.iter().filter(|f| f.bytes > 0).collect();
    if live.is_empty() {
        return Vec::new();
    }
    // Resources: [0, n) uplinks, [n, n+c) downlinks, optional aggregate.
    let uplink_bw = sender.nic_bw.min(wan.stream_bw);
    let mut capacities = Vec::with_capacity(data_nodes + compute_nodes + 1);
    capacities.extend(std::iter::repeat_n(uplink_bw, data_nodes));
    capacities.extend(std::iter::repeat_n(receiver.nic_bw, compute_nodes));
    let agg = wan.aggregate_cap.map(|cap| {
        capacities.push(cap);
        ResourceId(capacities.len() - 1)
    });
    let sim = FairShareSim::new(capacities);
    let sim_flows: Vec<Flow> = live
        .iter()
        .map(|f| {
            assert!(f.data_node < data_nodes && f.compute_node < compute_nodes);
            let mut resources =
                vec![ResourceId(f.data_node), ResourceId(data_nodes + f.compute_node)];
            if let Some(a) = agg {
                resources.push(a);
            }
            Flow {
                arrival: SimTime::ZERO,
                demand: f.bytes as f64,
                rate_cap: f64::INFINITY,
                resources,
            }
        })
        .collect();
    let outcomes = sim.run(&sim_flows);
    live.iter()
        .zip(outcomes.iter())
        .map(|(f, o)| {
            (**f, o.finish.saturating_since(SimTime::ZERO) + wan.latency * f.chunks as u64)
        })
        .collect()
}

/// Virtual time for the reduction-object communication phase (`T_ro`):
/// every non-master node ships its object to the master, serialized at
/// the master's NIC — `sum_i (l + r_i * w)` with `l` the middleware
/// gather latency and `1/w` the interconnect bandwidth. The paper models
/// this phase as "a serialized component of the parallel processing
/// time".
pub fn gather_time(site: &ComputeSite, non_master_obj_bytes: &[u64]) -> SimDuration {
    gather_times(site, non_master_obj_bytes).into_iter().sum()
}

/// Per-sender components of the gather phase, in sender order. The phase
/// is serialized at the master, so [`gather_time`] is the exact sum of
/// these (trace `node-send` spans are laid end to end from them).
pub fn gather_times(site: &ComputeSite, non_master_obj_bytes: &[u64]) -> Vec<SimDuration> {
    non_master_obj_bytes
        .iter()
        .map(|&bytes| {
            site.costs.gather_latency
                + SimDuration::from_secs_f64(bytes as f64 / site.interconnect_bw)
        })
        .collect()
}

/// Virtual time to broadcast the next pass's state from the master to all
/// `c` nodes: a binomial tree of depth `ceil(log2 c)`, each round costing
/// one broadcast-hop latency plus the wire time of the state.
pub fn broadcast_time(site: &ComputeSite, state_bytes: u64, compute_nodes: usize) -> SimDuration {
    if compute_nodes <= 1 {
        return SimDuration::ZERO;
    }
    let rounds = usize::BITS - (compute_nodes - 1).leading_zeros(); // ceil(log2 c)
    let per_round = site.costs.bcast_latency
        + SimDuration::from_secs_f64(state_bytes as f64 / site.interconnect_bw);
    per_round * rounds as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::MiddlewareCosts;

    fn machine(nic: f64) -> MachineSpec {
        MachineSpec { nic_bw: nic, ..MachineSpec::pentium_700() }
    }

    fn wan(bw: f64, latency_ms: u64) -> Wan {
        Wan { stream_bw: bw, latency: SimDuration::from_millis(latency_ms), aggregate_cap: None }
    }

    fn site(bw: f64, lat_ms: u64) -> ComputeSite {
        ComputeSite {
            name: "cs".into(),
            machine: MachineSpec::pentium_700(),
            max_nodes: 16,
            interconnect_bw: bw,
            node_storage_bytes: u64::MAX,
            costs: MiddlewareCosts {
                gather_latency: SimDuration::from_millis(lat_ms),
                bcast_latency: SimDuration::from_millis(lat_ms),
                ..MiddlewareCosts::default()
            },
        }
    }

    #[test]
    fn single_stream_runs_at_wan_bandwidth() {
        let t = transfer_makespan(
            &wan(100.0, 0),
            &machine(1e9),
            &machine(1e9),
            1,
            1,
            &[TransferFlow { data_node: 0, compute_node: 0, bytes: 1000, chunks: 1 }],
        );
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_latency_adds_serially() {
        let t = transfer_makespan(
            &wan(100.0, 2),
            &machine(1e9),
            &machine(1e9),
            1,
            1,
            &[TransferFlow { data_node: 0, compute_node: 0, bytes: 1000, chunks: 5 }],
        );
        assert!((t.as_secs_f64() - 10.010).abs() < 1e-9);
    }

    #[test]
    fn sender_uplink_is_shared_among_its_receivers() {
        // One data node feeding two compute nodes: each stream gets b/2,
        // so the phase takes the same time as one stream with all bytes.
        let one = transfer_makespan(
            &wan(100.0, 0),
            &machine(1e9),
            &machine(1e9),
            1,
            1,
            &[TransferFlow { data_node: 0, compute_node: 0, bytes: 1000, chunks: 1 }],
        );
        let two = transfer_makespan(
            &wan(100.0, 0),
            &machine(1e9),
            &machine(1e9),
            1,
            2,
            &[
                TransferFlow { data_node: 0, compute_node: 0, bytes: 500, chunks: 1 },
                TransferFlow { data_node: 0, compute_node: 1, bytes: 500, chunks: 1 },
            ],
        );
        assert_eq!(one, two);
    }

    #[test]
    fn independent_senders_scale_linearly() {
        // Two data nodes, two compute nodes, disjoint streams: half the
        // bytes per stream, half the time.
        let t = transfer_makespan(
            &wan(100.0, 0),
            &machine(1e9),
            &machine(1e9),
            2,
            2,
            &[
                TransferFlow { data_node: 0, compute_node: 0, bytes: 500, chunks: 1 },
                TransferFlow { data_node: 1, compute_node: 1, bytes: 500, chunks: 1 },
            ],
        );
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_cap_throttles_total() {
        let mut w = wan(100.0, 0);
        w.aggregate_cap = Some(100.0);
        let t = transfer_makespan(
            &w,
            &machine(1e9),
            &machine(1e9),
            2,
            2,
            &[
                TransferFlow { data_node: 0, compute_node: 0, bytes: 500, chunks: 1 },
                TransferFlow { data_node: 1, compute_node: 1, bytes: 500, chunks: 1 },
            ],
        );
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn slow_nic_binds_before_wan() {
        let t = transfer_makespan(
            &wan(1000.0, 0),
            &machine(50.0),
            &machine(1e9),
            1,
            1,
            &[TransferFlow { data_node: 0, compute_node: 0, bytes: 1000, chunks: 1 }],
        );
        assert!((t.as_secs_f64() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_transfer_is_zero() {
        assert_eq!(
            transfer_makespan(&wan(100.0, 1), &machine(1.0), &machine(1.0), 1, 1, &[]),
            SimDuration::ZERO
        );
    }

    #[test]
    fn gather_is_serialized_sum() {
        let s = site(100.0, 10);
        let t = gather_time(&s, &[500, 500, 1000]);
        // 3 * 10ms + (500+500+1000)/100 = 0.03 + 20
        assert!((t.as_secs_f64() - 20.03).abs() < 1e-9);
    }

    #[test]
    fn gather_of_nothing_is_zero() {
        assert_eq!(gather_time(&site(100.0, 10), &[]), SimDuration::ZERO);
    }

    #[test]
    fn broadcast_is_logarithmic() {
        let s = site(100.0, 10);
        assert_eq!(broadcast_time(&s, 0, 1), SimDuration::ZERO);
        let b2 = broadcast_time(&s, 100, 2); // 1 round
        let b16 = broadcast_time(&s, 100, 16); // 4 rounds
        assert_eq!(b16, b2 * 4);
        let b9 = broadcast_time(&s, 100, 9); // ceil(log2 9) = 4
        assert_eq!(b9, b16);
    }
}
