//! # fg-middleware — the FREERIDE-G runtime
//!
//! FREERIDE-G (FRamework for Rapid Implementation of Datamining Engines
//! in Grid) exposes a *generalized reduction* programming interface:
//! applications provide a reduction object, a local reduction folding
//! chunks into it, and a global reduction merging per-node objects. The
//! middleware handles everything else — remote retrieval, distribution,
//! data movement, caching, inter-processor communication.
//!
//! This crate reimplements that runtime over the `fg-sim` virtual-time
//! substrate. Application kernels execute **for real** (so results are
//! genuine and per-chunk work is data-dependent) while disk, network and
//! middleware costs accrue in virtual time. Each pass runs as five
//! phases, matching the component structure the paper's model predicts:
//!
//! 1. **Retrieval** — data nodes read their chunks (first pass only;
//!    later passes hit the compute-side cache).
//! 2. **Communication** — chunks ship to their assigned compute nodes
//!    across the WAN.
//! 3. **Processing** — each compute node folds its chunks into its
//!    reduction object (real execution, metered), plus cache write/read.
//! 4. **Reduction-object communication** — non-master nodes send their
//!    objects to the master, serialized (`T_ro`).
//! 5. **Global reduction** — the master merges objects, finalizes the
//!    pass, and broadcasts the next state (`T_g`).
//!
//! The reported breakdown `t_disk / t_network / t_compute` (with `t_ro`
//! and `t_g` inside `t_compute`) is exactly the profile the prediction
//! framework consumes.

#![warn(missing_docs)]

pub mod api;
pub mod checkpoint;
pub mod comm;
pub mod computeserver;
pub mod dataserver;
pub mod exec;
pub mod meter;
pub mod pipeline;
pub mod report;
pub mod timeline;

pub use api::{ObjSize, PassOutcome, ReductionApp, ReductionObject};
pub use checkpoint::{Checkpoint, ResumableOutcome, StopPoint};
pub use dataserver::RetryPolicy;
pub use exec::{Executor, FaultOptions, PassAction, PassController, PassObservation};
pub use meter::WorkMeter;
pub use pipeline::{run_pipelined, run_pipelined_traced, PipelinedRun};
pub use report::{CacheMode, ExecutionReport, PassReport};
