//! The data server: chunk retrieval at the repository.
//!
//! Every on-line data node reads its chunks from local disk. Disks stream
//! at `machine.disk_bw`, pay `machine.disk_seek` per chunk, and the
//! site's storage backplane caps the aggregate rate across concurrently
//! reading nodes — the source of the sub-linear retrieval scaling the
//! paper observes past four data nodes.

use fg_cluster::RepositorySite;
use fg_sim::{FairShareSim, Flow, ResourceId, SimDuration, SimTime};

/// Virtual time for the repository to read all chunks of one pass.
///
/// `per_node_bytes[d]` / `per_node_chunks[d]` describe data node `d`'s
/// share (logical bytes). Returns the makespan across nodes.
pub fn retrieval_makespan(
    repo: &RepositorySite,
    per_node_bytes: &[u64],
    per_node_chunks: &[usize],
) -> SimDuration {
    assert_eq!(per_node_bytes.len(), per_node_chunks.len());
    let reading: Vec<usize> = (0..per_node_bytes.len())
        .filter(|&d| per_node_bytes[d] > 0)
        .collect();
    if reading.is_empty() {
        return SimDuration::ZERO;
    }
    let sim = FairShareSim::new(vec![repo.backplane_bw]);
    let flows: Vec<Flow> = reading
        .iter()
        .map(|&d| Flow {
            arrival: SimTime::ZERO,
            demand: per_node_bytes[d] as f64,
            rate_cap: repo.machine.disk_bw,
            resources: vec![ResourceId(0)],
        })
        .collect();
    let outcomes = sim.run(&flows);
    reading
        .iter()
        .zip(outcomes.iter())
        .map(|(&d, o)| {
            let seeks = repo.machine.disk_seek * per_node_chunks[d] as u64;
            o.finish.saturating_since(SimTime::ZERO) + seeks
        })
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::MachineSpec;

    fn repo(disk_bw: f64, backplane: f64, seek_us: u64) -> RepositorySite {
        RepositorySite {
            name: "r".into(),
            machine: MachineSpec {
                disk_bw,
                disk_seek: SimDuration::from_micros(seek_us),
                ..MachineSpec::pentium_700()
            },
            max_nodes: 16,
            backplane_bw: backplane,
        }
    }

    #[test]
    fn single_node_reads_at_disk_speed() {
        let r = repo(100.0, 1000.0, 0);
        let t = retrieval_makespan(&r, &[1000], &[1]);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn seeks_add_per_chunk() {
        let r = repo(100.0, 1000.0, 1000); // 1 ms per chunk
        let t = retrieval_makespan(&r, &[1000], &[10]);
        assert!((t.as_secs_f64() - 10.01).abs() < 1e-9);
    }

    #[test]
    fn below_backplane_nodes_scale_linearly() {
        let r = repo(100.0, 1000.0, 0);
        let one = retrieval_makespan(&r, &[1000], &[1]);
        let four = retrieval_makespan(&r, &[250; 4], &[1; 4]);
        assert!((one.as_secs_f64() / four.as_secs_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn backplane_caps_aggregate_rate() {
        // 8 nodes at 100 B/s each want 800 aggregate, but the backplane
        // sustains 400: phase takes bytes_total / 400.
        let r = repo(100.0, 400.0, 0);
        let t = retrieval_makespan(&r, &[100; 8], &[1; 8]);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn empty_nodes_are_ignored() {
        let r = repo(100.0, 1000.0, 0);
        let t = retrieval_makespan(&r, &[1000, 0], &[1, 0]);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_empty_is_zero() {
        let r = repo(100.0, 1000.0, 0);
        assert_eq!(retrieval_makespan(&r, &[0, 0], &[0, 0]), SimDuration::ZERO);
    }

    #[test]
    fn makespan_is_slowest_node() {
        let r = repo(100.0, 1000.0, 0);
        let t = retrieval_makespan(&r, &[100, 1000], &[1, 1]);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }
}
