//! The data server: chunk retrieval at the repository.
//!
//! Every on-line data node reads its chunks from local disk. Disks stream
//! at `machine.disk_bw`, pay `machine.disk_seek` per chunk, and the
//! site's storage backplane caps the aggregate rate across concurrently
//! reading nodes — the source of the sub-linear retrieval scaling the
//! paper observes past four data nodes.

use fg_cluster::RepositorySite;
use fg_sim::{FairShareSim, Flow, ResourceId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-chunk fetch timeout and retry policy for remote retrieval.
///
/// A fetch from a crashed data node never answers; the middleware
/// declares the node dead after `fetch_timeout` elapses with no data,
/// retries against the node up to `max_retries` times with exponential
/// backoff (`backoff_base * backoff_multiplier^attempt` before retry
/// `attempt`), and only then reassigns the node's chunks to surviving
/// replica holders. [`RetryPolicy::detection_delay`] is the resulting
/// worst-case time to declare one node dead; timeouts against several
/// dead nodes run concurrently, so the delay is paid once per detection
/// round, not per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Time with no response after which one fetch attempt is abandoned.
    pub fetch_timeout: SimDuration,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Backoff growth factor per retry (`>= 1`).
    pub backoff_multiplier: f64,
    /// Retries after the initial attempt before the node is declared
    /// dead.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    /// 2 s timeout, 3 retries backing off 500 ms, 1 s, 2 s — a node is
    /// declared dead after 11.5 s of silence.
    fn default() -> RetryPolicy {
        RetryPolicy {
            fetch_timeout: SimDuration::from_secs(2),
            backoff_base: SimDuration::from_millis(500),
            backoff_multiplier: 2.0,
            max_retries: 3,
        }
    }
}

impl RetryPolicy {
    /// Time from first silent fetch to declaring the node dead: the
    /// initial timeout plus, per retry, its backoff and another timeout.
    pub fn detection_delay(&self) -> SimDuration {
        assert!(
            self.backoff_multiplier >= 1.0,
            "backoff must not shrink: {}",
            self.backoff_multiplier
        );
        let mut total = self.fetch_timeout;
        let mut backoff = self.backoff_base;
        for _ in 0..self.max_retries {
            total = total + backoff + self.fetch_timeout;
            backoff = backoff.mul_f64(self.backoff_multiplier);
        }
        total
    }
}

/// Per-node read times for one pass: `(data node index, time)` for every
/// node with a nonzero share. The phase makespan is the maximum entry;
/// the per-node breakdown feeds trace attribution.
pub fn retrieval_times(
    repo: &RepositorySite,
    per_node_bytes: &[u64],
    per_node_chunks: &[usize],
) -> Vec<(usize, SimDuration)> {
    assert_eq!(per_node_bytes.len(), per_node_chunks.len());
    let reading: Vec<usize> =
        (0..per_node_bytes.len()).filter(|&d| per_node_bytes[d] > 0).collect();
    if reading.is_empty() {
        return Vec::new();
    }
    let sim = FairShareSim::new(vec![repo.backplane_bw]);
    let flows: Vec<Flow> = reading
        .iter()
        .map(|&d| Flow {
            arrival: SimTime::ZERO,
            demand: per_node_bytes[d] as f64,
            rate_cap: repo.machine.disk_bw,
            resources: vec![ResourceId(0)],
        })
        .collect();
    let outcomes = sim.run(&flows);
    reading
        .iter()
        .zip(outcomes.iter())
        .map(|(&d, o)| {
            let seeks = repo.machine.disk_seek * per_node_chunks[d] as u64;
            (d, o.finish.saturating_since(SimTime::ZERO) + seeks)
        })
        .collect()
}

/// Virtual time for the repository to read all chunks of one pass.
///
/// `per_node_bytes[d]` / `per_node_chunks[d]` describe data node `d`'s
/// share (logical bytes). Returns the makespan across nodes.
pub fn retrieval_makespan(
    repo: &RepositorySite,
    per_node_bytes: &[u64],
    per_node_chunks: &[usize],
) -> SimDuration {
    retrieval_times(repo, per_node_bytes, per_node_chunks)
        .into_iter()
        .map(|(_, t)| t)
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::MachineSpec;

    fn repo(disk_bw: f64, backplane: f64, seek_us: u64) -> RepositorySite {
        RepositorySite {
            name: "r".into(),
            machine: MachineSpec {
                disk_bw,
                disk_seek: SimDuration::from_micros(seek_us),
                ..MachineSpec::pentium_700()
            },
            max_nodes: 16,
            backplane_bw: backplane,
        }
    }

    #[test]
    fn single_node_reads_at_disk_speed() {
        let r = repo(100.0, 1000.0, 0);
        let t = retrieval_makespan(&r, &[1000], &[1]);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn seeks_add_per_chunk() {
        let r = repo(100.0, 1000.0, 1000); // 1 ms per chunk
        let t = retrieval_makespan(&r, &[1000], &[10]);
        assert!((t.as_secs_f64() - 10.01).abs() < 1e-9);
    }

    #[test]
    fn below_backplane_nodes_scale_linearly() {
        let r = repo(100.0, 1000.0, 0);
        let one = retrieval_makespan(&r, &[1000], &[1]);
        let four = retrieval_makespan(&r, &[250; 4], &[1; 4]);
        assert!((one.as_secs_f64() / four.as_secs_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn backplane_caps_aggregate_rate() {
        // 8 nodes at 100 B/s each want 800 aggregate, but the backplane
        // sustains 400: phase takes bytes_total / 400.
        let r = repo(100.0, 400.0, 0);
        let t = retrieval_makespan(&r, &[100; 8], &[1; 8]);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn empty_nodes_are_ignored() {
        let r = repo(100.0, 1000.0, 0);
        let t = retrieval_makespan(&r, &[1000, 0], &[1, 0]);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_empty_is_zero() {
        let r = repo(100.0, 1000.0, 0);
        assert_eq!(retrieval_makespan(&r, &[0, 0], &[0, 0]), SimDuration::ZERO);
    }

    #[test]
    fn makespan_is_slowest_node() {
        let r = repo(100.0, 1000.0, 0);
        let t = retrieval_makespan(&r, &[100, 1000], &[1, 1]);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn detection_delay_sums_timeouts_and_backoffs() {
        let p = RetryPolicy {
            fetch_timeout: SimDuration::from_secs(2),
            backoff_base: SimDuration::from_millis(500),
            backoff_multiplier: 2.0,
            max_retries: 3,
        };
        // 2 + (0.5 + 2) + (1 + 2) + (2 + 2) = 11.5 s
        assert!((p.detection_delay().as_secs_f64() - 11.5).abs() < 1e-9);
    }

    #[test]
    fn zero_retries_means_one_timeout() {
        let p = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        assert_eq!(p.detection_delay(), p.fetch_timeout);
    }

    #[test]
    #[should_panic(expected = "backoff must not shrink")]
    fn shrinking_backoff_rejected() {
        let p = RetryPolicy { backoff_multiplier: 0.5, ..RetryPolicy::default() };
        p.detection_delay();
    }
}
