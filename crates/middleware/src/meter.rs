//! Work metering: how real execution turns into virtual compute time.
//!
//! Application kernels run for real and report the operations they
//! perform. Counts come in two flavors:
//!
//! * **data-proportional** work — loops over elements, detected features,
//!   candidate matches: anything that scales with dataset volume. When an
//!   experiment runs on reduced-scale data, these counts are inflated by
//!   `1/scale` so virtual time corresponds to the nominal dataset.
//! * **fixed** work — loops over application parameters (k centroids,
//!   catalog templates, query sets): independent of dataset volume, never
//!   inflated.
//!
//! The split is what keeps reduction-object classes honest: k-means'
//! global merge is fixed work regardless of scale, while defect
//! detection's catalog merge is data-proportional.

use fg_cluster::{MachineSpec, OpCounts};
use fg_sim::SimDuration;

/// Accumulates metered work during real kernel execution.
#[derive(Debug, Clone, Default)]
pub struct WorkMeter {
    data: OpCounts,
    fixed: OpCounts,
}

impl WorkMeter {
    /// A fresh, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record data-proportional floating-point operations.
    pub fn data_flops(&mut self, n: u64) {
        self.data.flop += n;
    }

    /// Record data-proportional memory operations.
    pub fn data_mem(&mut self, n: u64) {
        self.data.mem += n;
    }

    /// Record data-proportional compare/branch operations.
    pub fn data_cmp(&mut self, n: u64) {
        self.data.cmp += n;
    }

    /// Record fixed (parameter-proportional) floating-point operations.
    pub fn fixed_flops(&mut self, n: u64) {
        self.fixed.flop += n;
    }

    /// Record fixed memory operations.
    pub fn fixed_mem(&mut self, n: u64) {
        self.fixed.mem += n;
    }

    /// Record fixed compare/branch operations.
    pub fn fixed_cmp(&mut self, n: u64) {
        self.fixed.cmp += n;
    }

    /// Fold another meter's counts into this one.
    pub fn absorb(&mut self, other: &WorkMeter) {
        self.data += other.data;
        self.fixed += other.fixed;
    }

    /// Raw data-proportional counts.
    pub fn data_counts(&self) -> OpCounts {
        self.data
    }

    /// Raw fixed counts.
    pub fn fixed_counts(&self) -> OpCounts {
        self.fixed
    }

    /// Effective counts after inflating data-proportional work.
    pub fn effective(&self, inflation: f64) -> OpCounts {
        self.data.scaled(inflation) + self.fixed
    }

    /// Virtual time this work takes on one core of `machine`, with the
    /// given data-work inflation factor.
    pub fn time_on(&self, machine: &MachineSpec, inflation: f64) -> SimDuration {
        machine.compute_time(&self.effective(inflation))
    }

    /// Virtual time this work takes on one core of `machine` while
    /// `active_cores` cores of the node are busy (shared-memory bus
    /// contention applies to the memory-class operations).
    pub fn time_on_cores(
        &self,
        machine: &MachineSpec,
        inflation: f64,
        active_cores: usize,
    ) -> SimDuration {
        machine.compute_time_on_cores(&self.effective(inflation), active_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec {
            name: "t".into(),
            cores: 1,
            flop_per_sec: 100.0,
            mem_per_sec: 100.0,
            cmp_per_sec: 100.0,
            disk_bw: 1.0,
            disk_seek: SimDuration::ZERO,
            nic_bw: 1.0,
        }
    }

    #[test]
    fn inflation_applies_to_data_work_only() {
        let mut m = WorkMeter::new();
        m.data_flops(100);
        m.fixed_flops(100);
        let eff = m.effective(10.0);
        assert_eq!(eff.flop, 1100);
        // time = 1100 ops / 100 ops/s = 11 s
        assert_eq!(m.time_on(&machine(), 10.0), SimDuration::from_secs(11));
    }

    #[test]
    fn absorb_accumulates_both_channels() {
        let mut a = WorkMeter::new();
        a.data_mem(5);
        a.fixed_cmp(7);
        let mut b = WorkMeter::new();
        b.data_mem(3);
        b.fixed_cmp(2);
        a.absorb(&b);
        assert_eq!(a.data_counts().mem, 8);
        assert_eq!(a.fixed_counts().cmp, 9);
    }

    #[test]
    fn unit_inflation_is_identity() {
        let mut m = WorkMeter::new();
        m.data_flops(42);
        m.data_cmp(8);
        assert_eq!(m.effective(1.0), OpCounts { flop: 42, mem: 0, cmp: 8 });
    }
}
