//! The compute server: real execution of local reductions (including the
//! shared-memory path within SMP nodes), plus compute-side cache costs.
//!
//! Each simulated compute node folds its chunks into its reduction object
//! by actually running the application kernel. On an SMP node the chunks
//! are split round-robin across the node's cores, each core folds into a
//! replicated sub-object, and the sub-objects are combined node-locally —
//! FREERIDE's shared-memory reduction strategy, behind the same API.
//! Distinct nodes (and cores) are independent, so they execute on real
//! threads (rayon); within a worker, chunks are processed in assignment
//! order, keeping results and meters deterministic regardless of thread
//! scheduling.

use crate::api::{ReductionApp, ReductionObject};
use crate::meter::WorkMeter;
use fg_chunks::Dataset;
use fg_cluster::{MachineSpec, MiddlewareCosts};
use fg_sim::SimDuration;
use rayon::prelude::*;

/// Output of one node's local reduction for one pass.
pub struct NodeResult<O> {
    /// The node's (already node-locally combined) reduction object.
    pub obj: O,
    /// Metered kernel work of each active core, in core order.
    pub core_meters: Vec<WorkMeter>,
    /// Metered work of the intra-node sub-object combination.
    pub smp_merge: WorkMeter,
    /// Chunks processed by the node.
    pub chunks: usize,
    /// Logical bytes of those chunks.
    pub bytes: u64,
}

/// Run the local reduction of every compute node (in parallel, for real).
///
/// `node_chunks[p]` lists the chunk indices assigned to node `p`, in
/// processing order; `cores` is the node machine's processor count.
pub fn run_local_reductions<A: ReductionApp>(
    app: &A,
    state: &A::State,
    dataset: &Dataset,
    node_chunks: &[Vec<usize>],
    cores: usize,
) -> Vec<NodeResult<A::Obj>> {
    assert!(cores >= 1, "a compute node has at least one core");
    node_chunks
        .par_iter()
        .map(|chunks| {
            // Split this node's chunks round-robin across its cores.
            let active = cores.min(chunks.len()).max(1);
            let per_core: Vec<Vec<usize>> = (0..active)
                .map(|w| chunks.iter().skip(w).step_by(active).copied().collect())
                .collect();
            let mut core_results: Vec<(A::Obj, WorkMeter)> = per_core
                .par_iter()
                .map(|core_chunks| {
                    let mut obj = app.new_object(state);
                    let mut meter = WorkMeter::new();
                    for &k in core_chunks {
                        app.local_reduce(state, &dataset.chunks[k], &mut obj, &mut meter);
                    }
                    (obj, meter)
                })
                .collect();
            // Combine the replicated sub-objects node-locally (real,
            // metered work; runs on one core after the folds complete).
            let mut smp_merge = WorkMeter::new();
            let mut iter = core_results.drain(..);
            let (mut obj, first_meter) = iter.next().expect("at least one core");
            let mut core_meters = vec![first_meter];
            for (sub, meter) in iter {
                obj.merge(&sub, &mut smp_merge);
                core_meters.push(meter);
            }
            let bytes = chunks.iter().map(|&k| dataset.chunks[k].logical_bytes).sum();
            NodeResult { obj, core_meters, smp_merge, chunks: chunks.len(), bytes }
        })
        .collect()
}

/// One node's state after folding a *segment* of its chunk assignment:
/// the per-core partial objects (not yet combined node-locally) plus the
/// kernel meters and traffic of this segment only.
pub struct SegmentResult<O> {
    /// Per-core partial reduction objects, in core order.
    pub core_objs: Vec<O>,
    /// Metered kernel work of each core *for this segment*.
    pub core_meters: Vec<WorkMeter>,
    /// Chunks of this node inside the segment.
    pub chunks: usize,
    /// Logical bytes of those chunks.
    pub bytes: u64,
}

/// Run the local reduction of every compute node restricted to chunks
/// with global ids in `lo..hi`, optionally continuing from previously
/// checkpointed per-core objects.
///
/// The round-robin core split is computed from the node's *full* chunk
/// assignment and then filtered to the segment, so each core folds
/// exactly the same chunk sequence as an unsplit
/// [`run_local_reductions`] — a full-range segment followed by
/// [`combine_segment`] is bit-identical to the unsplit path, and so is
/// any prefix segment resumed with its suffix. That is the invariant the
/// checkpoint/resume machinery rests on.
#[allow(clippy::too_many_arguments)]
pub fn run_segment_reductions<A: ReductionApp>(
    app: &A,
    state: &A::State,
    dataset: &Dataset,
    node_chunks: &[Vec<usize>],
    cores: usize,
    lo: usize,
    hi: usize,
    initial: Option<Vec<Vec<A::Obj>>>,
) -> Vec<SegmentResult<A::Obj>> {
    assert!(cores >= 1, "a compute node has at least one core");
    let initial: Vec<Option<Vec<A::Obj>>> = match initial {
        Some(objs) => {
            assert_eq!(objs.len(), node_chunks.len(), "one object set per node");
            objs.into_iter().map(Some).collect()
        }
        None => node_chunks.iter().map(|_| None).collect(),
    };
    node_chunks
        .par_iter()
        .zip(initial.into_par_iter())
        .map(|(chunks, init)| {
            let active = cores.min(chunks.len()).max(1);
            let per_core: Vec<Vec<usize>> = (0..active)
                .map(|w| {
                    chunks
                        .iter()
                        .skip(w)
                        .step_by(active)
                        .copied()
                        .filter(|&k| k >= lo && k < hi)
                        .collect()
                })
                .collect();
            let init_objs: Vec<Option<A::Obj>> = match init {
                Some(objs) => {
                    assert_eq!(objs.len(), active, "one partial object per active core");
                    objs.into_iter().map(Some).collect()
                }
                None => (0..active).map(|_| None).collect(),
            };
            let results: Vec<(A::Obj, WorkMeter)> = per_core
                .par_iter()
                .zip(init_objs.into_par_iter())
                .map(|(core_chunks, init)| {
                    let mut obj = init.unwrap_or_else(|| app.new_object(state));
                    let mut meter = WorkMeter::new();
                    for &k in core_chunks {
                        app.local_reduce(state, &dataset.chunks[k], &mut obj, &mut meter);
                    }
                    (obj, meter)
                })
                .collect();
            let (core_objs, core_meters): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            let in_segment = |&k: &usize| k >= lo && k < hi;
            let bytes = chunks
                .iter()
                .filter(|k| in_segment(k))
                .map(|&k| dataset.chunks[k].logical_bytes)
                .sum();
            SegmentResult {
                core_objs,
                core_meters,
                chunks: chunks.iter().filter(|k| in_segment(k)).count(),
                bytes,
            }
        })
        .collect()
}

/// Combine one node's per-core partial objects node-locally, exactly as
/// [`run_local_reductions`] does at the end of a pass: merge in core
/// order into core 0's object, metering the merge work.
pub fn combine_segment<O: ReductionObject>(mut core_objs: Vec<O>) -> (O, WorkMeter) {
    let mut smp_merge = WorkMeter::new();
    let mut iter = core_objs.drain(..);
    let mut obj = iter.next().expect("at least one core");
    for sub in iter {
        obj.merge(&sub, &mut smp_merge);
    }
    (obj, smp_merge)
}

/// A node's processing time for one *segment* of a pass: the slowest
/// core's metered kernel work, per-chunk dispatch, and cache traffic for
/// the segment's chunks. The intra-node combination is not included —
/// it happens once, when the pass completes (see [`combine_segment`]).
pub fn segment_compute_time<O>(
    seg: &SegmentResult<O>,
    machine: &MachineSpec,
    costs: &MiddlewareCosts,
    inflation: f64,
    cache: CacheTraffic,
) -> SimDuration {
    let active = seg.core_meters.len();
    let kernel = seg
        .core_meters
        .iter()
        .map(|m| m.time_on_cores(machine, inflation, active))
        .max()
        .unwrap_or(SimDuration::ZERO);
    let dispatch = costs.chunk_dispatch * seg.chunks as u64;
    let cache_time = match cache {
        CacheTraffic::None => SimDuration::ZERO,
        CacheTraffic::Write => cache_write_time(machine, costs, seg.bytes, seg.chunks),
        CacheTraffic::Read => cache_read_time(machine, costs, seg.bytes, seg.chunks),
    };
    kernel + dispatch + cache_time
}

/// Virtual time for a node to write its chunks into the local cache
/// (first pass of a caching application): streamed at local disk
/// bandwidth plus a fixed per-chunk middleware overhead.
pub fn cache_write_time(
    machine: &MachineSpec,
    costs: &MiddlewareCosts,
    bytes: u64,
    chunks: usize,
) -> SimDuration {
    cache_io_time(machine, costs, bytes, chunks)
}

/// Virtual time for a node to re-read its chunks from the local cache
/// (subsequent passes). Same cost model as the write path.
pub fn cache_read_time(
    machine: &MachineSpec,
    costs: &MiddlewareCosts,
    bytes: u64,
    chunks: usize,
) -> SimDuration {
    cache_io_time(machine, costs, bytes, chunks)
}

fn cache_io_time(
    machine: &MachineSpec,
    costs: &MiddlewareCosts,
    bytes: u64,
    chunks: usize,
) -> SimDuration {
    if bytes == 0 {
        return SimDuration::ZERO;
    }
    SimDuration::from_secs_f64(bytes as f64 / machine.disk_bw)
        + (machine.disk_seek + costs.cache_chunk_overhead) * chunks as u64
}

/// A node's total processing time for one pass: the slowest core's
/// metered kernel work (under shared-memory-bus contention), the
/// intra-node sub-object combination, per-chunk dispatch overhead, and
/// any cache traffic. Cache reads and writes are charged here (to
/// compute time, not disk time) because they are compute-node-local
/// pipeline stages that scale with `1/c`, matching the prediction
/// model's treatment of `t_c`; repository-side retrieval is what the
/// model's `t_d` covers.
pub fn node_compute_time<O: ReductionObject>(
    result: &NodeResult<O>,
    machine: &MachineSpec,
    costs: &MiddlewareCosts,
    inflation: f64,
    cache: CacheTraffic,
) -> SimDuration {
    let active = result.core_meters.len();
    let kernel = result
        .core_meters
        .iter()
        .map(|m| m.time_on_cores(machine, inflation, active))
        .max()
        .unwrap_or(SimDuration::ZERO);
    let merge = result.smp_merge.time_on(machine, inflation);
    let dispatch = costs.chunk_dispatch * result.chunks as u64;
    let cache_time = match cache {
        CacheTraffic::None => SimDuration::ZERO,
        CacheTraffic::Write => cache_write_time(machine, costs, result.bytes, result.chunks),
        CacheTraffic::Read => cache_read_time(machine, costs, result.bytes, result.chunks),
    };
    kernel + merge + dispatch + cache_time
}

/// [`node_compute_time`] for every node of a pass, in node order — the
/// per-node breakdown behind the compute phase's makespan, used for
/// trace attribution and straggler planning.
pub fn node_phase_times<O: ReductionObject>(
    results: &[NodeResult<O>],
    machine: &MachineSpec,
    costs: &MiddlewareCosts,
    inflation: f64,
    cache: CacheTraffic,
) -> Vec<SimDuration> {
    results.iter().map(|r| node_compute_time(r, machine, costs, inflation, cache)).collect()
}

/// Which direction (if any) the cache moves during a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTraffic {
    /// Non-caching application or single pass: no cache traffic.
    None,
    /// First pass of a caching application: chunks written as processed.
    Write,
    /// Later pass of a caching application: chunks read from local disk.
    Read,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ObjSize, PassOutcome};
    use fg_chunks::{codec, DatasetBuilder};

    /// Toy app: sums all f32 elements; one flop metered per element.
    struct SumApp;

    #[derive(Clone)]
    struct SumObj(f64);

    impl ReductionObject for SumObj {
        fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
            self.0 += other.0;
            meter.fixed_flops(1);
        }
        fn size(&self) -> ObjSize {
            ObjSize { fixed: 8, data: 0 }
        }
    }

    impl ReductionApp for SumApp {
        type Obj = SumObj;
        type State = ();
        fn name(&self) -> &str {
            "sum"
        }
        fn initial_state(&self) {}
        fn new_object(&self, _: &()) -> SumObj {
            SumObj(0.0)
        }
        fn local_reduce(
            &self,
            _: &(),
            chunk: &fg_chunks::Chunk,
            obj: &mut SumObj,
            meter: &mut WorkMeter,
        ) {
            let vals = codec::decode_f32s(&chunk.payload);
            for v in &vals {
                obj.0 += *v as f64;
            }
            meter.data_flops(vals.len() as u64);
            meter.data_mem(vals.len() as u64);
        }
        fn global_finalize(&self, _: &(), merged: SumObj, _: &mut WorkMeter) -> PassOutcome<()> {
            let _ = merged;
            PassOutcome::Finished(())
        }
        fn state_size(&self, _: &()) -> ObjSize {
            ObjSize::default()
        }
        fn caches(&self) -> bool {
            false
        }
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new("d", "t", 1.0);
        for i in 0..4 {
            let vals: Vec<f32> = (0..10).map(|j| (i * 10 + j) as f32).collect();
            b.push_chunk(codec::encode_f32s(&vals), 10, None);
        }
        b.build()
    }

    #[test]
    fn local_reductions_cover_all_chunks() {
        let ds = dataset();
        let results = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1], vec![2, 3]], 1);
        assert_eq!(results.len(), 2);
        let total: f64 = results.iter().map(|r| r.obj.0).sum();
        assert_eq!(total, (0..40).sum::<i32>() as f64);
        assert_eq!(results[0].core_meters.len(), 1);
        assert_eq!(results[0].core_meters[0].data_counts().flop, 20);
        assert_eq!(results[0].chunks, 2);
    }

    #[test]
    fn smp_split_preserves_the_answer() {
        let ds = dataset();
        let single = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3]], 1);
        let dual = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3]], 2);
        assert_eq!(single[0].obj.0, dual[0].obj.0);
        assert_eq!(dual[0].core_meters.len(), 2);
        // Two cores split the metered kernel work...
        let total_flops: u64 = dual[0].core_meters.iter().map(|m| m.data_counts().flop).sum();
        assert_eq!(total_flops, single[0].core_meters[0].data_counts().flop);
        // ...and the node pays a real intra-node merge.
        assert!(dual[0].smp_merge.fixed_counts().flop > 0);
        assert!(single[0].smp_merge.fixed_counts().total() == 0);
    }

    #[test]
    fn more_cores_than_chunks_leaves_cores_idle() {
        let ds = dataset();
        let results = run_local_reductions(&SumApp, &(), &ds, &[vec![0]], 8);
        assert_eq!(results[0].core_meters.len(), 1, "one chunk cannot use 8 cores");
    }

    #[test]
    fn idle_node_produces_identity_object() {
        let ds = dataset();
        let results = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3], vec![]], 2);
        assert_eq!(results[1].obj.0, 0.0);
        assert_eq!(results[1].bytes, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = dataset();
        let par = run_local_reductions(&SumApp, &(), &ds, &[vec![0], vec![1], vec![2], vec![3]], 2);
        let seq = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3]], 1);
        let par_total: f64 = par.iter().map(|r| r.obj.0).sum();
        assert_eq!(par_total, seq[0].obj.0);
    }

    #[test]
    fn full_range_segment_matches_unsplit_reduction() {
        let ds = dataset();
        let node_chunks = vec![vec![0, 1, 2], vec![3]];
        let unsplit = run_local_reductions(&SumApp, &(), &ds, &node_chunks, 2);
        let segs = run_segment_reductions(&SumApp, &(), &ds, &node_chunks, 2, 0, 4, None);
        for (u, s) in unsplit.iter().zip(segs) {
            let (obj, _) = combine_segment(s.core_objs);
            assert_eq!(obj.0.to_bits(), u.obj.0.to_bits());
            assert_eq!(s.chunks, u.chunks);
            assert_eq!(s.bytes, u.bytes);
        }
    }

    #[test]
    fn split_segments_resume_bit_identically_at_every_boundary() {
        let ds = dataset();
        let node_chunks = vec![vec![0, 2], vec![1, 3]];
        let unsplit = run_local_reductions(&SumApp, &(), &ds, &node_chunks, 2);
        for cut in 0..=4 {
            let prefix = run_segment_reductions(&SumApp, &(), &ds, &node_chunks, 2, 0, cut, None);
            let carried: Vec<Vec<SumObj>> = prefix.into_iter().map(|s| s.core_objs).collect();
            let suffix =
                run_segment_reductions(&SumApp, &(), &ds, &node_chunks, 2, cut, 4, Some(carried));
            for (u, s) in unsplit.iter().zip(suffix) {
                let (obj, _) = combine_segment(s.core_objs);
                assert_eq!(obj.0.to_bits(), u.obj.0.to_bits(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn segment_counts_cover_only_the_range() {
        let ds = dataset();
        let segs = run_segment_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3]], 1, 1, 3, None);
        assert_eq!(segs[0].chunks, 2);
        let full: f64 = codecs_sum(&ds, &[1, 2]);
        assert_eq!(segs[0].core_objs[0].0, full);
    }

    fn codecs_sum(ds: &Dataset, chunks: &[usize]) -> f64 {
        chunks
            .iter()
            .flat_map(|&k| codec::decode_f32s(&ds.chunks[k].payload))
            .map(|v| v as f64)
            .sum()
    }

    #[test]
    fn cache_time_includes_seeks_and_overhead() {
        let m = MachineSpec {
            disk_bw: 100.0,
            disk_seek: SimDuration::from_millis(1),
            ..MachineSpec::pentium_700()
        };
        let costs = MiddlewareCosts {
            cache_chunk_overhead: SimDuration::from_millis(1),
            ..MiddlewareCosts::default()
        };
        let t = cache_read_time(&m, &costs, 1000, 5);
        assert!((t.as_secs_f64() - (10.0 + 0.010)).abs() < 1e-9);
        assert_eq!(cache_read_time(&m, &costs, 0, 0), SimDuration::ZERO);
    }

    #[test]
    fn node_compute_time_adds_components() {
        let ds = dataset();
        let results = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1]], 1);
        let m = MachineSpec {
            flop_per_sec: 10.0,
            mem_per_sec: 1e12,
            disk_bw: 100.0,
            disk_seek: SimDuration::ZERO,
            ..MachineSpec::pentium_700()
        };
        let costs = MiddlewareCosts {
            chunk_dispatch: SimDuration::from_secs(1),
            cache_chunk_overhead: SimDuration::ZERO,
            ..MiddlewareCosts::default()
        };
        // kernel: 20 flops / 10 = 2 s (mem negligible); dispatch: 2 chunks * 1 s.
        let t_none = node_compute_time(&results[0], &m, &costs, 1.0, CacheTraffic::None);
        assert!((t_none.as_secs_f64() - 4.0).abs() < 1e-6);
        // + cache write of 80 bytes at 100 B/s
        let t_write = node_compute_time(&results[0], &m, &costs, 1.0, CacheTraffic::Write);
        assert!((t_write.as_secs_f64() - 4.8).abs() < 1e-6);
        // inflation doubles the kernel time only.
        let t_infl = node_compute_time(&results[0], &m, &costs, 2.0, CacheTraffic::None);
        assert!((t_infl.as_secs_f64() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn smp_speedup_is_real_but_sublinear_for_mem_heavy_work() {
        let ds = dataset();
        let m = MachineSpec {
            cores: 2,
            flop_per_sec: 1e12,
            mem_per_sec: 100.0, // memory-bound
            disk_bw: 1e12,
            disk_seek: SimDuration::ZERO,
            ..MachineSpec::pentium_700()
        };
        let costs = MiddlewareCosts {
            chunk_dispatch: SimDuration::ZERO,
            cache_chunk_overhead: SimDuration::ZERO,
            ..MiddlewareCosts::default()
        };
        let single = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3]], 1);
        let dual = run_local_reductions(&SumApp, &(), &ds, &[vec![0, 1, 2, 3]], 2);
        let t1 = node_compute_time(&single[0], &m, &costs, 1.0, CacheTraffic::None);
        let t2 = node_compute_time(&dual[0], &m, &costs, 1.0, CacheTraffic::None);
        let speedup = t1.as_secs_f64() / t2.as_secs_f64();
        assert!(speedup > 1.2, "two cores should help: {speedup}");
        assert!(speedup < 1.7, "memory-bound work must not scale linearly: {speedup}");
    }
}
