//! Reduction-object checkpointing: suspend a run at a chunk boundary,
//! serialize its state, and resume it elsewhere.
//!
//! A generalized reduction's entire progress is captured by its
//! reduction objects: folds are associative and commutative, so a
//! snapshot of the per-core partial objects plus the broadcast state and
//! a processed-chunk cursor is a *complete* summary of the work done so
//! far. [`Checkpoint`] is that snapshot. [`crate::Executor::run_resumable`]
//! produces one at a requested [`StopPoint`]; [`crate::Executor::resume_from`]
//! continues it — possibly on a different replica — and the final state
//! is bit-identical to the uninterrupted run.
//!
//! The partial objects are kept *per core*, not merged per node: the
//! intra-node combination and the master's global merge both happen in a
//! fixed order at the end of the pass, so merging early would change the
//! floating-point merge tree and break bit-identity.

use crate::report::{CacheMode, PassReport};
use fg_sim::SimTime;
use serde::{get_field, Deserialize, Error, Serialize, Value};

/// Where a resumable run should suspend: before chunk `cursor` of pass
/// `pass` (both zero-based; `cursor` counts chunks of the whole dataset,
/// so `cursor == 0` checkpoints at the start of the pass and
/// `cursor == num_chunks` after the folds but before the global
/// reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopPoint {
    /// Pass index to suspend in.
    pub pass: usize,
    /// Global chunk-id boundary: chunks with id `< cursor` are folded
    /// before the checkpoint is taken.
    pub cursor: usize,
}

/// A serializable snapshot of a suspended run: the per-core partial
/// reduction objects, the broadcast state, the pass/chunk cursor, and
/// enough identity to validate a resume.
#[derive(Debug, Clone)]
pub struct Checkpoint<S, O> {
    /// Application name ([`crate::ReductionApp::name`]).
    pub app: String,
    /// Dataset id the run was over.
    pub dataset: String,
    /// Chunk count of that dataset.
    pub num_chunks: usize,
    /// Data-node count of the *original* deployment: it fixed the
    /// chunk-to-compute-node map, which must survive migration.
    pub data_nodes: usize,
    /// Compute-node count; a resume cannot change it.
    pub compute_nodes: usize,
    /// Repository (replica) name the run was fetching from; resuming on
    /// a different repository is a migration and pays the overhead.
    pub repository: String,
    /// Compute machine name; a resume is a replica switch, so the
    /// compute site stays.
    pub compute_machine: String,
    /// Cache mode decided at run start (sticky across the resume: the
    /// compute-local cache survives migration).
    pub cache_mode: CacheMode,
    /// Pass the run was suspended in.
    pub pass_idx: usize,
    /// Chunks with global id `< cursor` are already folded in this pass.
    pub cursor: usize,
    /// The broadcast state at the start of the suspended pass.
    pub state: S,
    /// Per-node, per-core partial reduction objects, in node then core
    /// order.
    pub partials: Vec<Vec<O>>,
    /// Virtual time consumed up to the checkpoint.
    pub elapsed: SimTime,
    /// Reports of the passes completed before the suspended one.
    pub completed: Vec<PassReport>,
    /// Phase components already spent inside the suspended pass (merged
    /// into that pass's report on resume).
    pub prefix: PassReport,
}

impl<S, O> Checkpoint<S, O> {
    /// Fraction of this pass's chunks still unprocessed — the "remaining
    /// fraction" of the migration cost model.
    pub fn remaining_fraction(&self) -> f64 {
        if self.num_chunks == 0 {
            return 0.0;
        }
        (self.num_chunks - self.cursor.min(self.num_chunks)) as f64 / self.num_chunks as f64
    }
}

impl<S, O: crate::api::ReductionObject> Checkpoint<S, O> {
    /// Serialized size of the partial reduction objects (the payload a
    /// migration must move), after data-part inflation.
    pub fn object_bytes(&self, inflation: f64) -> u64 {
        self.partials
            .iter()
            .flat_map(|cores| cores.iter())
            .map(|o| o.size().logical(inflation))
            .sum()
    }
}

/// What a resumable run produced: either it finished before the stop
/// point, or it suspended into a checkpoint.
#[allow(clippy::large_enum_variant)]
pub enum ResumableOutcome<S, O> {
    /// The application finished before the stop point was reached.
    Finished(crate::exec::RunResult<S>),
    /// The run was suspended; resume it with
    /// [`crate::Executor::resume_from`].
    Suspended(Checkpoint<S, O>),
}

impl<S, O> ResumableOutcome<S, O> {
    /// The checkpoint, panicking if the run finished instead.
    pub fn expect_suspended(self, msg: &str) -> Checkpoint<S, O> {
        match self {
            ResumableOutcome::Suspended(ck) => ck,
            ResumableOutcome::Finished(_) => panic!("{msg}: run finished before the stop point"),
        }
    }
}

// The vendored serde_derive does not support generic types, so the
// checkpoint's impls are written out by hand.
impl<S: Serialize, O: Serialize> Serialize for Checkpoint<S, O> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("app".to_string(), self.app.to_value()),
            ("dataset".to_string(), self.dataset.to_value()),
            ("num_chunks".to_string(), self.num_chunks.to_value()),
            ("data_nodes".to_string(), self.data_nodes.to_value()),
            ("compute_nodes".to_string(), self.compute_nodes.to_value()),
            ("repository".to_string(), self.repository.to_value()),
            ("compute_machine".to_string(), self.compute_machine.to_value()),
            ("cache_mode".to_string(), self.cache_mode.to_value()),
            ("pass_idx".to_string(), self.pass_idx.to_value()),
            ("cursor".to_string(), self.cursor.to_value()),
            ("state".to_string(), self.state.to_value()),
            ("partials".to_string(), self.partials.to_value()),
            ("elapsed".to_string(), self.elapsed.to_value()),
            ("completed".to_string(), self.completed.to_value()),
            ("prefix".to_string(), self.prefix.to_value()),
        ])
    }
}

impl<S: Deserialize, O: Deserialize> Deserialize for Checkpoint<S, O> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object for Checkpoint"))?;
        fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
            let v = get_field(obj, name)
                .ok_or_else(|| Error::custom(format!("missing field `{name}` in Checkpoint")))?;
            T::from_value(v)
        }
        Ok(Checkpoint {
            app: field(obj, "app")?,
            dataset: field(obj, "dataset")?,
            num_chunks: field(obj, "num_chunks")?,
            data_nodes: field(obj, "data_nodes")?,
            compute_nodes: field(obj, "compute_nodes")?,
            repository: field(obj, "repository")?,
            compute_machine: field(obj, "compute_machine")?,
            cache_mode: field(obj, "cache_mode")?,
            pass_idx: field(obj, "pass_idx")?,
            cursor: field(obj, "cursor")?,
            state: field(obj, "state")?,
            partials: field(obj, "partials")?,
            elapsed: field(obj, "elapsed")?,
            completed: field(obj, "completed")?,
            prefix: field(obj, "prefix")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> Checkpoint<f64, u64> {
        Checkpoint {
            app: "sum".into(),
            dataset: "d".into(),
            num_chunks: 8,
            data_nodes: 2,
            compute_nodes: 4,
            repository: "repo".into(),
            compute_machine: "pentium-700".into(),
            cache_mode: CacheMode::Local,
            pass_idx: 1,
            cursor: 6,
            state: 0.5,
            partials: vec![vec![1, 2], vec![3]],
            elapsed: SimTime::from_nanos(42),
            completed: Vec::new(),
            prefix: PassReport::default(),
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_value() {
        let ck = checkpoint();
        let back: Checkpoint<f64, u64> = Deserialize::from_value(&ck.to_value()).unwrap();
        assert_eq!(back.app, ck.app);
        assert_eq!(back.cursor, 6);
        assert_eq!(back.partials, ck.partials);
        assert_eq!(back.elapsed, ck.elapsed);
    }

    #[test]
    fn missing_field_is_rejected() {
        let Value::Object(mut fields) = checkpoint().to_value() else { unreachable!() };
        fields.retain(|(k, _)| k != "partials");
        let r: Result<Checkpoint<f64, u64>, _> = Deserialize::from_value(&Value::Object(fields));
        assert!(r.unwrap_err().to_string().contains("partials"));
    }

    #[test]
    fn remaining_fraction_tracks_the_cursor() {
        let mut ck = checkpoint();
        assert_eq!(ck.remaining_fraction(), 0.25);
        ck.cursor = 0;
        assert_eq!(ck.remaining_fraction(), 1.0);
        ck.cursor = 8;
        assert_eq!(ck.remaining_fraction(), 0.0);
    }
}
