//! Execution reports: the middleware's measured time breakdowns.
//!
//! A report from one run on one configuration *is* the "profile" of the
//! prediction framework — the breakdown into data retrieval, network
//! communication, and processing components (`t_d`, `t_n`, `t_c`), with
//! the reduction-object communication (`t_ro`) and global reduction
//! (`t_g`) sub-components of processing called out, plus the maximum
//! reduction-object size.

use fg_sim::SimDuration;
use fg_trace::{RunMeta, SpanKind, Trace};
use serde::{Deserialize, Serialize};

/// Per-pass timing detail.
///
/// The three recovery components (`fault_detection`,
/// `straggler_recovery`, `migration`) are zero on fault-free runs, so a
/// report from [`crate::Executor::run`] is bit-identical to one from
/// `run_with_faults` under an empty schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PassReport {
    /// Origin-repository retrieval makespan (zero on cached passes).
    pub retrieval: SimDuration,
    /// Origin WAN transfer makespan (zero on cached passes).
    pub network: SimDuration,
    /// Non-local caching-site disk makespan this pass (write-through on
    /// the first pass, reads on later passes); zero unless the run uses
    /// a non-local cache.
    pub cache_disk: SimDuration,
    /// Non-local caching-site WAN transfer makespan this pass.
    pub cache_network: SimDuration,
    /// Local-reduction makespan across compute nodes (kernel + dispatch +
    /// cache traffic).
    pub local_compute: SimDuration,
    /// Reduction-object communication time (serialized gather).
    pub t_ro: SimDuration,
    /// Global reduction time (object handling, merges, finalize,
    /// broadcast).
    pub t_g: SimDuration,
    /// Largest per-node reduction object this pass, logical bytes.
    pub max_obj_bytes: u64,
    /// Time spent discovering dead data nodes (fetch timeouts plus
    /// retry backoff); zero when nothing crashed.
    #[serde(default)]
    pub fault_detection: SimDuration,
    /// Time the master spent re-executing chunks abandoned by straggler
    /// compute nodes (degraded-mode completion).
    #[serde(default)]
    pub straggler_recovery: SimDuration,
    /// Overhead of switching to a different replica mid-run.
    #[serde(default)]
    pub migration: SimDuration,
}

impl PassReport {
    /// Total virtual time of the pass.
    pub fn total(&self) -> SimDuration {
        self.retrieval
            + self.network
            + self.cache_disk
            + self.cache_network
            + self.local_compute
            + self.t_ro
            + self.t_g
            + self.recovery()
    }

    /// Recovery time of the pass (fault detection + straggler re-execution
    /// + migration overhead).
    pub fn recovery(&self) -> SimDuration {
        self.fault_detection + self.straggler_recovery + self.migration
    }
}

/// How a multi-pass application's chunks were kept between passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheMode {
    /// Single-pass application: nothing to keep.
    SinglePass,
    /// Chunks cached on compute-node scratch storage (the paper's
    /// implemented mode).
    Local,
    /// Chunks cached at a non-local storage site (§2.1's deferred mode,
    /// implemented here as an extension).
    NonLocal,
    /// No storage anywhere: every pass re-fetches from the origin.
    Refetch,
}

impl CacheMode {
    /// Stable name, as carried in a trace's [`RunMeta`].
    pub fn label(self) -> &'static str {
        match self {
            CacheMode::SinglePass => "SinglePass",
            CacheMode::Local => "Local",
            CacheMode::NonLocal => "NonLocal",
            CacheMode::Refetch => "Refetch",
        }
    }

    /// Inverse of [`CacheMode::label`].
    pub fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "SinglePass" => Some(CacheMode::SinglePass),
            "Local" => Some(CacheMode::Local),
            "NonLocal" => Some(CacheMode::NonLocal),
            "Refetch" => Some(CacheMode::Refetch),
            _ => None,
        }
    }
}

/// The full result of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Application name.
    pub app: String,
    /// Dataset identifier.
    pub dataset: String,
    /// Logical dataset size in bytes (the model's `s`).
    pub dataset_bytes: u64,
    /// Data nodes used (`n`).
    pub data_nodes: usize,
    /// Compute nodes used (`c`).
    pub compute_nodes: usize,
    /// Per-data-node WAN bandwidth (`b`), bytes/sec.
    pub wan_bw: f64,
    /// Repository machine type name.
    pub repo_machine: String,
    /// Compute machine type name.
    pub compute_machine: String,
    /// How chunks were kept between passes.
    pub cache_mode: CacheMode,
    /// Per-pass details.
    pub passes: Vec<PassReport>,
}

impl ExecutionReport {
    /// Data retrieval component `t_d` (origin repository plus any
    /// non-local caching-site disk, all passes).
    pub fn t_disk(&self) -> SimDuration {
        self.passes.iter().map(|p| p.retrieval + p.cache_disk).sum()
    }

    /// Network communication component `t_n` (origin WAN plus any
    /// caching-site WAN).
    pub fn t_network(&self) -> SimDuration {
        self.passes.iter().map(|p| p.network + p.cache_network).sum()
    }

    /// The caching-site share of the disk component.
    pub fn t_disk_cache(&self) -> SimDuration {
        self.passes.iter().map(|p| p.cache_disk).sum()
    }

    /// The caching-site share of the network component.
    pub fn t_network_cache(&self) -> SimDuration {
        self.passes.iter().map(|p| p.cache_network).sum()
    }

    /// Processing component `t_c`, inclusive of `t_ro` and `t_g` (the
    /// paper subtracts them back out when fitting the scalable part).
    pub fn t_compute(&self) -> SimDuration {
        self.passes.iter().map(|p| p.local_compute + p.t_ro + p.t_g).sum()
    }

    /// Total reduction-object communication time.
    pub fn t_ro(&self) -> SimDuration {
        self.passes.iter().map(|p| p.t_ro).sum()
    }

    /// Total global reduction time.
    pub fn t_g(&self) -> SimDuration {
        self.passes.iter().map(|p| p.t_g).sum()
    }

    /// Total recovery time `t_r`: fault detection, straggler
    /// re-execution, and migration overhead over all passes. Zero on
    /// fault-free runs.
    pub fn t_recovery(&self) -> SimDuration {
        self.passes.iter().map(|p| p.recovery()).sum()
    }

    /// The fault-detection share of the recovery component.
    pub fn t_fault_detection(&self) -> SimDuration {
        self.passes.iter().map(|p| p.fault_detection).sum()
    }

    /// The straggler re-execution share of the recovery component.
    pub fn t_straggler_recovery(&self) -> SimDuration {
        self.passes.iter().map(|p| p.straggler_recovery).sum()
    }

    /// The migration-overhead share of the recovery component.
    pub fn t_migration(&self) -> SimDuration {
        self.passes.iter().map(|p| p.migration).sum()
    }

    /// End-to-end execution time: `T_exec = T_disk + T_network +
    /// T_compute` plus, under fault injection, the recovery time `t_r`.
    pub fn total(&self) -> SimDuration {
        self.t_disk() + self.t_network() + self.t_compute() + self.t_recovery()
    }

    /// Maximum per-node reduction-object size over all passes (logical
    /// bytes) — part of the profile summary information.
    pub fn max_obj_bytes(&self) -> u64 {
        self.passes.iter().map(|p| p.max_obj_bytes).max().unwrap_or(0)
    }

    /// Number of passes executed.
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// The run header a trace carries, mirroring this report's identity
    /// fields. [`ExecutionReport::from_trace`] inverts it.
    pub fn run_meta(&self) -> RunMeta {
        RunMeta {
            app: self.app.clone(),
            dataset: self.dataset.clone(),
            dataset_bytes: self.dataset_bytes,
            data_nodes: self.data_nodes,
            compute_nodes: self.compute_nodes,
            wan_bw: self.wan_bw,
            repo_machine: self.repo_machine.clone(),
            compute_machine: self.compute_machine.clone(),
            cache_mode: self.cache_mode.label().to_string(),
        }
    }

    /// Rebuild a report from a trace recorded by the executor: header
    /// fields from the run meta, one [`PassReport`] per `Pass` span with
    /// each phase field taken from the matching phase child's duration
    /// (absent phase spans were zero). On executor-produced traces this
    /// is bit-identical to the report of the run that emitted the trace.
    pub fn from_trace(trace: &Trace) -> Result<ExecutionReport, String> {
        let meta = trace.meta.as_ref().ok_or("trace has no run meta")?;
        let cache_mode = CacheMode::parse(&meta.cache_mode)
            .ok_or_else(|| format!("unknown cache mode {:?}", meta.cache_mode))?;
        let mut passes = Vec::new();
        for pass in trace.passes() {
            let mut pr = PassReport {
                max_obj_bytes: pass.attr("max_obj_bytes").unwrap_or(0),
                ..PassReport::default()
            };
            for child in trace.children(pass.id) {
                let d = child.duration();
                match child.kind {
                    SpanKind::FaultDetection => pr.fault_detection = d,
                    SpanKind::Retrieval => pr.retrieval = d,
                    SpanKind::Network => pr.network = d,
                    SpanKind::CacheDisk => pr.cache_disk = d,
                    SpanKind::CacheNetwork => pr.cache_network = d,
                    SpanKind::Compute => pr.local_compute = d,
                    SpanKind::Gather => pr.t_ro = d,
                    SpanKind::GlobalReduce => pr.t_g = d,
                    SpanKind::Migration => pr.migration = d,
                    SpanKind::StragglerRecovery => pr.straggler_recovery = d,
                    other => return Err(format!("unexpected {other:?} span under a pass")),
                }
            }
            passes.push(pr);
        }
        Ok(ExecutionReport {
            app: meta.app.clone(),
            dataset: meta.dataset.clone(),
            dataset_bytes: meta.dataset_bytes,
            data_nodes: meta.data_nodes,
            compute_nodes: meta.compute_nodes,
            wan_bw: meta.wan_bw,
            repo_machine: meta.repo_machine.clone(),
            compute_machine: meta.compute_machine.clone(),
            cache_mode,
            passes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(r: u64, n: u64, c: u64, ro: u64, g: u64, obj: u64) -> PassReport {
        PassReport {
            retrieval: SimDuration::from_secs(r),
            network: SimDuration::from_secs(n),
            cache_disk: SimDuration::ZERO,
            cache_network: SimDuration::ZERO,
            local_compute: SimDuration::from_secs(c),
            t_ro: SimDuration::from_secs(ro),
            t_g: SimDuration::from_secs(g),
            max_obj_bytes: obj,
            ..PassReport::default()
        }
    }

    fn report() -> ExecutionReport {
        ExecutionReport {
            app: "a".into(),
            dataset: "d".into(),
            dataset_bytes: 1000,
            data_nodes: 2,
            compute_nodes: 4,
            wan_bw: 1e6,
            repo_machine: "m".into(),
            compute_machine: "m".into(),
            cache_mode: CacheMode::Local,
            passes: vec![pass(10, 5, 20, 1, 2, 64), pass(0, 0, 18, 1, 2, 128)],
        }
    }

    #[test]
    fn components_sum_over_passes() {
        let r = report();
        assert_eq!(r.t_disk(), SimDuration::from_secs(10));
        assert_eq!(r.t_network(), SimDuration::from_secs(5));
        assert_eq!(r.t_compute(), SimDuration::from_secs(44));
        assert_eq!(r.t_ro(), SimDuration::from_secs(2));
        assert_eq!(r.t_g(), SimDuration::from_secs(4));
        assert_eq!(r.total(), SimDuration::from_secs(59));
        assert_eq!(r.max_obj_bytes(), 128);
        assert_eq!(r.num_passes(), 2);
    }

    #[test]
    fn total_is_sum_of_components() {
        let r = report();
        assert_eq!(r.t_recovery(), SimDuration::ZERO);
        assert_eq!(r.total(), r.t_disk() + r.t_network() + r.t_compute());
    }

    #[test]
    fn recovery_components_count_toward_total() {
        let mut r = report();
        r.passes[0].fault_detection = SimDuration::from_secs(2);
        r.passes[0].straggler_recovery = SimDuration::from_secs(5);
        r.passes[1].migration = SimDuration::from_secs(1);
        assert_eq!(r.t_fault_detection(), SimDuration::from_secs(2));
        assert_eq!(r.t_straggler_recovery(), SimDuration::from_secs(5));
        assert_eq!(r.t_migration(), SimDuration::from_secs(1));
        assert_eq!(r.t_recovery(), SimDuration::from_secs(8));
        assert_eq!(r.total(), r.t_disk() + r.t_network() + r.t_compute() + r.t_recovery());
        assert_eq!(r.passes[0].recovery(), SimDuration::from_secs(7));
    }

    #[test]
    fn pass_total() {
        assert_eq!(pass(1, 2, 3, 4, 5, 0).total(), SimDuration::from_secs(15));
    }

    #[test]
    fn cache_components_count_toward_disk_and_network() {
        let mut r = report();
        r.passes[1].cache_disk = SimDuration::from_secs(3);
        r.passes[1].cache_network = SimDuration::from_secs(7);
        assert_eq!(r.t_disk(), SimDuration::from_secs(13));
        assert_eq!(r.t_network(), SimDuration::from_secs(12));
        assert_eq!(r.t_disk_cache(), SimDuration::from_secs(3));
        assert_eq!(r.t_network_cache(), SimDuration::from_secs(7));
        assert_eq!(r.total(), r.t_disk() + r.t_network() + r.t_compute());
    }
}
