//! The FREERIDE-G programming interface.
//!
//! The middleware supports applications whose processing structure is a
//! *generalized reduction*: elements are folded into a reduction object
//! with associative and commutative updates, per-node objects are merged,
//! and a global step extracts the next iteration's state. Users provide
//! exactly those pieces (§2.2 of the paper: "Users explicitly provide
//! reduction object and the local and global reduction functions").

use crate::meter::WorkMeter;
use fg_chunks::Chunk;

/// Serialized size of a reduction object or broadcast state, split into a
/// fixed part and a data-proportional part. The data part is inflated by
/// `1/scale` when running on reduced-scale datasets, mirroring
/// [`crate::meter::WorkMeter`]'s treatment of compute work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjSize {
    /// Bytes independent of dataset volume (parameter-sized payloads).
    pub fixed: u64,
    /// Bytes proportional to dataset volume (feature lists, catalogs).
    pub data: u64,
}

impl ObjSize {
    /// Logical wire size after inflating the data-proportional part.
    pub fn logical(&self, inflation: f64) -> u64 {
        self.fixed + (self.data as f64 * inflation).round() as u64
    }
}

/// A reduction object: the accumulator of a generalized reduction.
pub trait ReductionObject: Clone + Send + 'static {
    /// Merge another node's object into this one. Updates must be
    /// associative and commutative up to floating-point rounding; the
    /// middleware merges in node order, deterministically. Work is
    /// metered like any other computation.
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter);

    /// Serialized size, for the reduction-object communication phase.
    fn size(&self) -> ObjSize;
}

/// What the master decides after a pass's global reduction.
pub enum PassOutcome<S> {
    /// Broadcast this state and run another pass over the data.
    NextPass(S),
    /// The computation is complete; this is the final state.
    Finished(S),
}

/// A FREERIDE-G application.
///
/// `State` is whatever the master broadcasts between passes (initial
/// centroids, Gaussian parameters, the defect catalog, ...); `Obj` is the
/// reduction object. The executor drives the pass loop.
pub trait ReductionApp: Sync {
    /// The reduction object type.
    type Obj: ReductionObject;
    /// The per-pass broadcast state.
    type State: Clone + Send + Sync + 'static;

    /// Application name (appears in profiles and reports).
    fn name(&self) -> &str;

    /// State broadcast before the first pass.
    fn initial_state(&self) -> Self::State;

    /// A fresh (identity) reduction object for one node and pass.
    fn new_object(&self, state: &Self::State) -> Self::Obj;

    /// Fold one chunk into the node-local object. This runs for real —
    /// the chunk payload is decoded and processed — and must meter its
    /// work on `meter`.
    fn local_reduce(
        &self,
        state: &Self::State,
        chunk: &Chunk,
        obj: &mut Self::Obj,
        meter: &mut WorkMeter,
    );

    /// Runs at the master after all per-node objects are merged: extract
    /// application knowledge, decide whether another pass is needed, and
    /// produce the state to broadcast.
    fn global_finalize(
        &self,
        state: &Self::State,
        merged: Self::Obj,
        meter: &mut WorkMeter,
    ) -> PassOutcome<Self::State>;

    /// Serialized size of a broadcast state.
    fn state_size(&self, state: &Self::State) -> ObjSize;

    /// Whether the middleware should cache chunks on compute nodes during
    /// the first pass (worth it only for multi-pass applications).
    fn caches(&self) -> bool;

    /// Safety bound on passes; exceeding it is treated as a logic error.
    fn max_passes(&self) -> usize {
        256
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_size_inflates_data_part_only() {
        let s = ObjSize { fixed: 100, data: 50 };
        assert_eq!(s.logical(1.0), 150);
        assert_eq!(s.logical(10.0), 600);
    }

    #[test]
    fn zero_size_stays_zero() {
        assert_eq!(ObjSize::default().logical(100.0), 0);
    }
}
