//! Property tests of the middleware executor over randomized datasets,
//! configurations, and hardware parameters: correctness of the fold,
//! additivity of the breakdown, caching semantics, and sane scaling.

use fg_chunks::{codec, Dataset, DatasetBuilder};
use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use fg_middleware::{
    CacheMode, Executor, ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter,
};
use proptest::prelude::*;

/// Sums elements and counts them over a configurable number of passes —
/// the minimal generalized reduction with an exactly checkable answer.
struct CountSum {
    passes: usize,
}

#[derive(Clone)]
struct Acc {
    sum: f64,
    count: u64,
}

impl ReductionObject for Acc {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        self.sum += other.sum;
        self.count += other.count;
        meter.fixed_flops(2);
    }
    fn size(&self) -> ObjSize {
        ObjSize { fixed: 16, data: 0 }
    }
}

impl ReductionApp for CountSum {
    type Obj = Acc;
    type State = (usize, f64, u64);
    fn name(&self) -> &str {
        "count-sum"
    }
    fn initial_state(&self) -> Self::State {
        (0, 0.0, 0)
    }
    fn new_object(&self, _: &Self::State) -> Acc {
        Acc { sum: 0.0, count: 0 }
    }
    fn local_reduce(
        &self,
        _: &Self::State,
        chunk: &fg_chunks::Chunk,
        obj: &mut Acc,
        meter: &mut WorkMeter,
    ) {
        let vals = codec::decode_f32s(&chunk.payload);
        for v in &vals {
            obj.sum += *v as f64;
            obj.count += 1;
        }
        meter.data_flops(vals.len() as u64 * 3);
        meter.data_mem(vals.len() as u64);
    }
    fn global_finalize(
        &self,
        state: &Self::State,
        merged: Acc,
        _: &mut WorkMeter,
    ) -> PassOutcome<Self::State> {
        let next = (state.0 + 1, merged.sum, merged.count);
        if next.0 >= self.passes {
            PassOutcome::Finished(next)
        } else {
            PassOutcome::NextPass(next)
        }
    }
    fn state_size(&self, _: &Self::State) -> ObjSize {
        ObjSize { fixed: 24, data: 0 }
    }
    fn caches(&self) -> bool {
        self.passes > 1
    }
}

fn dataset_from(chunks: &[Vec<u16>]) -> Dataset {
    let mut b = DatasetBuilder::new("prop", "t", 1.0);
    for vals in chunks {
        let floats: Vec<f32> = vals.iter().map(|&v| v as f32).collect();
        b.push_chunk(codec::encode_f32s(&floats), floats.len() as u64, None);
    }
    b.build()
}

fn deployment(n: usize, c: usize, bw: f64) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cs", 16),
        Wan::per_stream(bw),
        Configuration::new(n, c),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the configuration, pass count, or chunking, the fold
    /// computes the exact sum and count of all elements.
    #[test]
    fn fold_is_exact_under_any_configuration(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u16..1000, 1..60), 8..40),
        n_pow in 0u32..4,
        c_extra_pow in 0u32..3,
        passes in 1usize..4,
    ) {
        let n = 1usize << n_pow;
        let c = (n << c_extra_pow).min(16);
        prop_assume!(chunks.len() >= n);
        let ds = dataset_from(&chunks);
        let expect_sum: f64 = chunks.iter().flatten().map(|&v| v as f64).sum();
        let expect_count: u64 = chunks.iter().map(|v| v.len() as u64).sum();
        let app = CountSum { passes };
        let run = Executor::new(deployment(n, c, 10e6)).run(&app, &ds);
        prop_assert_eq!(run.final_state.2, expect_count);
        prop_assert!((run.final_state.1 - expect_sum).abs() < 1e-6);
        prop_assert_eq!(run.report.num_passes(), passes);
    }

    /// The reported total is exactly the sum of the three components,
    /// and t_ro + t_g never exceeds t_compute.
    #[test]
    fn breakdown_is_additive(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u16..100, 1..30), 8..24),
        c in 1usize..9,
        passes in 1usize..4,
    ) {
        let ds = dataset_from(&chunks);
        let app = CountSum { passes };
        let report = Executor::new(deployment(1, c, 10e6)).run(&app, &ds).report;
        prop_assert_eq!(report.total(), report.t_disk() + report.t_network() + report.t_compute());
        prop_assert!(report.t_ro() + report.t_g() <= report.t_compute());
    }

    /// Multi-pass runs with room to cache fetch from the origin exactly
    /// once; refetch runs touch it every pass. Either way the answer and
    /// the compute component are identical.
    #[test]
    fn caching_is_an_io_decision_only(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u16..100, 4..30), 8..24),
        passes in 2usize..4,
    ) {
        let ds = dataset_from(&chunks);
        let app = CountSum { passes };
        let cached = Executor::new(deployment(2, 4, 10e6)).run(&app, &ds);
        let mut starved_dep = deployment(2, 4, 10e6);
        starved_dep.compute.node_storage_bytes = 0;
        let starved = Executor::new(starved_dep).run(&app, &ds);
        prop_assert_eq!(cached.report.cache_mode, CacheMode::Local);
        prop_assert_eq!(starved.report.cache_mode, CacheMode::Refetch);
        prop_assert_eq!(cached.final_state.2, starved.final_state.2);
        prop_assert!(starved.report.t_disk() >= cached.report.t_disk());
        prop_assert!(starved.report.t_network() >= cached.report.t_network());
    }

    /// Raising the WAN bandwidth never increases network time, and
    /// leaves retrieval untouched.
    #[test]
    fn bandwidth_monotonicity(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u16..100, 4..30), 8..24),
        bw_lo_mb in 1u32..20,
        bw_hi_extra in 1u32..20,
    ) {
        let ds = dataset_from(&chunks);
        let app = CountSum { passes: 1 };
        let lo = (bw_lo_mb as f64) * 1e6;
        let hi = lo + (bw_hi_extra as f64) * 1e6;
        let slow = Executor::new(deployment(2, 4, lo)).run(&app, &ds).report;
        let fast = Executor::new(deployment(2, 4, hi)).run(&app, &ds).report;
        prop_assert!(fast.t_network() <= slow.t_network());
        prop_assert_eq!(fast.t_disk(), slow.t_disk());
        prop_assert_eq!(fast.t_compute(), slow.t_compute());
    }

    /// More data nodes never slow retrieval; more compute nodes never
    /// slow the local-compute makespan.
    #[test]
    fn node_scaling_monotonicity(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u16..100, 4..30), 16..48),
    ) {
        let ds = dataset_from(&chunks);
        let app = CountSum { passes: 1 };
        let mut prev_disk = None;
        for n in [1usize, 2, 4, 8] {
            let r = Executor::new(deployment(n, 8, 10e6)).run(&app, &ds).report;
            if let Some(prev) = prev_disk {
                prop_assert!(r.t_disk() <= prev);
            }
            prev_disk = Some(r.t_disk());
        }
    }
}
